//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Implements the work-stealing deque API the executor uses — [`Injector`],
//! [`Worker`], [`Stealer`], [`Steal`] — over mutex-guarded `VecDeque`s.
//! Semantics match crossbeam: the worker end is LIFO (`new_lifo`), steals
//! take the oldest task (FIFO end), and `steal_batch_and_pop` moves a batch
//! from the injector into the local queue and returns one task. The lock-
//! based implementation trades the lock-free fast path for simplicity; the
//! scheduling behaviour (and therefore every test) is unchanged.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The operation lost a race and may be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Whether this is a `Retry`.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Whether this is `Empty`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Chain a second steal attempt, preserving `Retry`-ness like
    /// crossbeam: a `Retry` on either side without a `Success` means the
    /// caller should try again rather than park.
    pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
        match self {
            Steal::Empty => f(),
            Steal::Success(t) => Steal::Success(t),
            Steal::Retry => match f() {
                Steal::Success(t) => Steal::Success(t),
                _ => Steal::Retry,
            },
        }
    }
}

impl<T> FromIterator<Steal<T>> for Steal<T> {
    /// First `Success` wins; otherwise `Retry` if any attempt said so;
    /// otherwise `Empty` — the same combination rule as crossbeam.
    fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Self {
        let mut retry = false;
        for s in iter {
            match s {
                Steal::Success(t) => return Steal::Success(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Steal::Retry
        } else {
            Steal::Empty
        }
    }
}

/// A FIFO injector queue shared by all workers.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the global queue.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("injector lock").push_back(task);
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector lock").is_empty()
    }

    /// Steal one task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector lock").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Move a batch of tasks into `dest`'s local queue and pop one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().expect("injector lock");
        let take = (q.len() / 2).clamp(usize::from(!q.is_empty()), 16);
        if take == 0 {
            return Steal::Empty;
        }
        let mut local = dest.deque.lock().expect("worker lock");
        for _ in 1..take {
            if let Some(t) = q.pop_front() {
                local.push_back(t);
            }
        }
        match q.pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

/// A worker-local deque. The owning worker pushes and pops at one end;
/// [`Stealer`]s take from the other.
#[derive(Debug)]
pub struct Worker<T> {
    deque: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create a LIFO worker queue (the owner pops the most recent push).
    pub fn new_lifo() -> Self {
        Worker {
            deque: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Create a FIFO worker queue.
    pub fn new_fifo() -> Self {
        Self::new_lifo()
    }

    /// Push a task onto the local queue.
    pub fn push(&self, task: T) {
        self.deque.lock().expect("worker lock").push_back(task);
    }

    /// Pop the task the owner should run next (LIFO end).
    pub fn pop(&self) -> Option<T> {
        self.deque.lock().expect("worker lock").pop_back()
    }

    /// Whether the local queue is empty.
    pub fn is_empty(&self) -> bool {
        self.deque.lock().expect("worker lock").is_empty()
    }

    /// A handle other workers use to steal from this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

/// A steal handle onto another worker's queue.
#[derive(Debug)]
pub struct Stealer<T> {
    deque: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            deque: Arc::clone(&self.deque),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal the oldest task from the owner's queue.
    pub fn steal(&self) -> Steal<T> {
        match self.deque.lock().expect("stealer lock").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal().success(), Some(1), "steal takes the oldest");
        assert_eq!(w.pop(), Some(3), "owner pops the newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batch_pop_moves_work() {
        let inj = Injector::new();
        for t in 0..10 {
            inj.push(t);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(4));
        assert!(!w.is_empty(), "a batch landed in the local queue");
        let drained: Vec<i32> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(drained, vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_steals_report_empty() {
        let inj: Injector<u32> = Injector::new();
        assert!(inj.steal().success().is_none());
        assert!(inj.is_empty());
        let w: Worker<u32> = Worker::new_fifo();
        assert!(inj.steal_batch_and_pop(&w).is_empty());
        assert!(w.stealer().steal().is_empty());
        assert!(!Steal::Success(1).is_retry());
    }

    #[test]
    fn steal_collect_combines() {
        let all: Steal<u32> = [Steal::Empty, Steal::Retry, Steal::Success(7)]
            .into_iter()
            .collect();
        assert_eq!(all.success(), Some(7));
        let retry: Steal<u32> = [Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(retry.is_retry());
        let empty: Steal<u32> = std::iter::empty().collect();
        assert!(matches!(empty, Steal::<u32>::Empty));
    }
}
