//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core of proptest's API — the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`arbitrary::any`], the
//! [`proptest!`] / [`prop_assert!`] macros and [`test_runner::ProptestConfig`]
//! — without shrinking. Failing cases report their deterministic case index
//! instead of a minimized input; re-running is reproducible because seeds
//! derive from the case index (override the base with `PROPTEST_SEED`).

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The pieces `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a [`proptest!`] body.
///
/// The real proptest threads a `Result` through the test; this stub simply
/// panics, which the runner catches to report the failing case index.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case! { ($cfg); ( $($params)* ) $body }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ( ($cfg:expr); ( $($p:pat in $s:expr),+ $(,)? ) $body:block ) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let __strategies = ( $($s,)+ );
        for __case in 0..__config.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
            let ( $($p,)+ ) =
                $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
            let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            ));
            match __outcome {
                ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                ::std::result::Result::Ok(::std::result::Result::Err(
                    $crate::test_runner::TestCaseError::Reject(__reason),
                )) => {
                    ::std::eprintln!("proptest: case {__case} rejected: {__reason}");
                }
                ::std::result::Result::Ok(::std::result::Result::Err(__err)) => {
                    ::std::panic!("proptest: case {__case}: {__err}");
                }
                ::std::result::Result::Err(__payload) => {
                    ::std::eprintln!(
                        "proptest: property failed at case {__case} of {} \
                         (deterministic; re-run reproduces it)",
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
    }};
}
