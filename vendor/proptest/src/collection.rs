//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: an exact size or an inclusive span.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range for collection strategy");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(
            r.start() <= r.end(),
            "empty size range for collection strategy"
        );
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = TestRng::for_case(0);
        let v = vec(0u32..5, 7usize).generate(&mut rng);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn ranged_size_stays_in_bounds() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..50 {
            let v = vec(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn zero_length_possible() {
        let mut rng = TestRng::for_case(2);
        let v = vec(0u32..5, 0usize).generate(&mut rng);
        assert!(v.is_empty());
    }
}
