//! Test configuration and the deterministic per-case RNG.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How many cases a [`crate::proptest!`] block runs per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single test case did not pass: a genuine failure or a rejected
/// (skipped) input. Property bodies return `Result<(), TestCaseError>`,
/// so `?` works inside [`crate::proptest!`] blocks.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy the property's assumptions; skip it.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Deterministic RNG handed to strategies; seeded from the case index so
/// every run of a property replays the same inputs. Set `PROPTEST_SEED`
/// (a u64) to explore a different deterministic sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// The RNG for the `case`-th input of a property.
    pub fn for_case(case: u64) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5eed_5eed_5eed_5eed);
        let seed = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_cases_diverge() {
        let mut a = TestRng::for_case(0);
        let mut b = TestRng::for_case(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
