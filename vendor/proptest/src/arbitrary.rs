//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draw one uniformly-distributed value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (full range for integers, unit interval
/// for floats).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_case(0);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }
}
