//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy draws one concrete value per case directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value. See [`Strategy::prop_map`]
/// for deriving values instead.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + Copy + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f32..4.0).generate(&mut rng);
            assert!((0.5..4.0).contains(&f));
            let i = (1usize..=3).generate(&mut rng);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case(1);
        let s = (1u32..5)
            .prop_flat_map(|n| (Just(n), 0u32..n.max(1)))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case(2);
        let (a, b, c) = (0u32..4, Just(7u8), 0.0f64..1.0).generate(&mut rng);
        assert!(a < 4);
        assert_eq!(b, 7);
        assert!((0.0..1.0).contains(&c));
    }
}
