//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros — backed by a simple wall-clock harness: per benchmark it warms
//! up once, auto-scales an iteration batch to ~1 ms, takes `sample_size`
//! samples and prints the minimum and mean per-iteration time. No plots,
//! no statistics beyond that; enough to compare variants ("instrumented vs
//! plain") on the same machine in the same run.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (output is already printed; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark name combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, e.g. `sort_u64/4`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations to run per timing sample.
    iters: u64,
    /// Time accumulated by the most recent `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up and calibration: one iteration, then scale the batch so a
    // sample lasts roughly a millisecond (capped to keep totals bounded).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / per_sample as u32;
        total += per_iter;
        best = best.min(per_iter);
    }
    let mean = total / samples as u32;
    println!(
        "{label:<50} time: [min {} mean {}]  ({samples} samples x {per_sample} iters)",
        fmt_duration(best),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sort", 4).to_string(), "sort/4");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
