//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`]: a real ChaCha stream cipher with 8 rounds,
//! keyed from a 32-byte seed, implementing the vendored `rand` traits.
//! Streams are deterministic per seed but do not match upstream
//! `rand_chacha` bit-for-bit (nothing in this workspace depends on the
//! upstream stream — only on per-seed determinism).

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha8 deterministic random-number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Run the block function and advance the 64-bit counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    /// The number of 32-bit words drawn so far (diagnostic).
    pub fn word_pos(&self) -> u128 {
        let counter = u64::from(self.state[13]) << 32 | u64::from(self.state[12]);
        if counter == 0 {
            return 0; // No block generated yet.
        }
        (u128::from(counter) - 1) * 16 + self.cursor as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16: block counter and nonce, all zero at start.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "distinct seeds must produce distinct streams");
    }

    #[test]
    fn stream_is_not_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first = rng.next_u32();
        assert!((0..1000).any(|_| rng.next_u32() != first));
    }

    #[test]
    fn word_pos_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(rng.word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.word_pos(), 1);
        let _ = rng.gen_range(0u32..10);
        assert!(rng.word_pos() >= 2);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u32();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
