//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendor crate
//! provides the exact API subset the workspace uses — `Mutex` and `RwLock`
//! with non-poisoning guards — implemented over `std::sync`. Lock poisoning
//! is translated to the `parking_lot` behaviour (a poisoned lock simply
//! grants access to the data) so caller code is identical.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the inner value (no locking needed with `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
