//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendor crate
//! provides the subset of serde this workspace relies on: derivable
//! [`Serialize`]/[`Deserialize`] traits over an owned JSON-like
//! [`value::Value`] tree. The vendored `serde_json` crate renders and
//! parses that tree as JSON text. Conventions match upstream serde's JSON
//! representation (newtype structs collapse to their inner value, enum
//! variants encode as `"Name"` / `{"Name": ...}`), so round-trip tests
//! written against real serde behave identically.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{FromValueError, Value};

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`FromValueError`] when the tree's shape or types do not
    /// match `Self`.
    fn from_value(v: &Value) -> Result<Self, FromValueError>;
}

// ---- primitive impls -----------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, FromValueError> {
                let n = v.expect_number()?;
                if n.fract() != 0.0 {
                    return Err(FromValueError::new(format!(
                        "expected integer, found fractional number {n}"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(FromValueError::new(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        v.expect_number()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        Ok(v.expect_number()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(FromValueError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(FromValueError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        v.expect_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, FromValueError> {
                let items = v.expect_array()?;
                let arity = [$($n),+].len();
                if items.len() != arity {
                    return Err(FromValueError::new(format!(
                        "expected {arity}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, FromValueError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f32::from_value(&1.5f32.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
    }

    #[test]
    fn integer_deser_rejects_fractions_and_ranges() {
        assert!(u8::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()),
            Ok(Some(7))
        );
    }

    #[test]
    fn tuple_arity_mismatch_errors() {
        let three = (1u32, 2u32, 3u32).to_value();
        assert!(<(u32, u32)>::from_value(&three).is_err());
    }
}
