//! The owned value tree shared by the vendored `serde` and `serde_json`.
//!
//! Lives in `serde` (rather than `serde_json`) so the `Serialize` /
//! `Deserialize` traits can be defined over it without a circular
//! dependency; `serde_json` re-exports it as `serde_json::Value`.

use std::fmt;
use std::ops::Index;

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (serde_json's `preserve_order`
/// behaviour), which keeps serialized field order equal to declaration
/// order — what the derive emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers are `f64`, like JavaScript).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromValueError {
    message: String,
}

impl FromValueError {
    /// Build an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        FromValueError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FromValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for FromValueError {}

static NULL: Value = Value::Null;

impl Value {
    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up an object field, `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number within, or a shape error.
    pub fn expect_number(&self) -> Result<f64, FromValueError> {
        self.as_f64()
            .ok_or_else(|| FromValueError::new(format!("expected number, found {}", self.kind())))
    }

    /// The array within, or a shape error.
    pub fn expect_array(&self) -> Result<&[Value], FromValueError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(FromValueError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The named object field, or a missing-field/shape error.
    pub fn expect_field(&self, key: &str) -> Result<&Value, FromValueError> {
        match self {
            Value::Object(_) => self
                .get(key)
                .ok_or_else(|| FromValueError::new(format!("missing field `{key}`"))),
            other => Err(FromValueError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// The array element at `idx`, or a shape/arity error.
    pub fn expect_index(&self, idx: usize) -> Result<&Value, FromValueError> {
        let items = self.expect_array()?;
        items.get(idx).ok_or_else(|| {
            FromValueError::new(format!(
                "index {idx} out of bounds for array of {}",
                items.len()
            ))
        })
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Array indexing; yields `Null` out of bounds or on non-arrays,
    /// matching serde_json's forgiving `Index` behaviour.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Object-field indexing; yields `Null` for missing keys or
    /// non-objects, matching serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_forgiving() {
        let v = Value::Array(vec![Value::Object(vec![(
            "label".to_string(),
            Value::String("a".to_string()),
        )])]);
        assert_eq!(v[0]["label"], "a");
        assert_eq!(v[3], Value::Null);
        assert_eq!(v[0]["missing"], Value::Null);
    }

    #[test]
    fn expect_helpers_report_shape() {
        let v = Value::Number(1.0);
        assert!(v.expect_array().is_err());
        assert!(v.expect_field("x").is_err());
        assert_eq!(v.expect_number(), Ok(1.0));
        let arr = Value::Array(vec![Value::Null]);
        assert!(arr.expect_index(1).is_err());
        assert_eq!(arr.expect_index(0), Ok(&Value::Null));
    }

    #[test]
    fn numeric_equality_spans_integer_types() {
        let v = Value::Number(7.0);
        assert_eq!(v, 7u32);
        assert_eq!(v, 7i64);
        assert_eq!(v, 7.0f64);
    }
}
