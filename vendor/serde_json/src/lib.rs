//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` value tree ([`Value`], re-exported here)
//! as JSON text and parses JSON text back. Supports the workspace's API
//! subset: [`to_string`], [`to_string_pretty`], [`from_str`], plus
//! `Value` indexing/equality sugar (via the re-export).

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;

pub use serde::value::Value;

/// JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::FromValueError> for Error {
    fn from(e: serde::value::FromValueError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as compact JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors serde_json's
/// signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors serde_json's
/// signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a tree that does not match `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json rejects non-finite numbers; emit null like JS does.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse exactly four hex digits at `pos`, advancing past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape `{digits}`")))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a\"b".to_string())),
            ("n".to_string(), Value::Number(42.0)),
            ("f".to_string(), Value::Number(1.5)),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"name":"a\"b","n":42,"f":1.5,"xs":[true,null]}"#);
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_indents() {
        let v = Value::Array(vec![Value::Number(1.0)]);
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""line\nend A 😀""#).unwrap();
        assert_eq!(v, "line\nend A 😀");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v: Value = from_str("[-3, 2.5e2, 1e-3]").unwrap();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Number(-3.0),
                Value::Number(250.0),
                Value::Number(0.001)
            ])
        );
    }
}
