//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset this workspace uses — `RngCore`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and the
//! prelude — with the same trait shape as rand 0.8, so caller code compiles
//! unchanged. Distributions are uniform; ranges use rejection sampling so
//! results are unbiased (determinism across this workspace's seeds is all
//! that matters — the streams do not match upstream `rand`).

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for all practical generators).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 like rand 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                low.wrapping_add(sample_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty inclusive range in gen_range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased sample from `[0, bound)` via Lemire-style rejection.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:literal),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                Self::sample_range(rng, low, high.max(low + Self::EPSILON))
            }
        }
    )*};
}

impl_sample_uniform_float!(f32 => 24, f64 => 53);

/// A range usable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// A type producible by [`Rng::gen`] (full-width uniform).
pub trait Standard: Sized {
    /// Draw one uniformly-distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// A full-width uniform value.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions for random element selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The pieces a `use rand::prelude::*` caller expects.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&v));
            let f: f32 = rng.gen_range(1.0f32..2.0);
            assert!((1.0..2.0).contains(&f));
            let i: usize = rng.gen_range(0..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = Counter(9);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
