//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! (value-tree based, see the vendored `serde` crate). The input item is
//! parsed directly from its `proc_macro::TokenStream` — the real `syn` /
//! `quote` stack is unavailable offline — which is sufficient because the
//! generated impls only need field *names* and *arities*; field types are
//! recovered by inference at the use site (`field: Deserialize::from_value(..)?`
//! inside a struct literal resolves to the field's declared type).
//!
//! Unsupported shapes (generics, `#[serde(...)]` attributes) produce a
//! `compile_error!` rather than silently wrong code.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// The parsed shape of a derive input item.
enum Shape {
    UnitStruct,
    /// Tuple struct; `1` is a newtype.
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consume any number of leading `#[...]` attributes (doc comments arrive
/// in this form too). Rejects `#[serde(...)]`, which this stub cannot honor.
fn skip_attributes(iter: &mut Tokens) -> Result<(), String> {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let body = g.stream().to_string();
                        if body.starts_with("serde") {
                            return Err(format!(
                                "vendored serde_derive does not support #[{body}] attributes"
                            ));
                        }
                    }
                    _ => return Err("malformed attribute".to_string()),
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(iter: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Count top-level (angle-bracket-depth-0) comma-separated entries of a
/// tuple-field list.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut has_content = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    depth += 1;
                    has_content = true;
                }
                '>' => {
                    depth -= 1;
                    has_content = true;
                }
                ',' if depth == 0 => {
                    if has_content {
                        arity += 1;
                    }
                    has_content = false;
                }
                _ => has_content = true,
            },
            _ => has_content = true,
        }
    }
    if has_content {
        arity += 1;
    }
    arity
}

/// Parse `name: Type, ...` field lists, returning the names in order.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attributes(&mut iter)?;
        if iter.peek().is_none() {
            return Ok(names);
        }
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
    }
}

/// Parse the variants of an enum body.
fn enum_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter)?;
        if iter.peek().is_none() {
            return Ok(variants);
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                iter.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                iter.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push((name, shape));
        // Skip a discriminant (`= expr`) if present, then the comma.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
    }
}

/// Parse the full derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter)?;
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(enum_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, shape })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});")
        .parse()
        .expect("compile_error! snippet parses")
}

// ---- Serialize codegen ---------------------------------------------------

/// `Value::Object(Vec::from([...pairs...]))` from `(key, value-expr)` pairs.
fn object_expr(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from({k:?}), {v})"))
        .collect();
    format!(
        "::serde::value::Value::Object(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

fn array_expr(items: &[String]) -> String {
    format!(
        "::serde::value::Value::Array(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            array_expr(&items)
        }
        Shape::NamedStruct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })
                .collect();
            object_expr(&pairs)
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, vshape)| match vshape {
                    VariantShape::Unit => format!(
                        "{name}::{vname} => ::serde::value::Value::String(\
                         ::std::string::String::from({vname:?})),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            array_expr(&items)
                        };
                        let wrapped = object_expr(&[(vname.clone(), inner)]);
                        format!("{name}::{vname}({}) => {wrapped},", binders.join(", "))
                    }
                    VariantShape::Struct(fields) => {
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        let inner = object_expr(&pairs);
                        let wrapped = object_expr(&[(vname.clone(), inner)]);
                        format!("{name}::{vname} {{ {} }} => {wrapped},", fields.join(", "))
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

// ---- Deserialize codegen -------------------------------------------------

/// Statements + constructor expr rebuilding a tuple shape of `arity`
/// fields from the value expression `src`.
fn tuple_from_value(ctor: &str, arity: usize, src: &str) -> String {
    if arity == 1 {
        return format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value({src})?))"
        );
    }
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
        .collect();
    format!(
        "{{ let __items = {src}.expect_array()?;\n\
            if __items.len() != {arity} {{\n\
                return ::std::result::Result::Err(::serde::value::FromValueError::new(\
                    ::std::format!(\"expected {arity} fields, found {{}}\", __items.len())));\n\
            }}\n\
            ::std::result::Result::Ok({ctor}({})) }}",
        items.join(", ")
    )
}

/// Constructor expr rebuilding named fields from the object expr `src`.
fn named_from_value(ctor: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value({src}.expect_field({f:?})?)?"))
        .collect();
    format!(
        "::std::result::Result::Ok({ctor} {{ {} }})",
        inits.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(n) => tuple_from_value(name, *n, "__v"),
        Shape::NamedStruct(fields) => named_from_value(name, fields, "__v"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (vname, vshape) in variants {
                match vshape {
                    VariantShape::Unit => unit_arms.push(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantShape::Tuple(n) => {
                        let ctor = format!("{name}::{vname}");
                        data_arms.push(format!(
                            "{vname:?} => {},",
                            tuple_from_value(&ctor, *n, "__inner")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let ctor = format!("{name}::{vname}");
                        data_arms.push(format!(
                            "{vname:?} => {},",
                            named_from_value(&ctor, fields, "__inner")
                        ));
                    }
                }
            }
            let unknown = format!(
                "__other => ::std::result::Result::Err(::serde::value::FromValueError::new(\
                 ::std::format!(\"unknown variant `{{__other}}` for enum {name}\"))),"
            );
            format!(
                "match __v {{\n\
                    ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
                        {unit}\n{unknown}\n\
                    }},\n\
                    ::serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                        let (__k, __inner) = &__pairs[0];\n\
                        match __k.as_str() {{\n\
                            {data}\n{unknown}\n\
                        }}\n\
                    }},\n\
                    __other => ::std::result::Result::Err(::serde::value::FromValueError::new(\
                        ::std::format!(\"invalid value of kind {{}} for enum {name}\", __other.kind()))),\n\
                }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::value::Value)\n\
                -> ::std::result::Result<Self, ::serde::value::FromValueError> {{ {body} }}\n\
         }}"
    )
}

/// Derive the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive generated bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive generated bad code: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}
