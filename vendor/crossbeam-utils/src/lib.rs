//! Offline stand-in for the `crossbeam-utils` crate.
//!
//! Provides the [`Backoff`] exponential-backoff helper used by the
//! work-stealing executor: a few spin rounds, then cooperative yields.

// Vendored stand-in: exempt from the workspace lint policy.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::cell::Cell;

/// Exponential backoff for spin loops, mirroring
/// `crossbeam_utils::Backoff`'s behaviour: short spins first, yielding to
/// the OS scheduler once the loop has been hot for a while.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

/// Below this step the backoff busy-spins; at or above it, it yields.
const SPIN_LIMIT: u32 = 6;
/// Steps stop growing here so the yield cadence stays bounded.
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Create a fresh backoff.
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Reset to the initial (cheapest) state after useful work was found.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spin a few cycles (for very short waits).
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Back off, spinning first and yielding the thread once the wait has
    /// lasted long enough that spinning wastes cycles.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Whether the caller should stop snoozing and park instead.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooze_progresses_to_completion() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_caps_at_limit() {
        let b = Backoff::new();
        for _ in 0..20 {
            b.spin();
        }
        assert!(b.step.get() <= SPIN_LIMIT + 1);
    }
}
