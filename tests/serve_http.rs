//! End-to-end tests of `gpasta serve`: the real binary, a real TCP
//! socket, and a hand-rolled HTTP/1.1 client. Each test binds port 0
//! and parses the bound address from the server's first stdout line.
//!
//! The load-bearing assertion is bit-identity: an incremental edit +
//! `update_timing` over HTTP must produce exactly the WNS/TNS bits the
//! one-shot `gpasta sta` CLI prints for the same design and edit,
//! because both ride the same [`gpasta::session::Session`] code path.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;

use serde_json::Value;

const PIPELINE: &str = include_str!("fixtures/pipeline.v");

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pipeline.v")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpasta-serve-http-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A running `gpasta serve` process; killed on drop so a failing test
/// cannot leak a listener.
struct Server {
    child: Child,
    addr: String,
    spool: PathBuf,
}

impl Server {
    fn start(tag: &str) -> Server {
        Server::start_with(tag, &[])
    }

    fn start_with(tag: &str, extra: &[&str]) -> Server {
        let spool = tmp_dir(tag);
        let mut child = Command::new(env!("CARGO_BIN_EXE_gpasta"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--spool",
                spool.to_str().expect("utf8 spool"),
                "--workers",
                "2",
                "--max-sessions",
                "12",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints its address")
            .expect("stdout readable");
        let addr = banner
            .rsplit_once("http://")
            .map(|(_, addr)| addr.trim().to_string())
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"));
        // Keep draining stdout so the server never blocks on a full pipe.
        thread::spawn(move || for _ in lines {});
        Server { child, addr, spool }
    }

    /// One HTTP/1.1 request; returns `(status, parsed JSON body)`.
    fn request(&self, method: &str, path: &str, body: Option<&Value>) -> (u16, Value) {
        request_at(&self.addr, method, path, body)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::fs::remove_dir_all(&self.spool).ok();
    }
}

fn request_at(addr: &str, method: &str, path: &str, body: Option<&Value>) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = body.map(|v| serde_json::to_string(v).expect("serialize"));
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(payload) = &payload {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    if let Some(payload) = &payload {
        stream.write_all(payload.as_bytes()).expect("write body");
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let json = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .expect("header/body separator");
    (status, serde_json::from_str(json).expect("JSON body"))
}

fn create_session(server: &Server, name: &str) -> Value {
    let body = Value::Object(vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("verilog".to_string(), Value::String(PIPELINE.to_string())),
    ]);
    let (status, out) = server.request("POST", "/sessions", Some(&body));
    assert_eq!(status, 200, "create failed: {out:?}");
    out
}

fn repower_edit(gate: &str, drive: f64) -> Value {
    Value::Object(vec![(
        "edits".to_string(),
        Value::Array(vec![Value::Object(vec![
            ("op".to_string(), Value::String("repower".to_string())),
            ("gate".to_string(), Value::String(gate.to_string())),
            ("drive".to_string(), Value::Number(drive)),
        ])]),
    )])
}

/// The `WNS bits XXXXXXXX  TNS bits YYYYYYYY` line from
/// `gpasta sta --bits`, as the two hex strings.
fn cli_bits(repower: &str) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gpasta"))
        .args([
            "sta",
            fixture_path().to_str().expect("utf8"),
            "--repower",
            repower,
            "--bits",
        ])
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let line = stdout
        .lines()
        .find(|l| l.starts_with("WNS bits"))
        .unwrap_or_else(|| panic!("no bits line in:\n{stdout}"));
    let words: Vec<&str> = line.split_whitespace().collect();
    (words[2].to_string(), words[5].to_string())
}

#[test]
fn http_edit_update_matches_cli_bit_for_bit() {
    let server = Server::start("bits");
    let created = create_session(&server, "pipe");
    assert_eq!(created["shape"]["gates"], 10u32);

    let (status, edited) = server.request(
        "POST",
        "/sessions/pipe/edit",
        Some(&repower_edit("u2", 4.0)),
    );
    assert_eq!(status, 200, "{edited:?}");
    assert_eq!(edited["applied"], 1u32);

    let (status, updated) = server.request(
        "POST",
        "/sessions/pipe/update",
        Some(&Value::Object(Vec::new())),
    );
    assert_eq!(status, 200, "{updated:?}");
    assert_eq!(updated["outcome"]["stop"], "completed");

    let (status, report) = server.request("GET", "/sessions/pipe/report?k=1", None);
    assert_eq!(status, 200, "{report:?}");
    let (wns_bits, tns_bits) = cli_bits("u2=4.0");
    assert_eq!(report["report"]["wns_bits"], wns_bits.as_str());
    assert_eq!(report["report"]["tns_bits"], tns_bits.as_str());

    let (status, paths) = server.request("GET", "/sessions/pipe/paths?k=1", None);
    assert_eq!(status, 200, "{paths:?}");
    let steps = paths["paths"][0]["steps"].as_array().expect("steps");
    assert!(!steps.is_empty(), "worst path has steps");
}

#[test]
fn deadline_bounded_update_degrades_then_recovers() {
    let server = Server::start("deadline");
    create_session(&server, "pipe");
    let (status, _) = server.request(
        "POST",
        "/sessions/pipe/edit",
        Some(&repower_edit("u2", 4.0)),
    );
    assert_eq!(status, 200);

    // Zero budget: the request must still be 2xx with a structured
    // degradation marker, never a hang or a 5xx.
    let body = Value::Object(vec![("deadline_ms".to_string(), Value::Number(0.0))]);
    let (status, degraded) = server.request("POST", "/sessions/pipe/update", Some(&body));
    assert_eq!(status, 200, "{degraded:?}");
    assert_eq!(degraded["outcome"]["stop"], "deadline_expired");

    // A generous deadline completes and converges to the CLI's answer.
    let body = Value::Object(vec![("deadline_ms".to_string(), Value::Number(30_000.0))]);
    let (status, completed) = server.request("POST", "/sessions/pipe/update", Some(&body));
    assert_eq!(status, 200, "{completed:?}");
    assert_eq!(completed["outcome"]["stop"], "completed");
    let (wns_bits, _) = cli_bits("u2=4.0");
    assert_eq!(completed["report"]["wns_bits"], wns_bits.as_str());
}

#[test]
fn evict_restore_over_http_preserves_bits() {
    let server = Server::start("evict");
    create_session(&server, "pipe");
    server.request(
        "POST",
        "/sessions/pipe/edit",
        Some(&repower_edit("u6", 0.5)),
    );
    let (status, updated) = server.request(
        "POST",
        "/sessions/pipe/update",
        Some(&Value::Object(Vec::new())),
    );
    assert_eq!(status, 200, "{updated:?}");
    let before = updated["report"]["wns_bits"].clone();

    let (status, evicted) = server.request("DELETE", "/sessions/pipe", None);
    assert_eq!(status, 200, "{evicted:?}");
    let ckpt = evicted["checkpoint"].as_str().expect("checkpoint path");
    assert!(PathBuf::from(ckpt).exists(), "checkpoint on disk");

    let (status, while_dormant) = server.request("GET", "/sessions/pipe/report?k=1", None);
    assert_eq!(
        status, 409,
        "dormant session rejects queries: {while_dormant:?}"
    );
    assert_eq!(while_dormant["error"]["kind"], "not_live");

    let (status, restored) = server.request(
        "POST",
        "/sessions/pipe/restore",
        Some(&Value::Object(Vec::new())),
    );
    assert_eq!(status, 200, "{restored:?}");

    let (status, report) = server.request("GET", "/sessions/pipe/report?k=1", None);
    assert_eq!(status, 200, "{report:?}");
    assert_eq!(
        report["report"]["wns_bits"], before,
        "restore is bit-identical"
    );
}

#[test]
fn eight_concurrent_sessions_with_deadlines() {
    let server = Server::start("concurrent");
    let addr = server.addr.clone();
    let mut clients = Vec::new();
    for i in 0..8 {
        let addr = addr.clone();
        clients.push(thread::spawn(move || {
            let name = format!("client-{i}");
            let body = Value::Object(vec![
                ("name".to_string(), Value::String(name.clone())),
                ("verilog".to_string(), Value::String(PIPELINE.to_string())),
            ]);
            let (status, out) = request_at(&addr, "POST", "/sessions", Some(&body));
            assert_eq!(status, 200, "{out:?}");

            let edit = repower_edit("u2", 1.5 + f64::from(i) * 0.5);
            let (status, out) = request_at(
                &addr,
                "POST",
                &format!("/sessions/{name}/edit"),
                Some(&edit),
            );
            assert_eq!(status, 200, "{out:?}");

            let budget = Value::Object(vec![("deadline_ms".to_string(), Value::Number(30_000.0))]);
            let (status, out) = request_at(
                &addr,
                "POST",
                &format!("/sessions/{name}/update"),
                Some(&budget),
            );
            assert_eq!(status, 200, "{out:?}");
            assert_eq!(out["outcome"]["stop"], "completed");
            out["report"]["wns_bits"]
                .as_str()
                .expect("wns bits")
                .to_string()
        }));
    }
    let got: Vec<String> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for (i, bits) in got.iter().enumerate() {
        let (expected, _) = cli_bits(&format!("u2={}", 1.5 + i as f64 * 0.5));
        assert_eq!(*bits, expected, "client {i} matches its solo CLI run");
    }

    let (status, listing) = request_at(&addr, "GET", "/sessions", None);
    assert_eq!(status, 200);
    assert_eq!(listing["sessions"].as_array().expect("rows").len(), 8);
}

/// Write one request with `Connection: keep-alive` on an already-open
/// stream (the persistent-connection counterpart of [`request_at`]).
fn send_keep_alive(
    mut writer: &TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&Value>,
) {
    let payload = body.map(|v| serde_json::to_string(v).expect("serialize"));
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(payload) = &payload {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("Connection: keep-alive\r\n\r\n");
    writer.write_all(head.as_bytes()).expect("write head");
    if let Some(payload) = &payload {
        writer.write_all(payload.as_bytes()).expect("write body");
    }
}

/// Read exactly one response off a persistent connection: status, the
/// `Connection` header value, and the JSON body framed by
/// `Content-Length`. `None` on EOF before the status line.
fn read_framed_response(reader: &mut BufReader<&TcpStream>) -> Option<(u16, String, Value)> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut connection = String::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((key, value)) = header.split_once(':') {
            if key.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_string();
            } else if key.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    let json = serde_json::from_str(std::str::from_utf8(&body).ok()?).ok()?;
    Some((status, connection, json))
}

#[test]
fn keep_alive_reuses_a_connection_up_to_the_request_cap() {
    let server = Server::start_with("keepalive", &["--keep-alive-requests", "3"]);
    let stream = TcpStream::connect(&server.addr).expect("connect");
    let mut reader = BufReader::new(&stream);

    // Three different requests ride one connection; the third hits the
    // per-connection cap and is answered `Connection: close`.
    let session = Value::Object(vec![
        ("name".to_string(), Value::String("ka".to_string())),
        ("verilog".to_string(), Value::String(PIPELINE.to_string())),
    ]);
    let requests: [(&str, &str, Option<&Value>); 3] = [
        ("GET", "/healthz", None),
        ("POST", "/sessions", Some(&session)),
        ("GET", "/sessions/ka/report?k=1", None),
    ];
    for (i, (method, path, body)) in requests.iter().enumerate() {
        send_keep_alive(&stream, &server.addr, method, path, *body);
        let (status, connection, out) =
            read_framed_response(&mut reader).expect("response arrives");
        assert_eq!(status, 200, "{method} {path}: {out:?}");
        if i < requests.len() - 1 {
            assert_eq!(connection, "keep-alive", "request {i} keeps the connection");
        } else {
            assert_eq!(connection, "close", "the cap closes the connection");
        }
    }

    // Past the cap the server's end is closed: clean EOF, no stray bytes.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean EOF");
    assert!(rest.is_empty(), "no bytes after the capped response");

    // The session created over keep-alive is visible to a fresh
    // one-shot connection.
    let (status, listing) = server.request("GET", "/sessions", None);
    assert_eq!(status, 200);
    assert_eq!(listing["sessions"].as_array().expect("rows").len(), 1);
}

#[test]
fn idle_keep_alive_connections_are_closed_silently() {
    let server = Server::start_with("idle", &["--idle-timeout-ms", "250"]);
    let stream = TcpStream::connect(&server.addr).expect("connect");
    let mut reader = BufReader::new(&stream);

    send_keep_alive(&stream, &server.addr, "GET", "/healthz", None);
    let (status, connection, _) = read_framed_response(&mut reader).expect("response");
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");

    // Go quiet. Past the idle deadline the server must close without
    // emitting an error response (idling between requests is legal).
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("deadline");
    let mut rest = Vec::new();
    reader
        .read_to_end(&mut rest)
        .expect("clean EOF, not a test timeout");
    assert!(
        rest.is_empty(),
        "silent close: {:?}",
        String::from_utf8_lossy(&rest)
    );
}

#[test]
fn shutdown_spools_live_sessions_and_exits() {
    let mut server = Server::start("shutdown");
    create_session(&server, "pipe");
    let (status, out) = server.request("POST", "/shutdown", None);
    assert_eq!(status, 200, "{out:?}");
    assert_eq!(out["ok"], true);

    let exit = server.child.wait().expect("server exits after shutdown");
    assert!(exit.success(), "clean exit: {exit:?}");
    let ckpt = server.spool.join("pipe.ckpt");
    assert!(ckpt.exists(), "live session spooled on shutdown");
}
