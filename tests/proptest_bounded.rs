//! Property tests for the bounded recovering executor's outcome algebra.
//!
//! On arbitrary DAGs under arbitrary fault plans, budgets, and worker
//! counts, a [`RunOutcome`] must partition the task set exactly:
//! `salvaged ∪ poisoned ∪ unfinished = tasks` with the three sets pairwise
//! disjoint. The poisoned and unfinished sets must each be closed under
//! successors (modulo each other), and the stop cause must agree with the
//! unfinished set being empty.

use gpasta::sched::{
    Executor, FaultKind, FaultPlan, FaultyWork, RetryPolicy, RunBudget, StopCause,
};
use gpasta::tdg::{TaskId, Tdg, TdgBuilder};
use proptest::prelude::*;
use std::time::Duration;

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Random DAG via low-to-high edge orientation (same shape as the
/// partitioner property suite).
fn arb_dag(max_n: usize) -> impl Strategy<Value = Tdg> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = TdgBuilder::new(n);
            for (a, c) in edges {
                if a < c {
                    b.add_edge(TaskId(a), TaskId(c));
                } else if c < a {
                    b.add_edge(TaskId(c), TaskId(a));
                }
            }
            b.build().expect("low->high orientation is acyclic")
        })
}

/// Assert the outcome algebra on one run.
fn check_outcome_partition(tdg: &Tdg, outcome: &gpasta::sched::RunOutcome) {
    let n = tdg.num_tasks();
    let mut mark = vec![0u8; n]; // 1 = poisoned, 2 = unfinished
    for &t in &outcome.poisoned_tasks {
        assert!((t as usize) < n, "poisoned task {t} out of range");
        assert_eq!(mark[t as usize], 0, "task {t} poisoned twice");
        mark[t as usize] = 1;
    }
    for &t in &outcome.unfinished_tasks {
        assert!((t as usize) < n, "unfinished task {t} out of range");
        assert_eq!(
            mark[t as usize], 0,
            "task {t} both poisoned/duplicated and unfinished"
        );
        mark[t as usize] = 2;
    }
    // Exact partition: everything not poisoned/unfinished was salvaged.
    assert_eq!(
        outcome.salvaged_tasks,
        n - outcome.poisoned_tasks.len() - outcome.unfinished_tasks.len(),
        "salvaged ∪ poisoned ∪ unfinished must equal the task set"
    );
    // Both quarantine classes are closed under successors: a task whose
    // predecessor is poisoned or unfinished cannot have been salvaged.
    for t in 0..n as u32 {
        if mark[t as usize] == 0 {
            continue;
        }
        for &s in tdg.successors(TaskId(t)) {
            assert_ne!(
                mark[s as usize], 0,
                "salvaged task {s} has a non-salvaged predecessor {t}"
            );
        }
    }
    // Stop cause agrees with the unfinished set.
    if outcome.stop == StopCause::Completed {
        assert!(
            outcome.unfinished_tasks.is_empty(),
            "a completed run cannot leave tasks unfinished"
        );
    }
    assert_eq!(
        outcome.is_clean(),
        outcome.failures.is_empty()
            && outcome.poisoned_tasks.is_empty()
            && outcome.unfinished_tasks.is_empty()
            && outcome.stop == StopCause::Completed,
        "is_clean must mean exactly: nothing failed, nothing left behind"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn bounded_recovering_outcome_partitions_the_task_set(
        tdg in arb_dag(48),
        seed in any::<u64>(),
        rate in 0.0f64..0.4,
        bounded in any::<bool>(),
        deadline_us in 0u64..500,
        workers in 1usize..4,
    ) {
        let plan = FaultPlan::random(seed, rate, &[FaultKind::Panic, FaultKind::Transient]);
        let payload = |_: TaskId| {};
        let work = FaultyWork::new(&payload, &plan);
        let exec = Executor::new(workers);
        let budget = if bounded {
            RunBudget::unbounded().with_deadline(Duration::from_micros(deadline_us))
        } else {
            RunBudget::unbounded()
        };
        let outcome = exec.run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::default(),
            &budget,
        );
        check_outcome_partition(&tdg, &outcome);
    }

    #[test]
    fn unbounded_runs_always_complete(
        tdg in arb_dag(32),
        seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        let plan = FaultPlan::random(seed, 0.2, &[FaultKind::Transient]);
        let payload = |_: TaskId| {};
        let work = FaultyWork::new(&payload, &plan);
        let exec = Executor::new(workers);
        let outcome = exec.run_tdg_recovering_bounded(
            &tdg,
            &work,
            &RetryPolicy::default(),
            &RunBudget::unbounded(),
        );
        // Transient faults always retry into success under the default
        // policy's budget... unless retries run out; either way the run
        // itself must complete rather than stop early.
        prop_assert_eq!(outcome.stop, StopCause::Completed);
        prop_assert!(outcome.unfinished_tasks.is_empty());
        check_outcome_partition(&tdg, &outcome);
    }
}
