//! Shape-level assertions for the paper's headline claims, checked on
//! scaled-down workloads. Absolute numbers differ from the paper; these
//! tests pin down *who wins* and *why*.

use gpasta::circuits::{dag, PaperCircuit};
use gpasta::core::{GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta::gpu::Device;
use gpasta::sched::simulate_makespan;
use gpasta::sta::{CellLibrary, Timer};
use gpasta::tdg::{ParallelismProfile, QuotientTdg, Tdg};
use std::time::{Duration, Instant};

const DISPATCH_NS: f64 = 800.0;
const SIM_WORKERS: usize = 8;

fn sta_tdg(circuit: PaperCircuit, scale: f64) -> Tdg {
    let mut timer = Timer::new(circuit.build(scale), CellLibrary::typical());
    let update = timer.update_timing();
    update.tdg().clone()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Table 1 / §4.1: seq-G-PASTA partitions faster than GDCA even without a
/// GPU (paper: 2.4–6.2×; we assert it simply wins).
#[test]
fn seq_gpasta_partitions_faster_than_gdca() {
    let tdg = sta_tdg(PaperCircuit::Leon3mp, 0.005);
    let opts = PartitionerOptions::with_max_size(16);

    // Warm up, then take the best of three to de-noise CI machines.
    let mut best_gdca = Duration::MAX;
    let mut best_seq = Duration::MAX;
    for _ in 0..3 {
        let (_, t) = time(|| Gdca::new().partition(&tdg, &opts).expect("valid"));
        best_gdca = best_gdca.min(t);
        let (_, t) = time(|| SeqGPasta::new().partition(&tdg, &opts).expect("valid"));
        best_seq = best_seq.min(t);
    }
    assert!(
        best_seq < best_gdca,
        "seq-G-PASTA ({best_seq:?}) must beat GDCA ({best_gdca:?})"
    );
}

/// Figure 3: adjacent-level clustering keeps more TDG parallelism than
/// GDCA's within-level clustering at the same partition size.
#[test]
fn gpasta_retains_more_parallelism_than_gdca() {
    let tdg = dag::layered(64, 24, 1, 3);
    let opts = PartitionerOptions::with_max_size(24);
    let q_of = |p: &dyn Partitioner| {
        let partition = p.partition(&tdg, &opts).expect("valid");
        let q = QuotientTdg::build(&tdg, &partition).expect("schedulable");
        ParallelismProfile::of(q.graph()).avg_parallelism
    };
    let gp = q_of(&GPasta::with_device(Device::single()));
    let gdca = q_of(&Gdca::new());
    assert!(
        gp > gdca,
        "G-PASTA parallelism {gp:.2} must exceed GDCA {gdca:.2}"
    );
}

/// §4.1: partitioning improves the simulated multi-worker TDG runtime on
/// every circuit (the paper's 1.7–2.0×; we assert > 1.2×).
#[test]
fn partitioning_improves_simulated_tdg_runtime() {
    for &circuit in &[PaperCircuit::Leon3mp, PaperCircuit::Leon2] {
        let tdg = sta_tdg(circuit, 0.01);
        let base = simulate_makespan(&tdg, SIM_WORKERS, DISPATCH_NS).makespan_ns;

        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid");
        let q = QuotientTdg::build(&tdg, &p).expect("schedulable");
        let after = simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns;
        let speedup = base / after;
        assert!(
            speedup > 1.2,
            "{circuit}: simulated speedup {speedup:.2} too low"
        );
    }
}

/// Figure 8: GDCA's simulated runtime is V-shaped in the partition size,
/// while G-PASTA saturates (large sizes do not blow it up thanks to the
/// partition-count lower bound at the auto granularity).
#[test]
fn gdca_v_shape_and_gpasta_saturation() {
    let tdg = sta_tdg(PaperCircuit::Leon3mp, 0.01);
    let sim_of = |p: &dyn Partitioner, ps: usize| {
        let partition = p
            .partition(&tdg, &PartitionerOptions::with_max_size(ps))
            .expect("valid");
        let q = QuotientTdg::build(&tdg, &partition).expect("schedulable");
        simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns
    };

    let gdca = Gdca::new();
    let at_1 = sim_of(&gdca, 1);
    let at_mid = sim_of(&gdca, 16);
    let at_huge = sim_of(&gdca, 4096);
    assert!(at_mid < at_1, "GDCA must improve from Ps=1 to Ps=16");
    assert!(at_huge > at_mid, "GDCA must degrade at huge Ps (V-shape)");

    // G-PASTA at its auto granularity is within 1.3x of its best sweep
    // point — no tuning needed.
    let gp = SeqGPasta::new();
    let auto = {
        let partition = gp
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid");
        let q = QuotientTdg::build(&tdg, &partition).expect("schedulable");
        simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns
    };
    let best_swept = [2usize, 4, 8, 16, 32, 64]
        .iter()
        .map(|&ps| {
            let partition = gp
                .partition(&tdg, &PartitionerOptions::with_max_size(ps))
                .expect("valid");
            let q = QuotientTdg::build(&tdg, &partition).expect("schedulable");
            simulate_makespan(q.graph(), SIM_WORKERS, DISPATCH_NS).makespan_ns
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        auto < 1.3 * best_swept,
        "auto Ps ({auto:.0} ns) must be near the best swept point ({best_swept:.0} ns)"
    );
}

/// Figure 1(b): Sarkar's partitioning time grows superlinearly while
/// G-PASTA stays near-linear.
#[test]
fn sarkar_grows_superlinearly() {
    let small = dag::layered(40, 25, 2, 1); // 1000 tasks
    let large = dag::layered(80, 50, 2, 1); // 4000 tasks (4x)
    let opts = PartitionerOptions::with_max_size(8);

    let mut sarkar_small = Duration::MAX;
    let mut sarkar_large = Duration::MAX;
    let mut seq_small = Duration::MAX;
    let mut seq_large = Duration::MAX;
    for _ in 0..3 {
        sarkar_small = sarkar_small.min(time(|| Sarkar::new().partition(&small, &opts)).1);
        sarkar_large = sarkar_large.min(time(|| Sarkar::new().partition(&large, &opts)).1);
        seq_small = seq_small.min(time(|| SeqGPasta::new().partition(&small, &opts)).1);
        seq_large = seq_large.min(time(|| SeqGPasta::new().partition(&large, &opts)).1);
    }
    let sarkar_growth = sarkar_large.as_secs_f64() / sarkar_small.as_secs_f64();
    assert!(
        sarkar_growth > 6.0,
        "Sarkar growth {sarkar_growth:.1}x for 4x tasks should be superlinear"
    );
    // And Sarkar is much slower than seq-G-PASTA outright at 4k tasks.
    assert!(
        sarkar_large > 4 * seq_large,
        "{sarkar_large:?} vs {seq_large:?}"
    );
    let _ = seq_small;
}

/// §2: partitioning collapses the number of scheduled units dramatically
/// (the whole premise of reducing scheduling cost).
#[test]
fn partitioning_collapses_dispatch_count() {
    use gpasta::sched::Executor;
    let mut timer = Timer::new(PaperCircuit::DesPerf.build(0.01), CellLibrary::typical());
    let exec = Executor::new(1);
    let update = timer.update_timing();
    let partition = SeqGPasta::new()
        .partition(update.tdg(), &PartitionerOptions::default())
        .expect("valid");
    let q = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
    let payload = update.task_fn();
    let plain = exec.run_tdg(update.tdg(), &payload);
    let part = exec.run_partitioned(&q, &payload);
    assert!(
        part.dispatches * 5 < plain.dispatches,
        "expected >5x dispatch reduction: {} vs {}",
        part.dispatches,
        plain.dispatches
    );
}
