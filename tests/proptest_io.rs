//! Property-based round-trip tests for every interchange format on
//! randomly generated inputs.

use gpasta::circuits::{generate_netlist, CircuitSpec};
use gpasta::sta::{parse_verilog, write_verilog};
use gpasta::tdg::{parse_edge_list, write_edge_list, TaskId, Tdg, TdgBuilder};
use proptest::prelude::*;

fn arb_dag(max_n: usize) -> impl Strategy<Value = Tdg> {
    (1usize..=max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
            let weights = proptest::collection::vec(1.0f32..10_000.0, n);
            (Just(n), edges, weights)
        })
        .prop_map(|(n, edges, weights)| {
            let mut b = TdgBuilder::new(n);
            for (a, c) in edges {
                if a < c {
                    b.add_edge(TaskId(a), TaskId(c));
                } else if c < a {
                    b.add_edge(TaskId(c), TaskId(a));
                }
            }
            for (t, w) in weights.into_iter().enumerate() {
                b.set_weight(TaskId(t as u32), w);
            }
            b.build().expect("low->high orientation is acyclic")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edge_lists_round_trip_arbitrary_dags(tdg in arb_dag(80)) {
        let text = write_edge_list(&tdg);
        let back = parse_edge_list(&text).expect("own output parses");
        prop_assert_eq!(tdg, back);
    }

    #[test]
    fn verilog_round_trips_arbitrary_circuits(
        gates in 5usize..120,
        depth in 2usize..12,
        seq_ratio in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let mut spec = CircuitSpec::small("prop", seed);
        spec.num_gates = gates;
        spec.depth = depth;
        spec.seq_ratio = seq_ratio;
        let netlist = generate_netlist(&spec);
        let text = write_verilog(&netlist, "prop");
        let back = parse_verilog(&text)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}")))?;
        prop_assert_eq!(netlist, back);
    }
}
