//! Guard: `tests/` holds Rust sources only, plus committed design
//! fixtures under `tests/fixtures/`; `results/` commits only the
//! sanctioned scale-of-record artefacts and the perf baseline.
//!
//! Integration tests in this repo write their scratch files (checkpoints,
//! CSVs, logs) to the system temp directory, never next to the sources.
//! This test pins that policy so a misdirected output path shows up as a
//! test failure instead of silently polluting the tree. The one sanctioned
//! subdirectory is `tests/fixtures/`, which may contain only design-source
//! text (`.v` netlists, `.lib` libraries, `.sdc` constraints) — generated
//! artifacts are still banned there.
//!
//! For `results/` the committed (git-tracked) set is the contract: the
//! figure/table files of record plus `perf_baseline.json`. Bench runs
//! may drop fresh `BENCH_*.json` summaries there locally — those are CI
//! upload artifacts and must never be committed.

#[test]
fn tests_directory_contains_only_rust_sources() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let mut count = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tests/ is readable") {
        let entry = entry.expect("directory entry is readable");
        let path = entry.path();
        if entry.file_type().expect("file type").is_dir() {
            assert_eq!(
                path.file_name().and_then(|n| n.to_str()),
                Some("fixtures"),
                "unexpected directory {} in tests/ — only tests/fixtures/ is sanctioned",
                path.display()
            );
            for fixture in std::fs::read_dir(&path).expect("fixtures/ is readable") {
                let fixture = fixture.expect("directory entry is readable").path();
                let ext = fixture.extension().and_then(|e| e.to_str());
                assert!(
                    matches!(ext, Some("v" | "lib" | "sdc")),
                    "non-design artifact {} in tests/fixtures/ — write scratch files \
                     to std::env::temp_dir()",
                    fixture.display()
                );
            }
            continue;
        }
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("rs"),
            "non-source artifact {} in tests/ — write scratch files to std::env::temp_dir()",
            path.display()
        );
        count += 1;
    }
    assert!(count > 0, "tests/ unexpectedly empty");
}

/// Whether a committed `results/` file name is sanctioned: the paper
/// figure/table artefacts of record (`fig*` / `table1`, CSV + JSON) and
/// the perf-regression baseline.
fn sanctioned_result(name: &str) -> bool {
    if name == "perf_baseline.json" {
        return true;
    }
    let Some((stem, ext)) = name.rsplit_once('.') else {
        return false;
    };
    matches!(ext, "csv" | "json") && (stem.starts_with("fig") || stem == "table1")
}

#[test]
fn results_directory_commits_only_sanctioned_artifacts() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    // The *committed* set is the contract; enumerate it via git so a
    // locally generated BENCH_*.json (a CI upload artifact) does not
    // fail a dev's test run, while committing one does fail CI.
    let output = std::process::Command::new("git")
        .args(["ls-files", "--", "results/"])
        .current_dir(root)
        .output();
    let output = match output {
        Ok(o) if o.status.success() => o,
        // Exported tarballs and vendored checkouts have no git; the
        // committed set cannot drift in those, so there is nothing to
        // guard.
        _ => {
            eprintln!("skipping: git unavailable or not a repository");
            return;
        }
    };
    let tracked = String::from_utf8(output.stdout).expect("git paths are UTF-8");
    let mut count = 0usize;
    for path in tracked.lines() {
        let name = path.rsplit('/').next().expect("non-empty path");
        assert!(
            !name.starts_with("BENCH_"),
            "{path} is committed — BENCH_* summaries are generated CI artifacts, \
             refresh results/perf_baseline.json instead (DESIGN.md §13)"
        );
        assert!(
            sanctioned_result(name),
            "{path} is committed but not a sanctioned results/ artefact \
             (fig*/table1 .csv/.json or perf_baseline.json)"
        );
        count += 1;
    }
    assert!(
        count > 0,
        "results/ unexpectedly has no committed artefacts"
    );

    // Whatever lands on disk — committed or generated — must be a CSV or
    // JSON result file; checkpoints and logs belong in temp directories.
    for entry in std::fs::read_dir(root.join("results")).expect("results/ is readable") {
        let path = entry.expect("directory entry is readable").path();
        let ext = path.extension().and_then(|e| e.to_str());
        assert!(
            matches!(ext, Some("csv" | "json")),
            "non-result artifact {} in results/ — write scratch files to \
             std::env::temp_dir()",
            path.display()
        );
    }
}
