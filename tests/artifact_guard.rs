//! Guard: `tests/` holds Rust sources only.
//!
//! Integration tests in this repo write their scratch files (checkpoints,
//! CSVs, logs) to the system temp directory, never next to the sources.
//! This test pins that policy so a misdirected output path shows up as a
//! test failure instead of silently polluting the tree.

#[test]
fn tests_directory_contains_only_rust_sources() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let mut count = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tests/ is readable") {
        let entry = entry.expect("directory entry is readable");
        let path = entry.path();
        assert!(
            entry.file_type().expect("file type").is_file(),
            "unexpected non-file {} in tests/",
            path.display()
        );
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("rs"),
            "non-source artifact {} in tests/ — write scratch files to std::env::temp_dir()",
            path.display()
        );
        count += 1;
    }
    assert!(count > 0, "tests/ unexpectedly empty");
}
