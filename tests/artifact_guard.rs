//! Guard: `tests/` holds Rust sources only, plus committed design
//! fixtures under `tests/fixtures/`.
//!
//! Integration tests in this repo write their scratch files (checkpoints,
//! CSVs, logs) to the system temp directory, never next to the sources.
//! This test pins that policy so a misdirected output path shows up as a
//! test failure instead of silently polluting the tree. The one sanctioned
//! subdirectory is `tests/fixtures/`, which may contain only design-source
//! text (`.v` netlists, `.lib` libraries, `.sdc` constraints) — generated
//! artifacts are still banned there.

#[test]
fn tests_directory_contains_only_rust_sources() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let mut count = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tests/ is readable") {
        let entry = entry.expect("directory entry is readable");
        let path = entry.path();
        if entry.file_type().expect("file type").is_dir() {
            assert_eq!(
                path.file_name().and_then(|n| n.to_str()),
                Some("fixtures"),
                "unexpected directory {} in tests/ — only tests/fixtures/ is sanctioned",
                path.display()
            );
            for fixture in std::fs::read_dir(&path).expect("fixtures/ is readable") {
                let fixture = fixture.expect("directory entry is readable").path();
                let ext = fixture.extension().and_then(|e| e.to_str());
                assert!(
                    matches!(ext, Some("v" | "lib" | "sdc")),
                    "non-design artifact {} in tests/fixtures/ — write scratch files \
                     to std::env::temp_dir()",
                    fixture.display()
                );
            }
            continue;
        }
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("rs"),
            "non-source artifact {} in tests/ — write scratch files to std::env::temp_dir()",
            path.display()
        );
        count += 1;
    }
    assert!(count > 0, "tests/ unexpectedly empty");
}
