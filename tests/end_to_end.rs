//! End-to-end integration: circuit generation → STA engine → TDG →
//! partitioners → scheduler, verifying that every execution strategy
//! computes identical timing results.

use gpasta::circuits::PaperCircuit;
use gpasta::core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta::gpu::Device;
use gpasta::sched::Executor;
use gpasta::sta::{CellLibrary, Timer};
use gpasta::tdg::{validate, QuotientTdg};

fn partitioners() -> Vec<(Box<dyn Partitioner>, PartitionerOptions)> {
    vec![
        (
            Box::new(GPasta::with_device(Device::new(2))),
            PartitionerOptions::default(),
        ),
        (
            Box::new(DeterGPasta::with_device(Device::new(2))),
            PartitionerOptions::default(),
        ),
        (Box::new(SeqGPasta::new()), PartitionerOptions::default()),
        (Box::new(Gdca::new()), PartitionerOptions::with_max_size(8)),
        (
            Box::new(Sarkar::new()),
            PartitionerOptions::with_max_size(8),
        ),
    ]
}

/// Reference: full sequential analysis.
fn reference_wns(circuit: PaperCircuit, scale: f64) -> f32 {
    let mut timer = Timer::new(circuit.build(scale), CellLibrary::typical());
    timer.update_timing().run_sequential();
    let report = timer.report(1);
    assert!(report.wns_ps.is_finite());
    report.wns_ps
}

#[test]
fn every_partitioner_preserves_timing_results() {
    let circuit = PaperCircuit::AesCore;
    let scale = 0.01;
    let reference = reference_wns(circuit, scale);

    for (p, opts) in partitioners() {
        for workers in [1usize, 2] {
            let mut timer = Timer::new(circuit.build(scale), CellLibrary::typical());
            let exec = Executor::new(workers);
            {
                let update = timer.update_timing();
                let partition = p.partition(update.tdg(), &opts).expect("valid options");
                validate::check_all(update.tdg(), &partition)
                    .unwrap_or_else(|e| panic!("{}: invalid partition: {e}", p.name()));
                let quotient = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
                let payload = update.task_fn();
                exec.run_partitioned(&quotient, &payload);
            }
            let wns = timer.report(1).wns_ps;
            assert_eq!(
                wns,
                reference,
                "{} on {workers} workers diverged from sequential reference",
                p.name()
            );
        }
    }
}

#[test]
fn raw_scheduler_matches_sequential() {
    let circuit = PaperCircuit::DesPerf;
    let reference = reference_wns(circuit, 0.005);
    for workers in [1usize, 2, 4] {
        let mut timer = Timer::new(circuit.build(0.005), CellLibrary::typical());
        let exec = Executor::new(workers);
        {
            let update = timer.update_timing();
            let payload = update.task_fn();
            let report = exec.run_tdg(update.tdg(), &payload);
            assert_eq!(report.tasks_executed, update.tdg().num_tasks());
        }
        assert_eq!(timer.report(1).wns_ps, reference, "workers={workers}");
    }
}

#[test]
fn update_tdg_matches_paper_structure() {
    // Full update: 2 tasks per timing-graph node; deps = 2*arcs + nodes.
    let mut timer = Timer::new(PaperCircuit::VgaLcd.build(0.005), CellLibrary::typical());
    let nodes = timer.graph().num_nodes();
    let arcs = timer.graph().num_arcs();
    let update = timer.update_timing();
    assert_eq!(update.tdg().num_tasks(), 2 * nodes);
    assert_eq!(update.tdg().num_deps(), 2 * arcs + nodes);
}

#[test]
fn partitioned_incremental_stream_stays_consistent() {
    use gpasta::sta::GateId;
    let mut plain = Timer::new(PaperCircuit::AesCore.build(0.005), CellLibrary::typical());
    let mut part = Timer::new(PaperCircuit::AesCore.build(0.005), CellLibrary::typical());
    plain.update_timing().run_sequential();
    part.update_timing().run_sequential();

    let exec = Executor::new(2);
    let gpasta = SeqGPasta::new();
    let num_gates = plain.netlist().num_gates() as u32;
    for i in 0..25u32 {
        let gate = GateId((i * 37) % num_gates);
        let drive = 1.0 + f32::from((i % 4) as u8);
        plain.repower_gate(gate, drive);
        part.repower_gate(gate, drive);

        plain.update_timing().run_sequential();
        {
            let update = part.update_timing();
            let partition = gpasta
                .partition(update.tdg(), &PartitionerOptions::default())
                .expect("valid options");
            let quotient = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
            let payload = update.task_fn();
            exec.run_partitioned(&quotient, &payload);
        }
        assert_eq!(
            plain.report(1).wns_ps,
            part.report(1).wns_ps,
            "iteration {i} diverged"
        );
    }
}

#[test]
fn all_paper_circuits_generate_and_analyse() {
    for &circuit in PaperCircuit::all() {
        let netlist = circuit.build(0.002);
        let mut timer = Timer::new(netlist, CellLibrary::typical());
        let update = timer.update_timing();
        assert!(update.tdg().num_tasks() > 50, "{circuit} too small");
        update.run_sequential();
        drop(update);
        let report = timer.report(1);
        assert!(report.wns_ps.is_finite(), "{circuit} produced no slack");
        assert!(report.num_endpoints > 0, "{circuit} has no endpoints");
    }
}
