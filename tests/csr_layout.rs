//! Differential tests for the flat-layout hot paths: the CSR wavefront
//! partitioners and the SoA timing propagation must be **bit-identical**
//! to the retained legacy paths (`partition_reference`,
//! `run_sequential_reference`) on every circuit of the paper suite.
//!
//! The legacy paths are the semantics; the CSR/SoA rewrites are pure
//! data-layout changes (DESIGN.md §13). Any divergence — a reordered
//! float reduction, a wavefront visiting tasks in a different order —
//! shows up here as a failed equality, not as a subtly shifted slack in
//! a benchmark.

use gpasta_circuits::PaperCircuit;
use gpasta_core::{DeterGPasta, Gdca, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta_gpu::Device;
use gpasta_sta::{CellLibrary, GateId, Timer};

/// Small but structurally faithful instances of all six paper circuits.
const SCALE: f64 = 0.004;

fn timer_for(circuit: PaperCircuit) -> Timer {
    Timer::new(circuit.build(SCALE), CellLibrary::typical())
}

/// The modifier schedule both engines replay between incremental rounds:
/// deterministic, touching both electrical state kinds.
fn apply_modifiers(timer: &mut Timer, round: u32) {
    let num_gates = timer.netlist().num_gates() as u32;
    let num_nets = timer.netlist().num_nets() as u32;
    timer.repower_gate(GateId((7 * round + 3) % num_gates), 2.0);
    timer.set_net_cap((11 * round + 5) % num_nets, 3.5);
}

#[test]
fn soa_propagation_is_bit_identical_to_the_reference_kernels() {
    for &circuit in PaperCircuit::all() {
        // Full update through the SoA hot path.
        let mut fast = timer_for(circuit);
        fast.update_timing().run_sequential();
        // Full update through the legacy AoS kernels.
        let mut reference = timer_for(circuit);
        reference.update_timing().run_sequential_reference();

        assert_eq!(
            fast.snapshot(),
            reference.snapshot(),
            "{}: full-update timing state diverged between SoA and reference",
            circuit.name()
        );

        // Three incremental rounds over the identical modifier schedule.
        for round in 0..3u32 {
            apply_modifiers(&mut fast, round);
            fast.update_timing().run_sequential();
            apply_modifiers(&mut reference, round);
            reference.update_timing().run_sequential_reference();
            assert_eq!(
                fast.snapshot(),
                reference.snapshot(),
                "{}: incremental round {round} diverged between SoA and reference",
                circuit.name()
            );
        }
    }
}

#[test]
fn soa_propagation_preserves_wns_tns_bits() {
    for &circuit in PaperCircuit::all() {
        let mut fast = timer_for(circuit);
        fast.update_timing().run_sequential();
        let mut reference = timer_for(circuit);
        reference.update_timing().run_sequential_reference();
        for k in [1, 10] {
            let (f, r) = (fast.report(k), reference.report(k));
            assert_eq!(
                f.wns_ps.to_bits(),
                r.wns_ps.to_bits(),
                "{}: WNS bits diverged",
                circuit.name()
            );
            assert_eq!(
                f.tns_ps.to_bits(),
                r.tns_ps.to_bits(),
                "{}: TNS bits diverged",
                circuit.name()
            );
        }
    }
}

#[test]
fn csr_partitioners_match_their_references_on_the_paper_suite() {
    for &circuit in PaperCircuit::all() {
        let mut timer = timer_for(circuit);
        let update = timer.update_timing();
        let tdg = update.tdg();
        for opts in [
            PartitionerOptions::default(),
            PartitionerOptions::with_max_size(8),
        ] {
            let gdca = Gdca::new();
            assert_eq!(
                gdca.partition(tdg, &opts).expect("csr path"),
                gdca.partition_reference(tdg, &opts).expect("legacy path"),
                "{}: GDCA assignments diverged",
                circuit.name()
            );

            let seq = SeqGPasta::new();
            assert_eq!(
                seq.partition(tdg, &opts).expect("csr path"),
                seq.partition_reference(tdg, &opts).expect("legacy path"),
                "{}: seq-G-PASTA assignments diverged",
                circuit.name()
            );

            // The parallel partitioner is only deterministic on a
            // single-worker device; that is the bit-identity contract.
            let gp = gpasta_core::GPasta::with_device(Device::single());
            assert_eq!(
                gp.partition(tdg, &opts).expect("csr path"),
                gp.partition_reference(tdg, &opts).expect("legacy path"),
                "{}: G-PASTA assignments diverged",
                circuit.name()
            );

            // The deterministic variant must match for any worker count.
            let reference = DeterGPasta::with_device(Device::single())
                .partition_reference(tdg, &opts)
                .expect("legacy path");
            for workers in [1usize, 4] {
                assert_eq!(
                    DeterGPasta::with_device(Device::new(workers))
                        .partition(tdg, &opts)
                        .expect("csr path"),
                    reference,
                    "{}: deterministic G-PASTA diverged at {workers} workers",
                    circuit.name()
                );
            }
        }
    }
}
