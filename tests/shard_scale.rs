//! Scale stress tier for sharded execution (env-gated).
//!
//! Gated behind `GPASTA_SCALE=1` because it builds a ≥4× leon2-sized
//! synthetic design (leon2 is the largest circuit in the paper's suite
//! at 4.3 M tasks; scale 4.0 pushes past 17 M) and is far too heavy for
//! tier-1. Run it with:
//!
//! ```text
//! GPASTA_SCALE=1 cargo test --release --test shard_scale -- --nocapture
//! ```
//!
//! What it proves: sharded execution completes on a design of that size
//! with a *bounded* number of live worker processes (`max_workers`), and
//! the supervisor's peak memory (`VmHWM`) stays within a fixed multiple
//! of the single-design footprint — i.e. the supervisor streams shard
//! deltas instead of accumulating per-shard copies of the timing state.

use std::path::PathBuf;

use gpasta::circuits::PaperCircuit;
use gpasta::shard::{run_sharded, ShardRunConfig};

/// Peak resident set of this process in bytes, from `/proc/self/status`
/// (`VmHWM`). `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[test]
fn sharded_execution_scales_to_4x_leon2_with_bounded_memory() {
    if std::env::var("GPASTA_SCALE").as_deref() != Ok("1") {
        eprintln!("skipping: set GPASTA_SCALE=1 to run the scale stress tier");
        return;
    }

    // ≥4× the paper's largest circuit. The supervisor plus at most two
    // live workers bound the machine's total footprint.
    let mut cfg = ShardRunConfig::new(PaperCircuit::Leon2, 4.0, 0x5CA1E, 8);
    cfg.worker_exe = PathBuf::from(env!("CARGO_BIN_EXE_gpasta"));
    cfg.max_workers = 2;
    cfg.stall_after = std::time::Duration::from_secs(600);

    let outcome = run_sharded(&cfg).expect("sharded run at scale");
    assert_eq!(
        outcome.salvaged.len(),
        outcome.num_shards,
        "every shard completes: {outcome:?}"
    );
    assert!(outcome.poisoned.is_empty() && outcome.unfinished.is_empty());
    assert!(
        f32::from_bits(outcome.wns_bits).is_finite(),
        "the report is a real number, not NaN degradation"
    );

    // The supervisor holds one timer plus O(edge-cut) boundary buffers.
    // A 6 GiB ceiling is ~3× the design's measured footprint; a
    // supervisor that accumulated per-shard snapshots (8 × full state)
    // would blow through it.
    if let Some(peak) = peak_rss_bytes() {
        const CEILING: u64 = 6 << 30;
        eprintln!(
            "scale tier: {} shards, edge cut {}, supervisor VmHWM {:.2} GiB",
            outcome.num_shards,
            outcome.edge_cut,
            peak as f64 / (1u64 << 30) as f64
        );
        assert!(
            peak < CEILING,
            "supervisor peak memory {peak} B exceeds the {CEILING} B ceiling"
        );
    }
}
