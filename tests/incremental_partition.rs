//! Differential test layer for incremental partition maintenance.
//!
//! Two timers receive the identical random modifier stream. One runs the
//! cached path: a partition installed once on the full task space and
//! *repaired* inside each iteration's dirty cone, with the incremental
//! update executed through the projected sub-partition. The other is the
//! oracle: full invalidation, full re-analysis, from-scratch partition.
//! Every iteration asserts that
//!
//! 1. the repaired partition is valid — total, acyclic quotient, convex,
//!    within the size bound — and edge-monotone (the §3.2 certificate);
//! 2. executing the repaired partitioned TDG leaves the timer in a state
//!    **bit-identical** (`f32::to_bits`) to the full re-analysis: arrival,
//!    slew, and required times for every node, transition, and mode, plus
//!    both slacks.

use gpasta::circuits::PaperCircuit;
use gpasta::core::{IncrementalPartitioner, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta::sched::Executor;
use gpasta::sta::{CellLibrary, GateId, Mode, NodeId, Timer, Tr};
use gpasta::tdg::{validate, QuotientTdg};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

const ITERATIONS: usize = 20;

fn modify(timer: &mut Timer, rng: &mut ChaCha8Rng) {
    if rng.gen_bool(0.5) {
        let g = GateId(rng.gen_range(0..timer.netlist().num_gates() as u32));
        timer.repower_gate(g, *[0.5f32, 1.0, 2.0, 4.0].choose(rng).expect("non-empty"));
    } else {
        let net = rng.gen_range(0..timer.netlist().num_nets() as u32);
        timer.set_net_cap(net, rng.gen_range(0.0..6.0));
    }
}

/// Assert the two timers' full timing states agree bit-for-bit.
fn assert_bit_identical(reference: &Timer, cached: &Timer, iteration: usize) {
    let n = reference.graph().num_nodes();
    assert_eq!(n, cached.graph().num_nodes());
    let (a, b) = (reference.data(), cached.data());
    for v in 0..n as u32 {
        let v = NodeId(v);
        for tr in [Tr::Rise, Tr::Fall] {
            for mode in [Mode::Early, Mode::Late] {
                for (what, x, y) in [
                    ("arrival", a.arrival(v, tr, mode), b.arrival(v, tr, mode)),
                    ("slew", a.slew(v, tr, mode), b.slew(v, tr, mode)),
                    ("required", a.required(v, tr, mode), b.required(v, tr, mode)),
                ] {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{what} diverged at node {v:?} {tr:?}/{mode:?}, iteration {iteration}: \
                         {x} vs {y}"
                    );
                }
            }
        }
        assert_eq!(
            a.slack_late(v).to_bits(),
            b.slack_late(v).to_bits(),
            "late slack diverged at node {v:?}, iteration {iteration}"
        );
        assert_eq!(
            a.slack_early(v).to_bits(),
            b.slack_early(v).to_bits(),
            "early slack diverged at node {v:?}, iteration {iteration}"
        );
    }
}

fn differential(circuit: PaperCircuit, scale: f64, seed: u64) {
    let netlist = circuit.build(scale);
    let library = CellLibrary::typical();
    let exec = Executor::new(2);
    let opts = PartitionerOptions::default();

    let mut reference = Timer::new(netlist.clone(), library.clone());
    let mut cached = Timer::new(netlist, library);
    reference.update_timing().run_sequential();

    let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
    let full_update = cached.update_timing();
    inc.install(full_update.tdg(), &opts).expect("install");
    full_update.run_sequential();
    drop(full_update);
    let ps = inc.ps().expect("warm cache");

    let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
    let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
    for i in 0..ITERATIONS {
        modify(&mut reference, &mut rng_a);
        modify(&mut cached, &mut rng_b);

        // Oracle: full re-analysis with a from-scratch partition.
        {
            reference.invalidate_all();
            let update = reference.update_timing();
            let scratch = SeqGPasta::new()
                .partition(update.tdg(), &opts)
                .expect("scratch partition");
            let quotient = QuotientTdg::build(update.tdg(), &scratch).expect("schedulable");
            let payload = update.task_fn();
            exec.run_partitioned(&quotient, &payload);
        }

        // Cached path: repair the dirty cone, execute through the
        // projected sub-partition.
        {
            let update = cached.update_timing();
            let ids = update.full_space_ids();
            inc.repair(&ids).expect("dirty cone is successor-closed");
            let sub = inc.sub_partition(&ids).expect("ids in range");
            let quotient = QuotientTdg::build(update.tdg(), &sub).expect("schedulable");
            let payload = update.task_fn();
            exec.run_partitioned(&quotient, &payload);
        }

        // (1) The repaired full partition is valid every iteration.
        let tdg = inc.cached_tdg().expect("warm cache");
        let full = inc.full_partition().expect("warm cache");
        validate::check_all(tdg, &full)
            .unwrap_or_else(|e| panic!("invalid repaired partition at iteration {i}: {e}"));
        validate::check_size_bound(&full, ps)
            .unwrap_or_else(|e| panic!("size bound broken at iteration {i}: {e}"));
        validate::check_edge_monotone(tdg, inc.raw_assignment().expect("warm cache"))
            .unwrap_or_else(|e| panic!("monotone certificate broken at iteration {i}: {e}"));

        // (2) The timing state matches the oracle bit-for-bit.
        assert_bit_identical(&reference, &cached, i);
    }
}

#[test]
fn vga_lcd_cached_repairs_match_full_reanalysis_bit_for_bit() {
    differential(PaperCircuit::VgaLcd, 0.002, 0xD1FF);
}

#[test]
fn aes_core_cached_repairs_match_full_reanalysis_bit_for_bit() {
    differential(PaperCircuit::AesCore, 0.004, 0xAE5);
}
