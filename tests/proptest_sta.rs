//! Property-based tests of the STA engine on randomly generated circuits:
//! timing invariants, incremental-vs-full equivalence, and partitioned
//! execution equivalence.

use gpasta::circuits::{generate_netlist, CircuitSpec};
use gpasta::core::{Partitioner, PartitionerOptions, SeqGPasta};
use gpasta::sched::Executor;
use gpasta::sta::{CellLibrary, GateId, Mode, NodeId, Timer, Tr};
use gpasta::tdg::QuotientTdg;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CircuitSpec> {
    (50usize..400, 4usize..20, 0.0f64..0.3, any::<u64>()).prop_map(
        |(gates, depth, seq_ratio, seed)| {
            let mut spec = CircuitSpec::small("prop", seed);
            spec.num_gates = gates;
            spec.depth = depth;
            spec.seq_ratio = seq_ratio;
            spec
        },
    )
}

fn analysed_timer(spec: &CircuitSpec) -> Timer {
    let mut timer = Timer::new(generate_netlist(spec), CellLibrary::typical());
    timer.update_timing().run_sequential();
    timer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arrivals_are_monotone_along_arcs(spec in arb_spec()) {
        let timer = analysed_timer(&spec);
        let graph = timer.graph();
        let data = timer.data();
        let worst_late = |v: NodeId| {
            data.arrival(v, Tr::Rise, Mode::Late)
                .max(data.arrival(v, Tr::Fall, Mode::Late))
        };
        for arc in graph.arcs() {
            prop_assert!(
                worst_late(arc.to) >= worst_late(arc.from),
                "late arrival decreased across arc {:?}", arc
            );
        }
    }

    #[test]
    fn early_never_exceeds_late(spec in arb_spec()) {
        let timer = analysed_timer(&spec);
        let data = timer.data();
        for v in 0..timer.graph().num_nodes() as u32 {
            for tr in [Tr::Rise, Tr::Fall] {
                let node = NodeId(v);
                prop_assert!(
                    data.arrival(node, tr, Mode::Early) <= data.arrival(node, tr, Mode::Late),
                    "node {v}: early arrival exceeds late"
                );
            }
        }
    }

    #[test]
    fn report_is_consistent_with_node_slacks(spec in arb_spec()) {
        let timer = analysed_timer(&spec);
        let report = timer.report(usize::MAX);
        // WNS is the minimum endpoint slack; TNS sums negatives only.
        if let Some(worst) = report.worst.first() {
            prop_assert_eq!(report.wns_ps, worst.slack_ps);
        }
        let tns: f32 = report.worst.iter().map(|e| e.slack_ps.min(0.0)).sum();
        prop_assert!((report.tns_ps - tns).abs() < 1e-3);
        for e in &report.worst {
            prop_assert!(
                (timer.data().slack_late(e.node) - e.slack_ps).abs() < 1e-3,
                "endpoint {} slack mismatch", e.name
            );
        }
    }

    #[test]
    fn incremental_equals_full_reanalysis(spec in arb_spec(), edits in proptest::collection::vec((any::<u32>(), 0.5f32..4.0), 1..6)) {
        let mut incremental = analysed_timer(&spec);
        let num_gates = incremental.netlist().num_gates() as u32;

        // Apply the edits incrementally.
        for &(g, drive) in &edits {
            incremental.repower_gate(GateId(g % num_gates), drive);
            incremental.update_timing().run_sequential();
        }
        let inc_report = incremental.report(3);

        // Reference: same edits, then one full re-analysis.
        let mut full = analysed_timer(&spec);
        for &(g, drive) in &edits {
            full.repower_gate(GateId(g % num_gates), drive);
        }
        full.invalidate_all();
        full.update_timing().run_sequential();
        let full_report = full.report(3);

        prop_assert_eq!(inc_report.wns_ps, full_report.wns_ps);
        prop_assert!((inc_report.tns_ps - full_report.tns_ps).abs() < 1e-2);
    }

    #[test]
    fn partitioned_execution_matches_sequential(spec in arb_spec()) {
        let reference = analysed_timer(&spec).report(1).wns_ps;

        let mut timer = Timer::new(generate_netlist(&spec), CellLibrary::typical());
        {
            let update = timer.update_timing();
            let partition = SeqGPasta::new()
                .partition(update.tdg(), &PartitionerOptions::default())
                .expect("valid options");
            let quotient = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
            let payload = update.task_fn();
            Executor::new(2).run_partitioned(&quotient, &payload);
        }
        prop_assert_eq!(timer.report(1).wns_ps, reference);
    }
}
