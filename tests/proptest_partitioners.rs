//! Property-based tests: every partitioner produces valid, schedulable
//! partitions on arbitrary DAGs, for arbitrary partition sizes.

use gpasta::core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta::gpu::Device;
use gpasta::tdg::{validate, Partition, QuotientTdg, TaskId, Tdg, TdgBuilder};
use proptest::prelude::*;

/// Random DAG via low-to-high edge orientation.
fn arb_dag(max_n: usize) -> impl Strategy<Value = Tdg> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = TdgBuilder::new(n);
            for (a, c) in edges {
                if a < c {
                    b.add_edge(TaskId(a), TaskId(c));
                } else if c < a {
                    b.add_edge(TaskId(c), TaskId(a));
                }
            }
            b.build().expect("low->high orientation is acyclic")
        })
}

fn check_partitioner(p: &dyn Partitioner, tdg: &Tdg, opts: &PartitionerOptions) {
    let partition = p.partition(tdg, opts).expect("options are valid");
    assert_eq!(
        partition.num_tasks(),
        tdg.num_tasks(),
        "{}: coverage",
        p.name()
    );
    validate::check_all(tdg, &partition)
        .unwrap_or_else(|e| panic!("{} produced an invalid partition: {e}", p.name()));
    if let Some(ps) = opts.max_partition_size {
        validate::check_size_bound(&partition, ps)
            .unwrap_or_else(|e| panic!("{} violated the size bound: {e}", p.name()));
    }
    // The quotient must be buildable (schedulable).
    let q = QuotientTdg::build(tdg, &partition).expect("schedulable");
    assert_eq!(q.num_partitions(), partition.num_partitions());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpasta_always_valid(tdg in arb_dag(120), ps in 1usize..40) {
        let p = GPasta::with_device(Device::new(2));
        check_partitioner(&p, &tdg, &PartitionerOptions::with_max_size(ps));
        check_partitioner(&p, &tdg, &PartitionerOptions::default());
    }

    #[test]
    fn deter_gpasta_always_valid_and_reproducible(tdg in arb_dag(100), ps in 1usize..30) {
        let opts = PartitionerOptions::with_max_size(ps);
        let p1 = DeterGPasta::with_device(Device::new(1));
        let p3 = DeterGPasta::with_device(Device::new(3));
        check_partitioner(&p1, &tdg, &opts);
        let a = p1.partition(&tdg, &opts).expect("valid");
        let b = p3.partition(&tdg, &opts).expect("valid");
        prop_assert_eq!(a, b, "worker count changed the deterministic result");
    }

    #[test]
    fn seq_gpasta_always_valid(tdg in arb_dag(150), ps in 1usize..40) {
        check_partitioner(&SeqGPasta::new(), &tdg, &PartitionerOptions::with_max_size(ps));
        check_partitioner(&SeqGPasta::new(), &tdg, &PartitionerOptions::default());
    }

    #[test]
    fn gdca_always_valid(tdg in arb_dag(150), ps in 1usize..40) {
        check_partitioner(&Gdca::new(), &tdg, &PartitionerOptions::with_max_size(ps));
    }

    #[test]
    fn sarkar_always_valid(tdg in arb_dag(60), ps in 1usize..20) {
        check_partitioner(&Sarkar::new(), &tdg, &PartitionerOptions::with_max_size(ps));
    }

    #[test]
    fn gpasta_partition_ids_never_decrease_along_edges(tdg in arb_dag(100)) {
        // The §3.2 ordering argument: along every edge, the (pre-compaction
        // order-preserved) partition id is non-decreasing, which is what
        // makes the quotient acyclic.
        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid");
        let levels_ok = tdg.edges().all(|(u, v)| p.pid_of(u) <= p.pid_of(v));
        prop_assert!(levels_ok, "an edge goes from a larger to a smaller partition id");
    }

    #[test]
    fn partition_count_lower_bound_holds(tdg in arb_dag(120)) {
        // §3.2: with the auto granularity, every source seeds a partition
        // and the count never drops below the source count.
        let sources = tdg.sources().len();
        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid");
        prop_assert!(
            p.num_partitions() >= sources,
            "{} partitions < {} sources",
            p.num_partitions(),
            sources
        );
    }

    #[test]
    fn compaction_preserves_clustering(raw in proptest::collection::vec(0u32..50, 1..200)) {
        // Two tasks share a partition before compaction iff they share one
        // after.
        let p = Partition::new(raw.clone());
        for i in 0..raw.len() {
            for j in (i + 1)..raw.len().min(i + 10) {
                prop_assert_eq!(
                    raw[i] == raw[j],
                    p.assignment()[i] == p.assignment()[j]
                );
            }
        }
    }
}
