//! Property-based tests: every partitioner produces valid, schedulable
//! partitions on arbitrary DAGs, for arbitrary partition sizes.

use gpasta::core::{
    forward_closure, DeterGPasta, GPasta, Gdca, IncrementalError, IncrementalPartitioner,
    Partitioner, PartitionerOptions, Sarkar, SeqGPasta,
};
use gpasta::gpu::Device;
use gpasta::tdg::{validate, Partition, QuotientTdg, TaskId, Tdg, TdgBuilder};
use proptest::prelude::*;

/// Case count for the incremental suite, overridable via `PROPTEST_CASES`
/// (the nightly CI job raises it).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Random DAG via low-to-high edge orientation.
fn arb_dag(max_n: usize) -> impl Strategy<Value = Tdg> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = TdgBuilder::new(n);
            for (a, c) in edges {
                if a < c {
                    b.add_edge(TaskId(a), TaskId(c));
                } else if c < a {
                    b.add_edge(TaskId(c), TaskId(a));
                }
            }
            b.build().expect("low->high orientation is acyclic")
        })
}

fn check_partitioner(p: &dyn Partitioner, tdg: &Tdg, opts: &PartitionerOptions) {
    let partition = p.partition(tdg, opts).expect("options are valid");
    assert_eq!(
        partition.num_tasks(),
        tdg.num_tasks(),
        "{}: coverage",
        p.name()
    );
    validate::check_all(tdg, &partition)
        .unwrap_or_else(|e| panic!("{} produced an invalid partition: {e}", p.name()));
    if let Some(ps) = opts.max_partition_size {
        validate::check_size_bound(&partition, ps)
            .unwrap_or_else(|e| panic!("{} violated the size bound: {e}", p.name()));
    }
    // The quotient must be buildable (schedulable).
    let q = QuotientTdg::build(tdg, &partition).expect("schedulable");
    assert_eq!(q.num_partitions(), partition.num_partitions());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gpasta_always_valid(tdg in arb_dag(120), ps in 1usize..40) {
        let p = GPasta::with_device(Device::new(2));
        check_partitioner(&p, &tdg, &PartitionerOptions::with_max_size(ps));
        check_partitioner(&p, &tdg, &PartitionerOptions::default());
    }

    #[test]
    fn deter_gpasta_always_valid_and_reproducible(tdg in arb_dag(100), ps in 1usize..30) {
        let opts = PartitionerOptions::with_max_size(ps);
        let p1 = DeterGPasta::with_device(Device::new(1));
        let p3 = DeterGPasta::with_device(Device::new(3));
        check_partitioner(&p1, &tdg, &opts);
        let a = p1.partition(&tdg, &opts).expect("valid");
        let b = p3.partition(&tdg, &opts).expect("valid");
        prop_assert_eq!(a, b, "worker count changed the deterministic result");
    }

    #[test]
    fn seq_gpasta_always_valid(tdg in arb_dag(150), ps in 1usize..40) {
        check_partitioner(&SeqGPasta::new(), &tdg, &PartitionerOptions::with_max_size(ps));
        check_partitioner(&SeqGPasta::new(), &tdg, &PartitionerOptions::default());
    }

    #[test]
    fn gdca_always_valid(tdg in arb_dag(150), ps in 1usize..40) {
        check_partitioner(&Gdca::new(), &tdg, &PartitionerOptions::with_max_size(ps));
    }

    #[test]
    fn sarkar_always_valid(tdg in arb_dag(60), ps in 1usize..20) {
        check_partitioner(&Sarkar::new(), &tdg, &PartitionerOptions::with_max_size(ps));
    }

    #[test]
    fn gpasta_partition_ids_never_decrease_along_edges(tdg in arb_dag(100)) {
        // The §3.2 ordering argument: along every edge, the (pre-compaction
        // order-preserved) partition id is non-decreasing, which is what
        // makes the quotient acyclic.
        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid");
        let levels_ok = tdg.edges().all(|(u, v)| p.pid_of(u) <= p.pid_of(v));
        prop_assert!(levels_ok, "an edge goes from a larger to a smaller partition id");
    }

    #[test]
    fn partition_count_lower_bound_holds(tdg in arb_dag(120)) {
        // §3.2: with the auto granularity, every source seeds a partition
        // and the count never drops below the source count.
        let sources = tdg.sources().len();
        let p = SeqGPasta::new()
            .partition(&tdg, &PartitionerOptions::default())
            .expect("valid");
        prop_assert!(
            p.num_partitions() >= sources,
            "{} partitions < {} sources",
            p.num_partitions(),
            sources
        );
    }

    #[test]
    fn compaction_preserves_clustering(raw in proptest::collection::vec(0u32..50, 1..200)) {
        // Two tasks share a partition before compaction iff they share one
        // after.
        let p = Partition::new(raw.clone());
        for i in 0..raw.len() {
            for j in (i + 1)..raw.len().min(i + 10) {
                prop_assert_eq!(
                    raw[i] == raw[j],
                    p.assignment()[i] == p.assignment()[j]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn warm_repair_of_empty_dirty_set_is_identity(tdg in arb_dag(100), ps in 1usize..30) {
        let opts = PartitionerOptions::with_max_size(ps);
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &opts).expect("install");
        let before = inc.raw_assignment().expect("warm").to_vec();
        let stats = inc.repair(&[]).expect("empty repair");
        prop_assert_eq!(stats.moved, 0);
        prop_assert_eq!(stats.fresh_partitions, 0);
        prop_assert_eq!(inc.raw_assignment().expect("warm"), before.as_slice());
        // Compacted, the warm cache equals what the trait entry serves —
        // i.e. the inner partitioner's cold result.
        let served = inc.partition(&tdg, &opts).expect("served from cache");
        prop_assert_eq!(served, inc.full_partition().expect("warm"));
    }

    #[test]
    fn invalidate_all_forces_a_full_repartition(tdg in arb_dag(80), ps in 1usize..20) {
        let opts = PartitionerOptions::with_max_size(ps);
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &opts).expect("install");
        inc.invalidate_all();
        prop_assert!(!inc.is_warm());
        prop_assert_eq!(inc.repair(&[]), Err(IncrementalError::NotInstalled));
        // Cold trait partition falls through to the inner partitioner.
        let cold = inc.partition(&tdg, &opts).expect("cold");
        let direct = SeqGPasta::new().partition(&tdg, &opts).expect("direct");
        prop_assert_eq!(cold, direct);
    }

    #[test]
    fn repaired_partitions_stay_valid_on_random_dirty_cones(
        tdg in arb_dag(100),
        ps in 1usize..30,
        seeds in proptest::collection::vec(0usize..100, 1..6),
    ) {
        let opts = PartitionerOptions::with_max_size(ps);
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        inc.install(&tdg, &opts).expect("install");
        let n = tdg.num_tasks();
        for chunk in seeds.chunks(2) {
            let seed_ids: Vec<u32> = chunk.iter().map(|&s| (s % n) as u32).collect();
            let dirty = forward_closure(&tdg, &seed_ids);
            inc.repair(&dirty).expect("forward closures are successor-closed");
            let full = inc.full_partition().expect("warm");
            validate::check_all(&tdg, &full).expect("valid after repair");
            validate::check_size_bound(&full, ps).expect("size bound after repair");
            validate::check_edge_monotone(&tdg, inc.raw_assignment().expect("warm"))
                .expect("monotone certificate after repair");
        }
    }

    #[test]
    fn fused_projections_match_the_unfused_pair_on_random_cones(
        tdg in arb_dag(100),
        ps in 1usize..30,
        seeds in proptest::collection::vec(0usize..100, 1..6),
    ) {
        let opts = PartitionerOptions::with_max_size(ps);
        let mut unfused = IncrementalPartitioner::new(SeqGPasta::new());
        let mut fused = IncrementalPartitioner::new(SeqGPasta::new());
        let mut trusted = IncrementalPartitioner::new(SeqGPasta::new());
        unfused.install(&tdg, &opts).expect("install");
        fused.install(&tdg, &opts).expect("install");
        trusted.install(&tdg, &opts).expect("install");
        let n = tdg.num_tasks();
        for chunk in seeds.chunks(2) {
            let seed_ids: Vec<u32> = chunk.iter().map(|&s| (s % n) as u32).collect();
            let dirty = forward_closure(&tdg, &seed_ids);
            let su = unfused.repair(&dirty).expect("repair");
            let pu = unfused.sub_partition(&dirty).expect("project");
            let (sf, pf) = fused.repair_and_project(&dirty).expect("fused");
            let (st, pt) = trusted
                .repair_and_project_trusted(&dirty)
                .expect("forward closures satisfy the trusted contract");
            prop_assert_eq!(su, sf);
            prop_assert_eq!(&pu, &pf);
            prop_assert_eq!(sf, st);
            prop_assert_eq!(&pf, &pt);
        }
    }

    #[test]
    fn deter_backed_incremental_identical_across_workers_and_repeats(
        tdg in arb_dag(80),
        ps in 1usize..20,
        seed in 0usize..80,
    ) {
        let opts = PartitionerOptions::with_max_size(ps);
        let n = tdg.num_tasks();
        let dirty = forward_closure(&tdg, &[(seed % n) as u32]);
        let run = |workers: usize| {
            let mut inc =
                IncrementalPartitioner::new(DeterGPasta::with_device(Device::new(workers)));
            inc.install(&tdg, &opts).expect("install");
            inc.repair(&dirty).expect("repair");
            inc.raw_assignment().expect("warm").to_vec()
        };
        let a = run(1);
        let b = run(3);
        let c = run(1);
        prop_assert_eq!(&a, &b, "worker count changed the incremental result");
        prop_assert_eq!(&a, &c, "repeated run changed the incremental result");
    }
}
