//! End-to-end tests of the `gpasta` command-line tool, driving the real
//! binary over real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gpasta(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpasta"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gpasta_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn demo_prints_all_partitioners() {
    let out = gpasta(&["demo"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for name in ["G-PASTA", "deter-G-PASTA", "seq-G-PASTA", "GDCA", "Sarkar"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn help_shows_usage_and_unknown_command_fails() {
    let out = gpasta(&["--help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("usage:"));

    let out = gpasta(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn partition_pipeline_writes_artifacts() {
    let edges = tmp("diamond.txt");
    std::fs::write(&edges, "# diamond\n0 1\n0 2\n1 3\n2 3\n").expect("write edges");
    let csv = tmp("assign.csv");
    let dot = tmp("out.dot");

    let out = gpasta(&[
        "partition",
        edges.to_str().expect("utf8"),
        "--algo",
        "seq",
        "--ps",
        "2",
        "--csv",
        csv.to_str().expect("utf8"),
        "--dot",
        dot.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("seq-G-PASTA"));
    assert!(text.contains("validated"));

    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(csv_text.starts_with("task,partition\n"));
    assert_eq!(csv_text.lines().count(), 5, "header + 4 tasks");
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.contains("subgraph cluster_0"));
}

#[test]
fn partition_incremental_reports_install_and_repair() {
    let edges = tmp("inc_diamond.txt");
    std::fs::write(&edges, "0 1\n0 2\n1 3\n2 3\n").expect("write edges");
    let out = gpasta(&[
        "partition",
        edges.to_str().expect("utf8"),
        "--algo",
        "seq",
        "--ps",
        "2",
        "--incremental",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("incremental(seq-G-PASTA)"), "{text}");
    assert!(text.contains("install (cold"), "{text}");
    assert!(text.contains("forward cone"), "{text}");
    assert!(text.contains("validated"), "{text}");
}

#[test]
fn sanitize_incremental_repair_is_deterministic() {
    let edges = tmp("inc_sanitize.txt");
    std::fs::write(&edges, "0 1\n0 2\n1 3\n2 3\n").expect("write edges");
    let out = gpasta(&[
        "sanitize",
        edges.to_str().expect("utf8"),
        "--algo",
        "incremental",
        "--workers",
        "1,2",
        "--runs",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("incremental"), "{text}");
    assert!(text.contains("Deterministic"), "{text}");
    assert!(text.contains("0 race(s)"), "{text}");
}

#[test]
fn stats_reports_shape() {
    let edges = tmp("chain.txt");
    std::fs::write(&edges, "0 1\n1 2\n2 3\n").expect("write edges");
    let out = gpasta(&["stats", edges.to_str().expect("utf8")]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("4 tasks, 3 deps"));
    assert!(text.contains("1 sources, 1 sinks"));
}

#[test]
fn sta_flow_over_files() {
    // Write design + library + constraints through the library APIs, then
    // drive the CLI over them.
    let netlist = gpasta::circuits::iscas::c17();
    let v_path = tmp("c17.v");
    std::fs::write(&v_path, gpasta::sta::write_verilog(&netlist, "c17")).expect("write v");
    let lib_path = tmp("cells.lib");
    std::fs::write(
        &lib_path,
        gpasta::sta::write_liberty(&gpasta::sta::CellLibrary::typical(), "typ"),
    )
    .expect("write lib");
    let sdc_path = tmp("c17.sdc");
    std::fs::write(
        &sdc_path,
        "create_clock -period 500\nset_input_delay 50 [get_ports n1]\n",
    )
    .expect("write sdc");

    let out = gpasta(&[
        "sta",
        v_path.to_str().expect("utf8"),
        "--lib",
        lib_path.to_str().expect("utf8"),
        "--sdc",
        sdc_path.to_str().expect("utf8"),
        "--paths",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("design: 6 gates"));
    assert!(text.contains("WNS"));
    assert!(text.contains("worst path"));
}

#[test]
fn malformed_inputs_produce_clean_errors() {
    let bad = tmp("cyclic.txt");
    std::fs::write(&bad, "0 1\n1 0\n").expect("write edges");
    let out = gpasta(&["partition", bad.to_str().expect("utf8")]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid graph"), "{}", stderr(&out));

    let out = gpasta(&["partition", "/definitely/not/a/file"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));

    let bad_v = tmp("bad.v");
    std::fs::write(
        &bad_v,
        "module t (y);\n output y;\n FROB u1 (.y(y));\nendmodule\n",
    )
    .expect("write v");
    let out = gpasta(&["sta", bad_v.to_str().expect("utf8")]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown cell"), "{}", stderr(&out));
}

/// A layered DAG big enough for a 5% fault rate to reliably fire.
fn layered_edges(name: &str) -> PathBuf {
    let path = tmp(name);
    let mut text = String::new();
    for layer in 0..19u32 {
        for i in 0..8u32 {
            for j in 0..8u32 {
                if (i + j) % 3 != 2 {
                    text.push_str(&format!("{} {}\n", layer * 8 + i, (layer + 1) * 8 + j));
                }
            }
        }
    }
    std::fs::write(&path, text).expect("write edges");
    path
}

#[test]
fn faults_quarantines_and_verifies_the_closure() {
    let edges = layered_edges("faults_demo.txt");
    let out = gpasta(&[
        "faults",
        edges.to_str().expect("utf8"),
        "--seed",
        "7",
        "--rate",
        "0.05",
        "--workers",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("fault(s) fired"), "{text}");
    assert!(
        text.contains("quarantine verified: poisoned set is the forward closure"),
        "{text}"
    );
}

#[test]
fn faults_with_a_clean_seed_salvages_everything() {
    let edges = layered_edges("faults_clean.txt");
    // Rate 0 fires nothing regardless of seed.
    let out = gpasta(&["faults", edges.to_str().expect("utf8"), "--rate", "0"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("0 fault(s) fired"), "{text}");
    assert!(text.contains("0 poisoned"), "{text}");
}

#[test]
fn faults_rejects_bad_flags_cleanly() {
    let edges = layered_edges("faults_flags.txt");
    let out = gpasta(&["faults", edges.to_str().expect("utf8"), "--workers", "0"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("at least one worker"),
        "{}",
        stderr(&out)
    );

    let out = gpasta(&["faults", edges.to_str().expect("utf8"), "--rate", "1.5"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--rate must be within [0, 1]"),
        "{}",
        stderr(&out)
    );

    let out = gpasta(&["faults"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("missing <edges-file>"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn sanitize_recovery_is_deterministic_across_worker_counts() {
    let edges = layered_edges("recovery_sanitize.txt");
    let out = gpasta(&[
        "sanitize",
        edges.to_str().expect("utf8"),
        "--algo",
        "recovery",
        "--workers",
        "1,2,4",
        "--runs",
        "2",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("recovery"), "{text}");
    assert!(text.contains("Deterministic"), "{text}");
}
