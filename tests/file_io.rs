//! Integration tests for the interchange formats: Verilog netlists,
//! Liberty libraries, and TDG edge lists, exercised end-to-end through
//! generation, serialisation, parsing, and analysis.

use gpasta::circuits::{dag, PaperCircuit};
use gpasta::core::{Partitioner, PartitionerOptions, SeqGPasta};
use gpasta::sta::{parse_liberty, parse_verilog, write_liberty, write_verilog, CellLibrary, Timer};
use gpasta::tdg::{parse_edge_list, validate, write_edge_list};

#[test]
fn generated_circuits_round_trip_through_verilog() {
    for &circuit in &[PaperCircuit::AesCore, PaperCircuit::Leon2] {
        let netlist = circuit.build(0.002);
        let text = write_verilog(&netlist, circuit.name());
        let back = parse_verilog(&text)
            .unwrap_or_else(|e| panic!("{circuit}: generated Verilog failed to parse: {e}"));
        assert_eq!(netlist, back, "{circuit}: round trip changed the netlist");
    }
}

#[test]
fn verilog_round_trip_preserves_update_tdg() {
    let netlist = PaperCircuit::VgaLcd.build(0.003);
    let back = parse_verilog(&write_verilog(&netlist, "t")).expect("parses");

    let mut a = Timer::new(netlist, CellLibrary::typical());
    let mut b = Timer::new(back, CellLibrary::typical());
    assert_eq!(a.update_timing().tdg(), b.update_timing().tdg());
}

#[test]
fn liberty_round_trip_preserves_analysis() {
    let library = CellLibrary::typical();
    let parsed = parse_liberty(&write_liberty(&library, "t")).expect("parses");
    let netlist = PaperCircuit::AesCore.build(0.003);

    let mut with_original = Timer::new(netlist.clone(), library);
    with_original.update_timing().run_sequential();
    let mut with_parsed = Timer::new(netlist, parsed);
    with_parsed.update_timing().run_sequential();
    assert_eq!(with_original.report(1).wns_ps, with_parsed.report(1).wns_ps);
}

#[test]
fn update_tdgs_round_trip_through_edge_lists() {
    let mut timer = Timer::new(PaperCircuit::AesCore.build(0.003), CellLibrary::typical());
    let update = timer.update_timing();
    let tdg = update.tdg();

    let text = write_edge_list(tdg);
    let back = parse_edge_list(&text).expect("parses");
    assert_eq!(tdg, &back);

    // And the parsed TDG is still partitionable.
    let p = SeqGPasta::new()
        .partition(&back, &PartitionerOptions::default())
        .expect("valid options");
    validate::check_all(&back, &p).expect("valid partition");
}

#[test]
fn dag_generators_round_trip_through_edge_lists() {
    for tdg in [
        dag::chain(20),
        dag::fanin_tree(32),
        dag::series_parallel(5, 4),
        dag::layered(16, 8, 2, 3),
        dag::random_dag(200, 1.5, 9),
    ] {
        let back = parse_edge_list(&write_edge_list(&tdg)).expect("parses");
        assert_eq!(tdg, back);
    }
}

#[test]
fn foreign_verilog_is_accepted() {
    // Hand-written, formatted differently from our writer.
    let text = r"
// a half adder, written by hand
module half_adder (x, y, sum, carry);
  input x, y;
  output sum, carry;
  wire s, c;
  XOR2 u_sum   (.a(x), .b(y), .y(s));
  AND2 u_carry (.a(x), .b(y), .y(c));
  assign sum = s;
  assign carry = c;
endmodule
";
    let netlist = parse_verilog(text).expect("hand-written netlist parses");
    assert_eq!(netlist.num_gates(), 2);
    let mut timer = Timer::new(netlist, CellLibrary::typical());
    timer.update_timing().run_sequential();
    let report = timer.report(2);
    assert_eq!(report.num_endpoints, 2);
    assert!(report.meets_timing());
}
