//! Property-based tests for the [`CsrTdg`] builder: the level-ordered
//! CSR view must uphold the memory-layout contract of DESIGN.md §13 on
//! arbitrary DAGs — permutation round trip, monotone offsets, preserved
//! edge multiset and adjacency order, level-major numbering.
//!
//! The partitioners' bit-identity to their legacy paths (checked in
//! `tests/csr_layout.rs` and per-crate unit tests) rests on exactly
//! these invariants, so they get their own adversarial suite.

use gpasta::tdg::{TaskId, Tdg, TdgBuilder};
use proptest::prelude::*;

/// Case count, overridable via `PROPTEST_CASES` (the nightly CI job
/// raises it).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Random DAG via low-to-high edge orientation (same shape family as
/// the partitioner proptests).
fn arb_dag(max_n: usize) -> impl Strategy<Value = Tdg> {
    (1usize..=max_n)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = TdgBuilder::new(n);
            for (a, c) in edges {
                if a < c {
                    b.add_edge(TaskId(a), TaskId(c));
                } else if c < a {
                    b.add_edge(TaskId(c), TaskId(a));
                }
            }
            b.build().expect("low->high orientation is acyclic")
        })
}

/// Independent levelisation by Kahn's algorithm: `level[v]` is the
/// longest predecessor-path length — computed without touching the
/// [`Levels`]/[`CsrTdg`] machinery under test.
fn kahn_levels(tdg: &Tdg) -> Vec<u32> {
    let n = tdg.num_tasks();
    let mut indeg: Vec<usize> = (0..n)
        .map(|v| tdg.predecessors(TaskId(v as u32)).len())
        .collect();
    let mut level = vec![0u32; n];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &s in tdg.successors(TaskId(u)) {
            level[s as usize] = level[s as usize].max(level[u as usize] + 1);
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push(s);
            }
        }
    }
    assert_eq!(head, n, "DAG: every task is reachable by Kahn's algorithm");
    level
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn perm_and_rank_are_inverse_bijections(tdg in arb_dag(150)) {
        let c = tdg.csr();
        let n = tdg.num_tasks();
        prop_assert_eq!(c.perm().len(), n);
        prop_assert_eq!(c.rank().len(), n);
        let mut seen = vec![false; n];
        for (new, &old) in c.perm().iter().enumerate() {
            prop_assert!(!std::mem::replace(&mut seen[old as usize], true),
                "original id {} appears twice in perm", old);
            prop_assert_eq!(c.rank()[old as usize] as usize, new, "rank is not perm's inverse");
        }
    }

    #[test]
    fn offsets_are_monotone_and_bounded(tdg in arb_dag(150)) {
        let c = tdg.csr();
        let offs = c.level_offsets();
        prop_assert_eq!(offs[0], 0);
        prop_assert_eq!(*offs.last().expect("non-empty") as usize, c.num_tasks());
        for w in offs.windows(2) {
            prop_assert!(w[0] < w[1], "level offsets must strictly increase (no empty level)");
        }
    }

    #[test]
    fn numbering_is_level_major_ascending_within_level(tdg in arb_dag(150)) {
        let c = tdg.csr();
        let level = kahn_levels(&tdg);
        for l in 0..c.depth() {
            let range = c.level_range(l);
            let originals = &c.perm()[range];
            for &old in originals {
                prop_assert_eq!(level[old as usize] as usize, l,
                    "csr level {} holds original id {} of level {}", l, old, level[old as usize]);
            }
            for w in originals.windows(2) {
                prop_assert!(w[0] < w[1], "within a level, CSR order must be ascending original id");
            }
        }
        prop_assert_eq!(c.num_sources(), tdg.sources().len());
    }

    #[test]
    fn every_csr_edge_points_strictly_forward(tdg in arb_dag(150)) {
        let c = tdg.csr();
        for u in 0..c.num_tasks() as u32 {
            for &v in c.successors(u) {
                prop_assert!(u < v, "CSR edge {} -> {} does not point forward", u, v);
            }
            for &p in c.predecessors(u) {
                prop_assert!(p < u, "CSR predecessor {} of {} is not earlier", p, u);
            }
        }
    }

    #[test]
    fn adjacency_order_and_edge_multiset_round_trip(tdg in arb_dag(150)) {
        let c = tdg.csr();
        // Adjacency order: each CSR list mapped through perm equals the
        // original list (this is stronger than multiset equality, but
        // check both directions and the multiset explicitly).
        for old in 0..tdg.num_tasks() as u32 {
            let u = c.rank()[old as usize];
            let succ: Vec<u32> = c.successors(u).iter().map(|&v| c.perm()[v as usize]).collect();
            prop_assert_eq!(succ, tdg.successors(TaskId(old)).to_vec(),
                "successor order of original {} not preserved", old);
            let pred: Vec<u32> = c.predecessors(u).iter().map(|&v| c.perm()[v as usize]).collect();
            prop_assert_eq!(pred, tdg.predecessors(TaskId(old)).to_vec(),
                "predecessor order of original {} not preserved", old);
        }
        let mut orig: Vec<(u32, u32)> = tdg.edges().map(|(u, v)| (u.0, v.0)).collect();
        let mut mapped: Vec<(u32, u32)> = (0..c.num_tasks() as u32)
            .flat_map(|u| {
                c.successors(u)
                    .iter()
                    .map(move |&v| (u, v))
                    .collect::<Vec<_>>()
            })
            .map(|(u, v)| (c.perm()[u as usize], c.perm()[v as usize]))
            .collect();
        orig.sort_unstable();
        mapped.sort_unstable();
        prop_assert_eq!(orig, mapped, "edge multiset does not round trip");
        prop_assert_eq!(c.num_deps(), tdg.num_deps());
    }

    #[test]
    fn degrees_and_scatter_match_the_original_space(tdg in arb_dag(150)) {
        let c = tdg.csr();
        let mut deg = vec![99u32; 7]; // dirty buffer: fill must clear it
        c.fill_in_degrees(&mut deg);
        prop_assert_eq!(deg.len(), c.num_tasks());
        for u in 0..c.num_tasks() as u32 {
            prop_assert_eq!(deg[u as usize], c.in_degree(u));
            prop_assert_eq!(c.in_degree(u) as usize, c.predecessors(u).len());
        }
        // Scatter sends CSR-indexed values back to original ids.
        let vals: Vec<u32> = (0..c.num_tasks() as u32).map(|i| i * 3 + 1).collect();
        let back = c.scatter_to_original(&vals);
        for (new, &old) in c.perm().iter().enumerate() {
            prop_assert_eq!(back[old as usize], vals[new]);
        }
    }
}
