// Two-stage pipeline fixture for the session/serve integration tests:
// a combinational front-end feeding two DFFs, then a second cloud of
// logic to the primary outputs. Ten gates, two register endpoints, two
// PO endpoints -- big enough that repower edits move the critical path.
module pipeline (a, b, c, d, y, z);
  input a, b, c, d;
  output y, z;
  wire n0, n1, n2, n3, n4, n5, n6, n7, n8, n9;

  NAND2 u0 (.a(a), .b(b), .y(n0));
  NAND2 u1 (.a(c), .b(d), .y(n1));
  XOR2 u2 (.a(n0), .b(n1), .y(n2));
  INV u3 (.a(n2), .y(n3));
  DFF r0 (.d(n3), .q(n4));
  DFF r1 (.d(n2), .q(n5));
  AND2 u4 (.a(n4), .b(n5), .y(n6));
  NOR2 u5 (.a(n4), .b(n1), .y(n7));
  AOI21 u6 (.a(n6), .b(n7), .c(n5), .y(n8));
  INV u7 (.a(n8), .y(n9));
  assign y = n9;
  assign z = n7;
endmodule
