//! Determinism guarantees across the whole stack (the paper's §3.3
//! motivation: debugging needs reproducible partitions).

use gpasta::circuits::{dag, PaperCircuit};
use gpasta::core::{DeterGPasta, GPasta, Partitioner, PartitionerOptions, SeqGPasta};
use gpasta::gpu::Device;
use gpasta::sta::{CellLibrary, Timer};

/// The update-TDG of a small paper circuit — a realistic partitioner input.
fn sta_tdg() -> gpasta::tdg::Tdg {
    let mut timer = Timer::new(PaperCircuit::AesCore.build(0.01), CellLibrary::typical());
    let update = timer.update_timing();
    update.tdg().clone()
}

#[test]
fn deter_gpasta_is_reproducible_on_sta_workloads() {
    let tdg = sta_tdg();
    let opts = PartitionerOptions::default();
    let reference = DeterGPasta::with_device(Device::single())
        .partition(&tdg, &opts)
        .expect("valid options");
    for workers in [1usize, 2, 3, 4, 8] {
        for run in 0..2 {
            let p = DeterGPasta::with_device(Device::new(workers))
                .partition(&tdg, &opts)
                .expect("valid options");
            assert_eq!(p, reference, "workers={workers} run={run} diverged");
        }
    }
}

#[test]
fn racy_gpasta_is_valid_but_may_differ_while_deter_never_does() {
    // Run the racy kernel many times on a wide contended graph. Every
    // result must validate; the deterministic kernel must be bit-identical
    // every time. (We do not assert the racy runs differ — on a machine
    // with few cores they often agree — only that determinism is a
    // property of deter-G-PASTA, not luck.)
    let tdg = dag::layered(128, 8, 2, 21);
    let opts = PartitionerOptions::with_max_size(4);

    let deter_ref = DeterGPasta::with_device(Device::new(4))
        .partition(&tdg, &opts)
        .expect("valid options");
    for _ in 0..5 {
        let racy = GPasta::with_device(Device::new(4))
            .partition(&tdg, &opts)
            .expect("valid options");
        gpasta::tdg::validate::check_all(&tdg, &racy).expect("racy result is still valid");

        let deter = DeterGPasta::with_device(Device::new(4))
            .partition(&tdg, &opts)
            .expect("valid options");
        assert_eq!(deter, deter_ref);
    }
}

#[test]
fn seq_gpasta_is_reproducible() {
    let tdg = sta_tdg();
    let a = SeqGPasta::new()
        .partition(&tdg, &PartitionerOptions::default())
        .expect("valid options");
    let b = SeqGPasta::new()
        .partition(&tdg, &PartitionerOptions::default())
        .expect("valid options");
    assert_eq!(a, b);
}

#[test]
fn circuit_generation_is_reproducible_across_calls() {
    let a = PaperCircuit::Leon3mp.build(0.001);
    let b = PaperCircuit::Leon3mp.build(0.001);
    assert_eq!(a, b);

    // And the derived TDGs are identical too.
    let mut ta = Timer::new(a, CellLibrary::typical());
    let mut tb = Timer::new(b, CellLibrary::typical());
    assert_eq!(ta.update_timing().tdg(), tb.update_timing().tdg());
}

#[test]
fn sta_results_are_deterministic_across_worker_counts() {
    use gpasta::sched::Executor;
    let mut reference: Option<f32> = None;
    for workers in [1usize, 2, 4] {
        let mut timer = Timer::new(PaperCircuit::AesCore.build(0.005), CellLibrary::typical());
        {
            let update = timer.update_timing();
            let payload = update.task_fn();
            Executor::new(workers).run_tdg(update.tdg(), &payload);
        }
        let wns = timer.report(1).wns_ps;
        match reference {
            None => reference = Some(wns),
            Some(r) => assert_eq!(wns, r, "workers={workers}"),
        }
    }
}
