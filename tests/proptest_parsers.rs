//! Adversarial hardening for the interchange parsers: `parse_verilog`,
//! `parse_liberty`, and `apply_sdc` must return `Err` — never panic, hang,
//! or overflow the stack — on truncated, interleaved, and garbage input.
//!
//! The round-trip suites (`tests/proptest_io.rs`, the in-crate sdc tests)
//! pin what the parsers *accept*; this suite pins how they *fail*. The
//! vendored proptest stub has no string strategies, so malformed text is
//! assembled from token tables indexed by generated integers — which also
//! keeps every case within the parsers' own lexical alphabet, where bugs
//! hide (pure binary garbage dies in the lexer immediately).

use gpasta::sta::{
    apply_sdc, parse_liberty, parse_verilog, write_liberty, write_sdc, write_verilog, CellKind,
    CellLibrary, NetlistBuilder, Timer,
};
use proptest::prelude::*;

/// Every lexical token the Verilog reader knows, plus near-miss garbage.
const VERILOG_TOKENS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "wire",
    "(",
    ")",
    ";",
    ",",
    "m",
    "a",
    "b",
    "y",
    "w0",
    "u1",
    "nand2",
    "inv",
    "dff",
    "//",
    "/*",
    "*/",
    ".",
    "0",
    "1'b0",
    "%",
    "modul",
    "énd",
    "\n",
];

/// Liberty grammar tokens plus malformed numbers and stray structure.
const LIBERTY_TOKENS: &[&str] = &[
    "library",
    "cell",
    "pin",
    "timing",
    "lu_table_template",
    "(",
    ")",
    "{",
    "}",
    ":",
    ";",
    ",",
    "\"",
    "values",
    "index_1",
    "index_2",
    "cell_rise",
    "rise_transition",
    "direction",
    "1.5",
    "-3e99",
    "nan",
    "l",
    "c",
    "A",
    "Z",
    "..",
    "\n",
];

/// SDC command fragments, valid and broken.
const SDC_TOKENS: &[&str] = &[
    "create_clock",
    "-period",
    "set_input_delay",
    "set_output_delay",
    "set_input_slew",
    "set_load",
    "[get_ports",
    "]",
    "a",
    "y",
    "no_such_port",
    "12.5",
    "-7",
    "1e999",
    "#",
    "\n",
];

/// Join table tokens into a text blob; the joiner alternates so tokens are
/// sometimes glued together (lexer stress) and sometimes separated.
fn assemble(table: &[&str], picks: &[usize]) -> String {
    let mut out = String::new();
    for (i, &p) in picks.iter().enumerate() {
        out.push_str(table[p % table.len()]);
        if i % 3 != 2 {
            out.push(' ');
        }
    }
    out
}

/// Clamp a byte offset down to a char boundary so truncation is valid UTF-8.
fn truncate_at(text: &str, mut cut: usize) -> &str {
    cut = cut.min(text.len());
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    &text[..cut]
}

/// A well-formed netlist to truncate and corrupt.
fn valid_verilog() -> String {
    let mut nb = NetlistBuilder::new();
    let a = nb.add_primary_input("a");
    let b = nb.add_primary_input("b");
    let y = nb.add_primary_output("y");
    let g0 = nb.add_gate("u0", CellKind::Nand2);
    let g1 = nb.add_gate("u1", CellKind::Inv);
    nb.connect_to_gate(a, g0, 0).expect("valid");
    nb.connect_to_gate(b, g0, 1).expect("valid");
    nb.connect_gates(g0, g1, 0).expect("valid");
    nb.connect_to_output(g1, y).expect("valid");
    write_verilog(&nb.build().expect("well-formed"), "top")
}

/// A one-gate design for `apply_sdc`, rebuilt per case (the parser mutates
/// the timer, so cases must not share state).
fn tiny_timer() -> Timer {
    let mut nb = NetlistBuilder::new();
    let a = nb.add_primary_input("a");
    let g = nb.add_gate("u1", CellKind::Inv);
    let y = nb.add_primary_output("y");
    nb.connect_to_gate(a, g, 0).expect("valid");
    nb.connect_to_output(g, y).expect("valid");
    Timer::new(nb.build().expect("well-formed"), CellLibrary::typical())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- garbage token streams: any outcome but a panic ---------------

    #[test]
    fn verilog_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..VERILOG_TOKENS.len(), 0..200),
    ) {
        let _ = parse_verilog(&assemble(VERILOG_TOKENS, &picks));
    }

    #[test]
    fn liberty_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..LIBERTY_TOKENS.len(), 0..200),
    ) {
        let _ = parse_liberty(&assemble(LIBERTY_TOKENS, &picks));
    }

    #[test]
    fn sdc_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..SDC_TOKENS.len(), 0..120),
    ) {
        let mut timer = tiny_timer();
        let _ = apply_sdc(&mut timer, &assemble(SDC_TOKENS, &picks));
    }

    // --- truncation: every prefix of valid output parses or errs ------

    #[test]
    fn verilog_never_panics_on_truncated_valid_input(cut in 0usize..4096) {
        let text = valid_verilog();
        let _ = parse_verilog(truncate_at(&text, cut % (text.len() + 1)));
    }

    #[test]
    fn liberty_never_panics_on_truncated_valid_input(cut in 0usize..65536) {
        let text = write_liberty(&CellLibrary::typical(), "typ");
        let _ = parse_liberty(truncate_at(&text, cut % (text.len() + 1)));
    }

    #[test]
    fn sdc_never_panics_on_truncated_valid_input(cut in 0usize..4096) {
        let text = {
            let timer = tiny_timer();
            write_sdc(&timer)
        };
        let mut timer = tiny_timer();
        let _ = apply_sdc(&mut timer, truncate_at(&text, cut % (text.len() + 1)));
    }

    // --- interleaving: garbage spliced into valid text -----------------

    #[test]
    fn verilog_never_panics_on_interleaved_garbage(
        at in 0usize..4096,
        picks in proptest::collection::vec(0usize..VERILOG_TOKENS.len(), 1..12),
    ) {
        let text = valid_verilog();
        let cut = {
            let mut c = at % (text.len() + 1);
            while !text.is_char_boundary(c) {
                c -= 1;
            }
            c
        };
        let spliced = format!(
            "{} {} {}",
            &text[..cut],
            assemble(VERILOG_TOKENS, &picks),
            &text[cut..]
        );
        let _ = parse_verilog(&spliced);
    }

    #[test]
    fn liberty_never_panics_on_interleaved_garbage(
        at in 0usize..65536,
        picks in proptest::collection::vec(0usize..LIBERTY_TOKENS.len(), 1..12),
    ) {
        let text = write_liberty(&CellLibrary::typical(), "typ");
        let cut = {
            let mut c = at % (text.len() + 1);
            while !text.is_char_boundary(c) {
                c -= 1;
            }
            c
        };
        let spliced = format!(
            "{} {} {}",
            &text[..cut],
            assemble(LIBERTY_TOKENS, &picks),
            &text[cut..]
        );
        let _ = parse_liberty(&spliced);
    }
}

// --- deeply repeated tokens: no recursion blow-ups --------------------

#[test]
fn verilog_survives_deeply_nested_parens() {
    assert!(parse_verilog(&"(".repeat(100_000)).is_err());
    assert!(parse_verilog(&"( )".repeat(50_000)).is_err());
}

#[test]
fn verilog_survives_huge_flat_bodies() {
    let text = format!("module m;\n{}\nendmodule\n", "wire w;\n".repeat(50_000));
    // Duplicate wire declarations are tolerated or rejected — just not a
    // crash; a huge but well-formed body must stay linear-time.
    let _ = parse_verilog(&text);
}

#[test]
fn liberty_survives_deeply_nested_braces() {
    assert!(parse_liberty(&"{".repeat(100_000)).is_err());
    assert!(parse_liberty(&format!("library (l) {{ {}", "cell (c) { ".repeat(40_000))).is_err());
}

#[test]
fn liberty_survives_unterminated_string() {
    let mut text = write_liberty(&CellLibrary::typical(), "typ");
    text.push('"');
    let _ = parse_liberty(&text);
}

#[test]
fn sdc_survives_huge_line_and_huge_file() {
    let mut timer = tiny_timer();
    assert!(apply_sdc(&mut timer, &"[get_ports ".repeat(50_000)).is_err());
    let many = "create_clock -period 1000\n".repeat(50_000);
    apply_sdc(&mut timer, &many).expect("repeated valid commands apply");
}

#[test]
fn parser_errors_carry_actionable_context() {
    // Errors are part of the CLI surface (`gpasta sta` prints them
    // verbatim): they must name the offending construct.
    let err =
        parse_verilog("module m(a); input a; not u1(y, a); endmodule").expect_err("unknown cell");
    assert!(err.to_string().contains("not"), "err was: {err}");
    let mut timer = tiny_timer();
    let err = apply_sdc(&mut timer, "set_input_delay 5 [get_ports zz]").expect_err("unknown port");
    assert!(err.to_string().contains("zz"), "err was: {err}");
}
