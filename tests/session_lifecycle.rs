//! Lifecycle tests of [`gpasta::session`] and the serve registry, at
//! the library level: no processes, no sockets, so the whole file is
//! safe to run under ThreadSanitizer (the nightly `tsan-smoke` job
//! does). The two properties under test are the ones `gpasta serve`
//! sells: eviction through a `GPCKPT01` checkpoint is invisible to
//! timing results, and disjoint sessions serve concurrent clients
//! without interference.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use gpasta::sched::{RunBudget, StopCause};
use gpasta::serve::Registry;
use gpasta::session::{DesignSources, Edit, Session};

const PIPELINE: &str = include_str!("fixtures/pipeline.v");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpasta-lifecycle-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn sources() -> DesignSources {
    DesignSources::verilog_only(PIPELINE)
}

/// The edit sequence both halves of the differential test apply: a
/// repower on each logic cloud, a net-cap bump (journaled — it lives
/// outside the timing snapshot), and an input-delay change.
fn early_edits() -> Vec<Edit> {
    vec![
        Edit::Repower {
            gate: "u2".to_string(),
            drive: 4.0,
        },
        Edit::SetNetCap {
            net: 3,
            cap_ff: 7.5,
        },
    ]
}

fn late_edits() -> Vec<Edit> {
    vec![
        Edit::Repower {
            gate: "u6".to_string(),
            drive: 0.5,
        },
        Edit::SetInputDelay {
            port: "a".to_string(),
            delay_ps: 120.0,
        },
    ]
}

fn bits(session: &Session) -> (u32, u32) {
    let report = session.report(1);
    (report.wns_ps.to_bits(), report.tns_ps.to_bits())
}

/// create -> edit -> update -> evict-to-checkpoint -> restore -> edit
/// -> update -> query must be bit-identical to the same flow with no
/// eviction in the middle.
#[test]
fn evict_restore_is_invisible_to_timing_results() {
    let dir = tmp_dir("differential");

    // Reference: uninterrupted session.
    let mut reference = Session::create("diff", sources(), 2).expect("create");
    for edit in early_edits().iter().chain(late_edits().iter()) {
        reference.apply_edit(edit).expect("edit");
        let out = reference
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        assert_eq!(out.stop, StopCause::Completed);
    }

    // Subject: same flow, but spooled to disk and restored between the
    // early and late edits.
    let mut subject = Session::create("diff", sources(), 2).expect("create");
    for edit in &early_edits() {
        subject.apply_edit(edit).expect("edit");
        subject
            .update_timing(&RunBudget::unbounded())
            .expect("update");
    }
    let ckpt = dir.join("diff.ckpt");
    let dormant = subject.evict_to(&ckpt).expect("evict");
    drop(subject);
    assert!(ckpt.exists(), "checkpoint written");

    let mut subject = dormant.restore(2).expect("restore");
    for edit in &late_edits() {
        subject.apply_edit(edit).expect("edit");
        subject
            .update_timing(&RunBudget::unbounded())
            .expect("update");
    }

    assert_eq!(
        bits(&reference),
        bits(&subject),
        "WNS/TNS must be bit-identical across evict/restore"
    );
    assert_eq!(reference.epoch(), subject.epoch(), "cache epochs agree");
    let ref_paths = reference.worst_paths(1);
    let sub_paths = subject.worst_paths(1);
    assert_eq!(ref_paths, sub_paths, "worst paths agree step for step");

    std::fs::remove_dir_all(&dir).ok();
}

/// Eight clients on eight disjoint sessions through one shared
/// registry, each running its own edit/update/evict/restore cycle.
/// Every client must see exactly the results a solo session computes
/// for its design — concurrency must not leak between slots.
#[test]
fn concurrent_disjoint_sessions_do_not_interfere() {
    const CLIENTS: usize = 8;
    let spool = tmp_dir("concurrent");
    let registry = Arc::new(Registry::new(spool.clone(), 1, CLIENTS + 2));

    let drive_of = |i: usize| 1.5 + i as f32 * 0.5;

    // Solo references, computed up front on this thread.
    let mut expected = Vec::with_capacity(CLIENTS);
    for i in 0..CLIENTS {
        let mut solo = Session::create(format!("solo-{i}"), sources(), 1).expect("create");
        solo.apply_edit(&Edit::Repower {
            gate: "u2".to_string(),
            drive: drive_of(i),
        })
        .expect("edit");
        solo.update_timing(&RunBudget::unbounded()).expect("update");
        expected.push(bits(&solo));
    }

    let mut clients = Vec::with_capacity(CLIENTS);
    for i in 0..CLIENTS {
        let registry = registry.clone();
        clients.push(thread::spawn(move || {
            let name = format!("client-{i}");
            registry.create(&name, sources()).expect("create");
            {
                let arc = registry.live(&name).expect("live");
                let mut session = arc.lock();
                session
                    .apply_edit(&Edit::Repower {
                        gate: "u2".to_string(),
                        drive: drive_of(i),
                    })
                    .expect("edit");
                session
                    .update_timing(&RunBudget::unbounded())
                    .expect("update");
            }
            // Bounce through the spool while the other clients hammer
            // theirs: the registry lock churn is the point.
            registry.evict(&name).expect("evict");
            registry.restore(&name).expect("restore");
            let arc = registry.live(&name).expect("live again");
            let session = arc.lock();
            bits(&session)
        }));
    }

    for (i, handle) in clients.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        assert_eq!(
            got, expected[i],
            "client {i} must match its solo reference bit for bit"
        );
    }
    assert_eq!(registry.list().len(), CLIENTS, "all sessions registered");
    assert!(registry.list().iter().all(|row| row.is_live()));

    std::fs::remove_dir_all(&spool).ok();
}
