//! Differential kill/resume tests for the crash-safe checkpoint flow.
//!
//! The oracle is the straight-through run: the same `UpdateFlowConfig`
//! executed without interruption. Each case then re-runs the flow with
//! per-iteration checkpointing, kills it at a randomized iteration
//! (simulating a crash after the checkpoint's atomic rename), resumes from
//! the checkpoint file, and asserts the final state is **bit-identical**
//! to the oracle: WNS and TNS as `f32` bit patterns, the full per-task
//! partition assignment, and the partitioner's repair epoch. Cases sweep
//! seeds and worker counts, and one chain kills the run twice to prove
//! checkpoints compose.

use gpasta::checkpoint::{run_update_flow, UpdateFlowConfig, UpdateFlowOutcome};
use gpasta::circuits::PaperCircuit;
use gpasta::sched::StopCause;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn tmp_ckpt(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "gpasta-resume-test-{}-{tag}-{n}.ckpt",
        std::process::id()
    ))
}

fn assert_same_final_state(oracle: &UpdateFlowOutcome, resumed: &UpdateFlowOutcome, what: &str) {
    assert_eq!(resumed.stop, StopCause::Completed, "{what}: stop cause");
    assert!(!resumed.killed, "{what}: resumed run must finish");
    assert_eq!(
        resumed.iterations_done, oracle.iterations_done,
        "{what}: iteration count"
    );
    assert_eq!(resumed.wns_bits, oracle.wns_bits, "{what}: WNS bits");
    assert_eq!(resumed.tns_bits, oracle.tns_bits, "{what}: TNS bits");
    assert_eq!(
        resumed.assignment, oracle.assignment,
        "{what}: partition assignment"
    );
    assert_eq!(resumed.epoch, oracle.epoch, "{what}: repair epoch");
}

/// One full differential sweep: oracle run, then two randomized kill
/// points, each killed + resumed and compared bit-for-bit.
fn differential(circuit: PaperCircuit, scale: f64, seed: u64, workers: usize) {
    const ITERS: u32 = 8;
    let mut cfg = UpdateFlowConfig::small(circuit);
    cfg.scale = scale;
    cfg.iterations = ITERS;
    cfg.workers = workers;
    cfg.seed = seed;

    let oracle = run_update_flow(&cfg).expect("oracle run");
    assert_eq!(oracle.stop, StopCause::Completed);
    assert_eq!(oracle.iterations_done, ITERS);
    assert_eq!(oracle.unknown_endpoints, 0);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4A5);
    let mut kills: Vec<u32> = (0..2).map(|_| rng.gen_range(1..ITERS)).collect();
    kills.dedup();
    for kill in kills {
        let what = format!("{circuit} seed {seed:#x}, {workers}w, kill@{kill}");
        let path = tmp_ckpt("diff");

        let mut killed_cfg = cfg.clone();
        killed_cfg.checkpoint_to = Some(path.clone());
        killed_cfg.kill_after = Some(kill);
        let partial = run_update_flow(&killed_cfg).expect("killed run");
        assert!(partial.killed, "{what}: kill_after must trigger");
        assert_eq!(partial.iterations_done, kill, "{what}: killed at the mark");

        let mut resume_cfg = cfg.clone();
        resume_cfg.resume_from = Some(path.clone());
        let resumed = run_update_flow(&resume_cfg).expect("resumed run");
        assert_same_final_state(&oracle, &resumed, &what);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn aes_core_kill_resume_is_bit_identical_seed_a() {
    for workers in [1, 3] {
        differential(PaperCircuit::AesCore, 0.002, 0xA11CE, workers);
    }
}

#[test]
fn aes_core_kill_resume_is_bit_identical_seed_b() {
    for workers in [1, 3] {
        differential(PaperCircuit::AesCore, 0.002, 0xB0B, workers);
    }
}

#[test]
fn vga_lcd_kill_resume_is_bit_identical_seed_c() {
    for workers in [2, 4] {
        differential(PaperCircuit::VgaLcd, 0.001, 0xCAFE, workers);
    }
}

#[test]
fn worker_count_may_change_across_the_crash() {
    // A resume on a different machine shape (fewer/more workers) still
    // converges to the oracle bits: the engine is worker-count
    // deterministic and the checkpoint stores no scheduling state.
    let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
    cfg.scale = 0.002;
    cfg.iterations = 6;
    cfg.seed = 0xD00D;
    cfg.workers = 1;
    let oracle = run_update_flow(&cfg).expect("oracle run");

    let path = tmp_ckpt("workers");
    let mut killed_cfg = cfg.clone();
    killed_cfg.checkpoint_to = Some(path.clone());
    killed_cfg.kill_after = Some(3);
    killed_cfg.workers = 4;
    run_update_flow(&killed_cfg).expect("killed run");

    let mut resume_cfg = cfg.clone();
    resume_cfg.resume_from = Some(path.clone());
    resume_cfg.workers = 2;
    let resumed = run_update_flow(&resume_cfg).expect("resumed run");
    assert_same_final_state(&oracle, &resumed, "cross-worker resume");
    std::fs::remove_file(&path).ok();
}

#[test]
fn double_kill_chain_composes() {
    // Crash twice: run to 2, resume to 5, resume to the end. The final
    // state must still match the uninterrupted oracle bit-for-bit.
    let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
    cfg.scale = 0.002;
    cfg.iterations = 7;
    cfg.seed = 0x2C4A;
    let oracle = run_update_flow(&cfg).expect("oracle run");

    let path = tmp_ckpt("chain");
    let mut stage = cfg.clone();
    stage.checkpoint_to = Some(path.clone());
    stage.kill_after = Some(2);
    let first = run_update_flow(&stage).expect("first crash");
    assert_eq!(first.iterations_done, 2);

    stage.resume_from = Some(path.clone());
    stage.kill_after = Some(5);
    let second = run_update_flow(&stage).expect("second crash");
    assert_eq!(second.iterations_done, 5);

    stage.kill_after = None;
    let finished = run_update_flow(&stage).expect("final leg");
    assert_same_final_state(&oracle, &finished, "double-kill chain");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_after_a_crash_during_checkpointing_uses_the_previous_checkpoint() {
    // Simulate a crash *mid-write*: after iteration 3's checkpoint lands,
    // scribble a half-written temp file next to it (what a torn write
    // would leave) and truncate nothing else. The resume must ignore the
    // temp file, read the intact checkpoint, and still match the oracle.
    let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
    cfg.scale = 0.002;
    cfg.iterations = 6;
    cfg.seed = 0x7041;
    let oracle = run_update_flow(&cfg).expect("oracle run");

    let path = tmp_ckpt("torn");
    let mut killed_cfg = cfg.clone();
    killed_cfg.checkpoint_to = Some(path.clone());
    killed_cfg.kill_after = Some(3);
    run_update_flow(&killed_cfg).expect("killed run");

    let mut tmp_name = path.file_name().expect("file name").to_os_string();
    tmp_name.push(".tmp");
    let torn = path.with_file_name(tmp_name);
    std::fs::write(&torn, b"GPCKPT01 torn mid-write").expect("write torn temp");

    let mut resume_cfg = cfg.clone();
    resume_cfg.resume_from = Some(path.clone());
    let resumed = run_update_flow(&resume_cfg).expect("resumed run");
    assert_same_final_state(&oracle, &resumed, "torn-write resume");
    std::fs::remove_file(&torn).ok();
    std::fs::remove_file(&path).ok();
}
