//! Differential fault-recovery suite: whatever faults fire, a recovering
//! timing update (1) never aborts the process, (2) salvages *exactly* the
//! complement of the poisoned forward closure, and (3) converges to the
//! bit-identical fault-free analysis after `heal` — on both the plain and
//! the partition-quarantine scheduling paths, at every worker count.

use gpasta::circuits::{generate_netlist, CircuitSpec};
use gpasta::core::{GPasta, Partitioner, PartitionerOptions};
use gpasta::sched::{Executor, FaultKind, FaultPlan, RetryPolicy, RunOutcome};
use gpasta::sta::{CellLibrary, NodeId, Timer};
use gpasta::tdg::{QuotientTdg, TaskId, Tdg};
use std::time::Duration;

/// A few hundred gates: big enough for distinct cones, small enough to
/// heal in milliseconds.
fn test_timer() -> Timer {
    let mut spec = CircuitSpec::small("fault_recovery", 0xD1FF);
    spec.num_gates = 300;
    Timer::new(generate_netlist(&spec), CellLibrary::typical())
}

/// Forward closure of `seeds` in `tdg`, sorted.
fn forward_closure(tdg: &Tdg, seeds: &[u32]) -> Vec<u32> {
    let mut mark = vec![false; tdg.num_tasks()];
    let mut stack: Vec<u32> = Vec::new();
    for &s in seeds {
        if !mark[s as usize] {
            mark[s as usize] = true;
            stack.push(s);
        }
    }
    while let Some(t) = stack.pop() {
        for &s in tdg.successors(TaskId(t)) {
            if !mark[s as usize] {
                mark[s as usize] = true;
                stack.push(s);
            }
        }
    }
    (0..tdg.num_tasks() as u32)
        .filter(|&t| mark[t as usize])
        .collect()
}

/// Bit-exact snapshot of every endpoint's late slack.
fn slack_bits(timer: &Timer) -> Vec<u32> {
    timer
        .graph()
        .endpoints()
        .iter()
        .map(|&v| timer.data().slack_late(NodeId(v)).to_bits())
        .collect()
}

fn reference_bits() -> Vec<u32> {
    let mut timer = test_timer();
    timer.update_timing().run_sequential();
    slack_bits(&timer)
}

/// Poisoned set must be the exact forward closure of the permanently
/// failed tasks; salvage is its exact complement.
fn assert_exact_quarantine(tdg: &Tdg, outcome: &RunOutcome) {
    let failed: Vec<u32> = outcome.failures.iter().map(|f| f.task).collect();
    let closure = forward_closure(tdg, &failed);
    assert_eq!(
        outcome.poisoned_tasks, closure,
        "poisoned set != forward closure of failed tasks"
    );
    assert_eq!(
        outcome.salvaged_tasks,
        tdg.num_tasks() - closure.len(),
        "salvage is not the exact complement"
    );
}

#[test]
fn every_fault_class_is_contained_on_the_plain_path() {
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    for kind in [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
        FaultKind::Delay { micros: 50 },
    ] {
        let mut timer = test_timer();
        let update = timer.update_timing();
        let victim = (update.tdg().num_tasks() / 3) as u32;
        // Fault every attempt so retries cannot rescue Transient.
        let plan = FaultPlan::none()
            .inject(victim, 0, kind)
            .inject(victim, 1, kind);
        let rec = update.run_recovering(&Executor::new(3), &plan, &policy);
        match kind {
            // A delay is not a failure: everything completes.
            FaultKind::Delay { .. } => assert!(rec.is_clean(), "{kind:?} must salvage all"),
            _ => {
                assert!(!rec.is_clean(), "{kind:?} at task {victim} must poison");
                assert_exact_quarantine(update.tdg(), &rec.outcome);
                assert!(
                    rec.outcome.poisoned_tasks.contains(&victim),
                    "the failed task itself is quarantined"
                );
            }
        }
    }
}

#[test]
fn transient_faults_heal_through_retries() {
    let mut timer = test_timer();
    let update = timer.update_timing();
    let victim = (update.tdg().num_tasks() / 2) as u32;
    // Fails twice, succeeds on the third attempt.
    let plan = FaultPlan::none()
        .inject(victim, 0, FaultKind::Transient)
        .inject(victim, 1, FaultKind::Transient);
    let rec = update.run_recovering(&Executor::new(2), &plan, &RetryPolicy::default());
    assert!(rec.is_clean(), "retries absorb a transient fault");
    assert_eq!(rec.outcome.retries, 2);
    drop(update);
    assert_eq!(slack_bits(&timer), reference_bits());
}

#[test]
fn salvage_is_exact_complement_under_a_fault_storm() {
    // Half of all first attempts fail across every class; recovery must
    // still terminate with a full accounting of the task space.
    let kinds = [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
    ];
    let plan = FaultPlan::random(0x5704, 0.5, &kinds);
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let mut timer = test_timer();
    let update = timer.update_timing();
    let rec = update.run_recovering(&Executor::new(4), &plan, &policy);
    assert!(!rec.is_clean(), "a 50% fault rate certainly fires");
    assert_exact_quarantine(update.tdg(), &rec.outcome);
    // Degrade, then heal back to the exact fault-free analysis.
    update.mark_unknown(&rec);
    let healed = update.heal(&rec);
    assert_eq!(healed, rec.outcome.poisoned_tasks.len());
    drop(update);
    assert_eq!(slack_bits(&timer), reference_bits());
}

#[test]
fn heal_is_bit_identical_across_seeds_and_worker_counts() {
    let reference = reference_bits();
    let kinds = [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
    ];
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    for seed in [0xFA17u64, 1, 2] {
        for workers in [1usize, 2, 4] {
            let plan = FaultPlan::random(seed, 0.1, &kinds);
            let mut timer = test_timer();
            let update = timer.update_timing();
            let rec = update.run_recovering(&Executor::new(workers), &plan, &policy);
            update.mark_unknown(&rec);
            update.heal(&rec);
            drop(update);
            assert_eq!(
                slack_bits(&timer),
                reference,
                "seed {seed:#x}, {workers} workers"
            );
        }
    }
}

#[test]
fn partition_quarantine_poisons_whole_partitions_and_heals() {
    let reference = reference_bits();
    let mut timer = test_timer();
    let update = timer.update_timing();
    let partition = GPasta::new()
        .partition(update.tdg(), &PartitionerOptions::default())
        .expect("valid options");
    let quotient = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");

    let victim = (update.tdg().num_tasks() / 3) as u32;
    let plan = FaultPlan::none()
        .inject(victim, 0, FaultKind::Panic)
        .inject(victim, 1, FaultKind::Panic);
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let rec = update.run_partitioned_recovering(&Executor::new(3), &quotient, &plan, &policy);
    assert!(!rec.is_clean());

    // Units are quotient nodes: the poisoned unit set is the forward
    // closure *in the quotient graph* of the victim's partition...
    let failed_units: Vec<u32> = rec.outcome.failures.iter().map(|f| f.unit).collect();
    assert_eq!(
        rec.outcome.poisoned_units,
        forward_closure(quotient.graph(), &failed_units)
    );
    // ...and every member of every quarantined partition is poisoned,
    // including the victim's partition-mates that never themselves failed.
    for &p in &rec.outcome.poisoned_units {
        for &t in quotient.execution_order(gpasta::tdg::PartitionId(p)) {
            assert!(
                rec.outcome.poisoned_tasks.binary_search(&t).is_ok(),
                "member {t} of quarantined partition {p} must be poisoned"
            );
        }
    }
    assert!(rec.outcome.poisoned_tasks.contains(&victim));

    update.mark_unknown(&rec);
    update.heal(&rec);
    drop(update);
    assert_eq!(slack_bits(&timer), reference);
}

#[test]
fn plain_and_partitioned_salvage_agree_on_task_failures() {
    // The same targeted fault through both scheduling paths: partitioned
    // quarantine is coarser (whole partitions), so its poisoned task set
    // must be a superset of the plain path's exact closure.
    let mut timer = test_timer();
    let update = timer.update_timing();
    let victim = (update.tdg().num_tasks() / 4) as u32;
    let plan = FaultPlan::none()
        .inject(victim, 0, FaultKind::WrongResult)
        .inject(victim, 1, FaultKind::WrongResult);
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let plain = update.run_recovering(&Executor::new(2), &plan, &policy);

    let partition = GPasta::new()
        .partition(update.tdg(), &PartitionerOptions::default())
        .expect("valid options");
    let quotient = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
    let part = update.run_partitioned_recovering(&Executor::new(2), &quotient, &plan, &policy);

    for t in &plain.outcome.poisoned_tasks {
        assert!(
            part.outcome.poisoned_tasks.binary_search(t).is_ok(),
            "task {t} poisoned on the plain path must be poisoned under quarantine"
        );
    }
}
