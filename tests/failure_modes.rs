//! Failure-injection integration tests: malformed inputs must be rejected
//! with the right errors at every layer, and invalid partitions must never
//! reach the scheduler.

use gpasta::core::{GPasta, PartitionError, Partitioner, PartitionerOptions};
use gpasta::sta::{
    BuildNetlistError, CellKind, CellLibrary, ConnectError, NetlistBuilder, TimingGraph,
};
use gpasta::tdg::{
    validate, BuildTdgError, Partition, QuotientTdg, TaskId, TdgBuilder, ValidatePartitionError,
};

#[test]
fn cyclic_tdg_rejected_at_build() {
    let mut b = TdgBuilder::new(3);
    b.add_edge(TaskId(0), TaskId(1));
    b.add_edge(TaskId(1), TaskId(2));
    b.add_edge(TaskId(2), TaskId(0));
    assert!(matches!(b.build(), Err(BuildTdgError::Cycle { .. })));
}

#[test]
fn figure2a_partition_cannot_be_scheduled() {
    // The paper's invalid example: diamond with {0,3} and {1,2} clustered.
    let mut b = TdgBuilder::new(4);
    b.add_edge(TaskId(0), TaskId(1));
    b.add_edge(TaskId(0), TaskId(2));
    b.add_edge(TaskId(1), TaskId(3));
    b.add_edge(TaskId(2), TaskId(3));
    let tdg = b.build().expect("diamond DAG");
    let bad = Partition::new(vec![0, 1, 1, 0]);

    assert!(matches!(
        validate::check_acyclic(&tdg, &bad),
        Err(ValidatePartitionError::QuotientCycle { .. })
    ));
    assert!(
        QuotientTdg::build(&tdg, &bad).is_err(),
        "scheduler input is refused"
    );
}

#[test]
fn zero_partition_size_rejected_through_the_facade() {
    let tdg = TdgBuilder::new(2).build().expect("edgeless");
    let err = GPasta::new()
        .partition(&tdg, &PartitionerOptions::with_max_size(0))
        .expect_err("Ps = 0 is invalid");
    assert_eq!(err, PartitionError::ZeroPartitionSize);
    assert!(err.to_string().contains("at least 1"));
}

#[test]
fn netlist_errors_surface_with_context() {
    // Dangling input pin.
    let mut nb = NetlistBuilder::new();
    let a = nb.add_primary_input("a");
    let g = nb.add_gate("top_u1", CellKind::Nand2);
    nb.connect_to_gate(a, g, 0).expect("pin 0 is valid");
    match nb.build() {
        Err(BuildNetlistError::UnconnectedPin { gate, pin }) => {
            assert_eq!(gate, "top_u1");
            assert_eq!(pin, 1);
        }
        other => panic!("expected UnconnectedPin, got {other:?}"),
    }

    // Out-of-range pin index is caught eagerly.
    let mut nb = NetlistBuilder::new();
    let a = nb.add_primary_input("a");
    let g = nb.add_gate("u1", CellKind::Inv);
    assert!(matches!(
        nb.connect_to_gate(a, g, 3),
        Err(ConnectError::PinOutOfRange { pin: 3, .. })
    ));
}

#[test]
fn combinational_loop_rejected_by_timing_graph() {
    let mut nb = NetlistBuilder::new();
    let g1 = nb.add_gate("u1", CellKind::Inv);
    let g2 = nb.add_gate("u2", CellKind::Inv);
    let y = nb.add_primary_output("y");
    nb.connect_gates(g1, g2, 0).expect("valid");
    nb.connect_gates(g2, g1, 0).expect("valid");
    nb.connect_to_output(g2, y).expect("valid");
    let netlist = nb.build().expect("structurally complete");
    assert!(matches!(
        TimingGraph::build(&netlist, &CellLibrary::typical()),
        Err(BuildTdgError::Cycle { .. })
    ));
}

#[test]
fn sequential_loop_through_dff_is_fine() {
    // A DFF in the loop breaks the combinational cycle: valid design.
    let mut nb = NetlistBuilder::new();
    let ff = nb.add_gate("ff", CellKind::Dff);
    let inv = nb.add_gate("u1", CellKind::Inv);
    let y = nb.add_primary_output("y");
    nb.connect_gates(ff, inv, 0).expect("valid");
    nb.connect_gates(inv, ff, 0).expect("valid");
    nb.connect_to_output(inv, y).expect("valid");
    let netlist = nb.build().expect("registered loop is legal");
    let graph = TimingGraph::build(&netlist, &CellLibrary::typical()).expect("DFF breaks the loop");
    assert_eq!(graph.endpoints().len(), 2, "PO and the DFF D pin");
}

#[test]
fn mismatched_partition_rejected_before_scheduling() {
    let tdg = TdgBuilder::new(4).build().expect("edgeless");
    let short = Partition::new(vec![0, 0]);
    assert!(matches!(
        QuotientTdg::build(&tdg, &short),
        Err(ValidatePartitionError::LengthMismatch { .. })
    ));
}

#[test]
fn empty_design_flows_through_cleanly() {
    use gpasta::sta::Timer;
    let netlist = NetlistBuilder::new().build().expect("empty netlist");
    let mut timer = Timer::new(netlist, CellLibrary::typical());
    let update = timer.update_timing();
    assert_eq!(update.tdg().num_tasks(), 0);
    update.run_sequential();
    drop(update);
    let report = timer.report(3);
    assert_eq!(report.num_endpoints, 0);
    assert_eq!(
        report.wns_ps,
        f32::INFINITY,
        "no endpoints, nothing violated"
    );
}
