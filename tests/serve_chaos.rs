//! Chaos tier for `gpasta serve`: a real daemon, concurrent clients,
//! and deterministic faults injected into live sessions.
//!
//! Every test drives the actual binary over a TCP socket with
//! `--chaos-inject` schedules (the serve-layer face of
//! `gpasta_sched::fault::FaultPlan`). The contract under test is
//! crash-only supervision:
//!
//! * a panic inside a session op returns a typed `session_crashed`
//!   error, never a hung connection or a dead worker thread;
//! * the crashed session auto-restores from its last background
//!   checkpoint plus the edit journal, and the retry serves;
//! * sessions that were NOT hit keep serving throughout, and the
//!   probes stay green;
//! * post-heal WNS/TNS bit patterns are identical to an uninterrupted
//!   oracle (`gpasta sta --bits` on the same edit sequence);
//! * past the crash budget the slot quarantines (`503`), and an
//!   explicit restore heals it;
//! * overload control sheds with `503` + `Retry-After`, and a
//!   slow-trickling client gets 408 without wedging the daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

use serde_json::Value;

const PIPELINE: &str = include_str!("fixtures/pipeline.v");

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pipeline.v")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpasta-serve-chaos-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A running `gpasta serve` process with extra flags; killed on drop.
struct Server {
    child: Child,
    addr: String,
    spool: PathBuf,
}

impl Server {
    fn start(tag: &str, extra: &[&str]) -> Server {
        let spool = tmp_dir(tag);
        let mut args = vec![
            "serve".to_string(),
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--spool".to_string(),
            spool.to_str().expect("utf8 spool").to_string(),
            "--workers".to_string(),
            "2".to_string(),
            "--max-sessions".to_string(),
            "12".to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let mut child = Command::new(env!("CARGO_BIN_EXE_gpasta"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints its address")
            .expect("stdout readable");
        let addr = banner
            .rsplit_once("http://")
            .map(|(_, addr)| addr.trim().to_string())
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"));
        // Keep draining stdout so the server never blocks on a full pipe.
        thread::spawn(move || for _ in lines {});
        Server { child, addr, spool }
    }

    fn request(&self, method: &str, path: &str, body: Option<&Value>) -> (u16, Value) {
        request_at(&self.addr, method, path, body)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::fs::remove_dir_all(&self.spool).ok();
    }
}

/// One HTTP/1.1 request; returns `(status, parsed JSON body)`.
fn request_at(addr: &str, method: &str, path: &str, body: Option<&Value>) -> (u16, Value) {
    let raw = raw_request_at(addr, method, path, body);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let json = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .expect("header/body separator");
    (status, serde_json::from_str(json).expect("JSON body"))
}

/// Same, but returns the unparsed response text (headers included).
fn raw_request_at(addr: &str, method: &str, path: &str, body: Option<&Value>) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = body.map(|v| serde_json::to_string(v).expect("serialize"));
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(payload) = &payload {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            payload.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    if let Some(payload) = &payload {
        stream.write_all(payload.as_bytes()).expect("write body");
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn create_session(server: &Server, name: &str) -> Value {
    let body = Value::Object(vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("verilog".to_string(), Value::String(PIPELINE.to_string())),
    ]);
    let (status, out) = server.request("POST", "/sessions", Some(&body));
    assert_eq!(status, 200, "create failed: {out:?}");
    out
}

fn edit_body(gate: &str, drive: f64) -> Value {
    Value::Object(vec![(
        "edits".to_string(),
        Value::Array(vec![Value::Object(vec![
            ("op".to_string(), Value::String("repower".to_string())),
            ("gate".to_string(), Value::String(gate.to_string())),
            ("drive".to_string(), Value::Number(drive)),
        ])]),
    )])
}

fn edit(server: &Server, name: &str, gate: &str, drive: f64) {
    let (status, out) = server.request(
        "POST",
        &format!("/sessions/{name}/edit"),
        Some(&edit_body(gate, drive)),
    );
    assert_eq!(status, 200, "edit failed: {out:?}");
}

fn update(server: &Server, name: &str) -> (u16, Value) {
    server.request(
        "POST",
        &format!("/sessions/{name}/update"),
        Some(&Value::Object(Vec::new())),
    )
}

fn report_bits(server: &Server, name: &str) -> (String, String) {
    let (status, out) = server.request("GET", &format!("/sessions/{name}/report?k=1"), None);
    assert_eq!(status, 200, "report failed: {out:?}");
    (
        out["report"]["wns_bits"].as_str().expect("wns").to_string(),
        out["report"]["tns_bits"].as_str().expect("tns").to_string(),
    )
}

/// The oracle: `gpasta sta --bits` with the full repower sequence
/// applied in one uninterrupted run (CLI and server share the Session
/// code path, so converged bits must agree exactly).
fn cli_bits(repowers: &[&str]) -> (String, String) {
    let mut args = vec![
        "sta".to_string(),
        fixture_path().to_str().expect("utf8").to_string(),
    ];
    for r in repowers {
        args.push("--repower".to_string());
        args.push(r.to_string());
    }
    args.push("--bits".to_string());
    let out = Command::new(env!("CARGO_BIN_EXE_gpasta"))
        .args(&args)
        .output()
        .expect("cli runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let line = stdout
        .lines()
        .find(|l| l.starts_with("WNS bits"))
        .unwrap_or_else(|| panic!("no bits line in:\n{stdout}"));
    let words: Vec<&str> = line.split_whitespace().collect();
    (words[2].to_string(), words[5].to_string())
}

/// The seeded crash matrix: which update crashes × whether background
/// checkpointing runs. Every cell must heal to oracle bits.
#[test]
fn crash_matrix_heals_bit_identical_to_oracle() {
    // (crashed update index, checkpoint interval ms). Interval 0
    // disables the checkpointer, forcing full journal replay from the
    // sources; 25 ms makes a checkpoint near-certain between updates.
    for &(crash_update, checkpoint_ms) in &[(1u32, 0u64), (1, 25), (2, 0), (2, 25)] {
        let inject = format!("pipe:{crash_update}:0:panic");
        let ckpt = checkpoint_ms.to_string();
        let server = Server::start(
            &format!("matrix-{crash_update}-{checkpoint_ms}"),
            &["--chaos-inject", &inject, "--checkpoint-ms", &ckpt],
        );
        create_session(&server, "pipe");

        // Three edit+update rounds. The target (update `crash_update`,
        // attempt 0) fires exactly once — usually in the client's
        // update, but with background checkpointing on, the
        // checkpointer's pending-edit flush can consume the targeted
        // update index instead, in which case the crash recovers out of
        // band and the client only sees 200s. Both are correct; the
        // invariants below hold either way.
        let rounds = [("u2", 4.0), ("u6", 0.5), ("u3", 2.0)];
        let mut wire_crashes = 0u32;
        for (i, (gate, drive)) in rounds.iter().enumerate() {
            edit(&server, "pipe", gate, *drive);
            let (status, out) = update(&server, "pipe");
            match status {
                200 => assert_eq!(out["outcome"]["stop"], "completed", "{out:?}"),
                500 => {
                    wire_crashes += 1;
                    assert_eq!(out["error"]["kind"], "session_crashed", "{out:?}");
                    assert!(
                        out["error"]["message"]
                            .as_str()
                            .expect("message")
                            .contains("restored"),
                        "recovered crash says so: {out:?}"
                    );
                    // The heal: the same request retried must complete.
                    let (status, out) = update(&server, "pipe");
                    assert_eq!(status, 200, "retry after heal: {out:?}");
                    assert_eq!(out["outcome"]["stop"], "completed");
                }
                other => panic!("round {i}: unexpected status {other}: {out:?}"),
            }
            if checkpoint_ms > 0 {
                // Let the checkpointer snapshot the post-update state so
                // a later crash actually recovers from residue+journal.
                thread::sleep(Duration::from_millis(80));
            }
        }
        if checkpoint_ms == 0 {
            // Without the checkpointer there is exactly one updater (the
            // client), so the crash surfaces on the wire at the targeted
            // round, deterministically.
            assert_eq!(wire_crashes, 1, "crash_update={crash_update}");
        }

        let got = report_bits(&server, "pipe");
        let want = cli_bits(&["u2=4.0", "u6=0.5", "u3=2.0"]);
        assert_eq!(
            got, want,
            "healed bits match the uninterrupted oracle \
             (crash_update={crash_update}, checkpoint_ms={checkpoint_ms})"
        );

        let (status, st) = server.request("GET", "/status", None);
        assert_eq!(status, 200);
        assert!(st["crashes"].as_f64().expect("crashes") >= 1.0, "{st:?}");
        assert!(
            st["recoveries"].as_f64().expect("recoveries") >= 1.0,
            "{st:?}"
        );
        assert_eq!(st["quarantined"], 0u32, "{st:?}");
        let (status, listing) = server.request("GET", "/sessions", None);
        assert_eq!(status, 200);
        assert_eq!(listing["sessions"][0]["state"], "live");
        assert!(
            listing["sessions"][0]["recoveries"]
                .as_f64()
                .expect("recoveries")
                >= 1.0
        );
    }
}

/// Concurrent clients on untouched sessions keep serving (and stay
/// bit-correct) while the victim session crashes and heals; liveness
/// probes never flinch.
#[test]
fn daemon_keeps_serving_other_sessions_through_a_crash() {
    // Checkpointer off: with it on, its pending-edit flush could
    // consume the targeted update index out of band, making the wire
    // 500 below racy (the matrix test covers the checkpointer).
    let server = Server::start(
        "concurrent",
        &["--chaos-inject", "victim:0:0:panic", "--checkpoint-ms", "0"],
    );
    create_session(&server, "victim");
    edit(&server, "victim", "u2", 4.0);
    let addr = server.addr.clone();

    let mut clients = Vec::new();
    for i in 0..4 {
        let addr = addr.clone();
        clients.push(thread::spawn(move || {
            let name = format!("bystander-{i}");
            let body = Value::Object(vec![
                ("name".to_string(), Value::String(name.clone())),
                ("verilog".to_string(), Value::String(PIPELINE.to_string())),
            ]);
            let (status, out) = request_at(&addr, "POST", "/sessions", Some(&body));
            assert_eq!(status, 200, "{out:?}");
            let drive = 1.5 + f64::from(i) * 0.5;
            let (status, out) = request_at(
                &addr,
                "POST",
                &format!("/sessions/{name}/edit"),
                Some(&edit_body("u2", drive)),
            );
            assert_eq!(status, 200, "{out:?}");
            let (status, out) = request_at(
                &addr,
                "POST",
                &format!("/sessions/{name}/update"),
                Some(&Value::Object(Vec::new())),
            );
            assert_eq!(status, 200, "{out:?}");
            out["report"]["wns_bits"]
                .as_str()
                .expect("bits")
                .to_string()
        }));
    }

    // While the bystanders run: crash the victim, check the probes,
    // heal, verify.
    let (status, out) = update(&server, "victim");
    assert_eq!(status, 500, "{out:?}");
    assert_eq!(out["error"]["kind"], "session_crashed");
    let (status, health) = server.request("GET", "/healthz", None);
    assert_eq!(status, 200, "liveness through the crash: {health:?}");
    let (status, ready) = server.request("GET", "/readyz", None);
    assert_eq!(status, 200, "readiness through the crash: {ready:?}");
    let (status, out) = update(&server, "victim");
    assert_eq!(status, 200, "victim healed: {out:?}");

    for (i, handle) in clients.into_iter().enumerate() {
        let bits = handle.join().expect("bystander thread");
        let (want, _) = cli_bits(&[&format!("u2={}", 1.5 + i as f64 * 0.5)]);
        assert_eq!(bits, want, "bystander {i} unaffected by the crash");
    }

    let (status, st) = server.request("GET", "/status", None);
    assert_eq!(status, 200);
    assert_eq!(st["crashes"], 1u32);
    assert_eq!(st["recoveries"], 1u32);
    assert_eq!(st["quarantined"], 0u32);
}

/// Past the crash budget the slot quarantines with a typed 503; an
/// explicit restore heals it back to oracle bits.
#[test]
fn crash_budget_quarantines_then_restore_heals() {
    let server = Server::start(
        "quarantine",
        &[
            "--chaos-inject",
            "q:0:0:panic",
            "--chaos-inject",
            "q:0:1:panic",
            "--max-crashes",
            "2",
            "--checkpoint-ms",
            "0",
        ],
    );
    create_session(&server, "q");
    edit(&server, "q", "u2", 4.0);

    // Crash 1: recovered (attempt becomes 1). Crash 2 fires on the
    // retry (update 0 again after a from-scratch rebuild, attempt 1)
    // and trips the budget.
    let (status, out) = update(&server, "q");
    assert_eq!(status, 500, "{out:?}");
    assert_eq!(out["error"]["kind"], "session_crashed");
    let (status, out) = update(&server, "q");
    assert_eq!(status, 503, "{out:?}");
    assert_eq!(out["error"]["kind"], "session_quarantined");

    // Quarantined: requests are typed 503s, the daemon itself is fine.
    let (status, out) = server.request("GET", "/sessions/q/report?k=1", None);
    assert_eq!(status, 503, "{out:?}");
    assert_eq!(out["error"]["kind"], "session_quarantined");
    let (status, listing) = server.request("GET", "/sessions", None);
    assert_eq!(status, 200);
    assert_eq!(listing["sessions"][0]["state"], "quarantined");
    let (status, _) = server.request("GET", "/healthz", None);
    assert_eq!(status, 200);

    // Heal: restore rebuilds (attempt 2 — no schedule entry, so it
    // stays up) and the session completes to oracle bits.
    let (status, out) = server.request(
        "POST",
        "/sessions/q/restore",
        Some(&Value::Object(Vec::new())),
    );
    assert_eq!(status, 200, "restore heals quarantine: {out:?}");
    let (status, out) = update(&server, "q");
    assert_eq!(status, 200, "{out:?}");
    assert_eq!(out["outcome"]["stop"], "completed");
    let got = report_bits(&server, "q");
    let want = cli_bits(&["u2=4.0"]);
    assert_eq!(got, want, "healed bits match the oracle");
}

/// Injected delays slow a session without failing it; results stay
/// bit-correct.
#[test]
fn injected_delay_is_survivable_and_bit_correct() {
    let server = Server::start(
        "delay",
        &["--chaos-inject", "d:0:0:delay:2000", "--checkpoint-ms", "0"],
    );
    create_session(&server, "d");
    edit(&server, "d", "u2", 4.0);
    let (status, out) = update(&server, "d");
    assert_eq!(status, 200, "delay is not a failure: {out:?}");
    assert_eq!(out["outcome"]["stop"], "completed");
    let got = report_bits(&server, "d");
    let want = cli_bits(&["u2=4.0"]);
    assert_eq!(got, want);
}

/// Overload control at the connection layer: past `--max-connections`
/// the daemon sheds immediately with `503` + `Retry-After` instead of
/// queueing behind the stuck connection.
#[test]
fn connection_cap_sheds_with_retry_after() {
    let server = Server::start(
        "conncap",
        &["--max-connections", "1", "--read-timeout-ms", "3000"],
    );
    // Occupy the only connection slot with a half-open request (the
    // worker blocks reading it until the deadline).
    let mut hog = TcpStream::connect(&server.addr).expect("connect");
    hog.write_all(b"GET /status HTTP/1.1\r\n").expect("partial");
    thread::sleep(Duration::from_millis(150));

    let raw = raw_request_at(&server.addr, "GET", "/healthz", None);
    assert!(raw.starts_with("HTTP/1.1 503"), "shed: {raw}");
    assert!(raw.contains("Retry-After:"), "Retry-After header: {raw}");
    assert!(raw.contains("\"overloaded\""), "typed kind: {raw}");

    // Release the slot; the daemon serves again.
    drop(hog);
    thread::sleep(Duration::from_millis(150));
    let (status, _) = server.request("GET", "/healthz", None);
    assert_eq!(status, 200, "daemon recovers once the hog is gone");
}

/// A client that trickles slower than the read deadline gets a clean
/// 408 and the worker thread comes back (no wedge).
#[test]
fn slow_trickle_times_out_with_408() {
    let server = Server::start("trickle", &["--read-timeout-ms", "300"]);
    let mut slow = TcpStream::connect(&server.addr).expect("connect");
    slow.write_all(b"POST /sessions HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"par")
        .expect("partial body");
    // Never send the rest; the read deadline must fire.
    let mut response = String::new();
    slow.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    assert!(response.contains("\"timeout\""), "{response}");

    let (status, _) = server.request("GET", "/healthz", None);
    assert_eq!(status, 200, "daemon fine after the timeout");
}

/// Crash during the shutdown persist pass: every *other* live session
/// still spools. (The crashed one keeps its last background
/// checkpoint.)
#[test]
fn shutdown_persists_around_a_crashing_session() {
    let mut server = Server::start(
        "shutdown",
        &[
            // The persist flush runs one unbounded update to drain
            // pending edits; update 1 attempt 0 on `bad` panics there.
            "--chaos-inject",
            "bad:1:0:panic",
            "--checkpoint-ms",
            "0",
        ],
    );
    create_session(&server, "good");
    create_session(&server, "bad");
    edit(&server, "good", "u2", 4.0);
    edit(&server, "bad", "u2", 4.0);
    let (status, _) = update(&server, "bad"); // update 0: clean
    assert_eq!(status, 200);
    edit(&server, "bad", "u6", 0.5); // pending → persist will update (index 1 → panic)

    let (status, out) = server.request("POST", "/shutdown", None);
    assert_eq!(status, 200, "{out:?}");
    let exit = server.child.wait().expect("server exits");
    assert!(
        exit.success(),
        "persist-pass panic must not kill the process"
    );
    assert!(
        server.spool.join("good.ckpt").exists(),
        "unaffected session spooled"
    );
}
