//! Property suite for the hardened HTTP request parser.
//!
//! The serve frontend reads bytes straight off untrusted sockets, so
//! [`parse_request`] must be total: for *any* byte soup it either
//! produces a [`Request`] or a clean 4xx [`ApiError`] — never a panic,
//! never a 5xx, and never a read past the configured limits. Valid
//! requests must round-trip their method, path, query, and JSON body.
//!
//! The vendored proptest stub has no string strategies, so adversarial
//! wire images are assembled from a fragment table indexed by generated
//! integers — fragments that look *almost* like HTTP reach far deeper
//! parser states than uniform noise.

use gpasta::serve::{parse_request, ApiError, HttpLimits, Request};
use proptest::prelude::*;
use serde_json::Value;

/// Case count, overridable via `PROPTEST_CASES` (the nightly CI job
/// raises it).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Near-HTTP fragments: request-line pieces, header pieces, framing
/// bytes, invalid UTF-8, and oversized runs.
const FRAGMENTS: &[&[u8]] = &[
    b"GET ",
    b"POST ",
    b"PATCH",
    b"/sessions/x",
    b"/status",
    b"?a=1&b=2",
    b"?==&&=",
    b" HTTP/1.1",
    b" HTTP/9.9",
    b"\r\n",
    b"\n",
    b"\r",
    b"\r\n\r\n",
    b"Content-Length: ",
    b"Content-Length: 5\r\n",
    b"Content-Length: 5\r\nContent-Length: 5\r\n",
    b"Content-Length: 99999999999999999999\r\n",
    b"Content-Length: -3\r\n",
    b"X-Junk: y\r\n",
    b"no-colon-header\r\n",
    b"{\"a\":1}",
    b"{\"a\":",
    b"]][[",
    b"\xff\xfe\x00",
    b"\xc3\x28",
    b"\x00\x00\x00\x00",
    b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
];

/// Tight limits so the 413/431 branches fire often without generating
/// megabytes per case.
fn tight_limits() -> HttpLimits {
    HttpLimits {
        max_head_bytes: 256,
        max_body_bytes: 512,
        read_timeout: None,
        write_timeout: None,
        ..HttpLimits::default()
    }
}

fn parse(bytes: &[u8], limits: &HttpLimits) -> Result<Request, ApiError> {
    let mut reader = std::io::BufReader::new(bytes);
    parse_request(&mut reader, limits)
}

/// URL-safe lowercase tokens for valid-request components.
const TOKENS: &[&str] = &[
    "a", "bb", "ccc", "edit", "update", "pipe", "report", "k0", "v9", "zz",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    // --- adversarial: any byte soup, never a panic, errors stay 4xx ---

    #[test]
    fn fragment_soup_never_panics_and_errors_are_4xx(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..16),
    ) {
        let wire: Vec<u8> = picks
            .iter()
            .flat_map(|&p| FRAGMENTS[p].iter().copied())
            .collect();
        if let Err(e) = parse(&wire, &tight_limits()) {
            prop_assert!(
                (400..500).contains(&e.status),
                "parser error must be 4xx, got {} ({})",
                e.status,
                e.kind
            );
            prop_assert!(!e.kind.is_empty());
        }
    }

    #[test]
    fn raw_byte_noise_never_panics(
        bytes in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        if let Err(e) = parse(&bytes, &tight_limits()) {
            prop_assert!((400..500).contains(&e.status));
        }
    }

    // --- valid requests round-trip ------------------------------------

    #[test]
    fn valid_requests_round_trip(
        get in 0usize..2,
        seg_picks in proptest::collection::vec(0usize..TOKENS.len(), 1..4),
        query_picks in proptest::collection::vec(
            (0usize..TOKENS.len(), 0usize..TOKENS.len()),
            0..3,
        ),
        with_body in 0usize..2,
        n in -1000i64..1000,
    ) {
        let method = if get == 0 { "GET" } else { "POST" };
        let path = format!(
            "/{}",
            seg_picks
                .iter()
                .map(|&p| TOKENS[p])
                .collect::<Vec<_>>()
                .join("/")
        );
        let query: Vec<(String, String)> = query_picks
            .iter()
            .map(|&(k, v)| (TOKENS[k].to_string(), TOKENS[v].to_string()))
            .collect();
        let target = if query.is_empty() {
            path.clone()
        } else {
            let qs: Vec<String> = query.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{path}?{}", qs.join("&"))
        };

        let mut wire = format!("{method} {target} HTTP/1.1\r\n");
        let body_text = (with_body == 1).then(|| format!("{{\"n\":{n}}}"));
        if let Some(ref text) = body_text {
            wire.push_str(&format!("Content-Length: {}\r\n", text.len()));
        }
        wire.push_str("Host: test\r\n\r\n");
        if let Some(ref text) = body_text {
            wire.push_str(text);
        }

        let req = match parse(wire.as_bytes(), &HttpLimits::default()) {
            Ok(req) => req,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "valid request rejected: {} {}",
                    e.status, e.message
                )))
            }
        };
        prop_assert_eq!(req.method.as_str(), method);
        prop_assert_eq!(req.path.as_str(), path.as_str());
        prop_assert_eq!(&req.query, &query);
        match (body_text.is_some(), &req.body) {
            (false, None) => {}
            (true, Some(Value::Object(fields))) => {
                prop_assert_eq!(fields.len(), 1);
                prop_assert_eq!(fields[0].0.as_str(), "n");
                match fields[0].1 {
                    Value::Number(got) => {
                        prop_assert!((got - n as f64).abs() < 1e-9)
                    }
                    ref other => {
                        return Err(TestCaseError::fail(format!(
                            "body field is not a number: {other:?}"
                        )))
                    }
                }
            }
            (sent, got) => {
                return Err(TestCaseError::fail(format!(
                    "body mismatch: sent={sent}, parsed {got:?}"
                )))
            }
        }
    }

    // --- truncation: every prefix of a valid request fails cleanly ----

    #[test]
    fn truncation_at_every_boundary_is_clean(cut_seed in 0usize..10_000) {
        let wire: &[u8] =
            b"POST /sessions/pipe/edit HTTP/1.1\r\nContent-Length: 24\r\nHost: t\r\n\r\n{\"edits\":[{\"u2\":4.125}]}";
        let cut = cut_seed % wire.len();
        if let Err(e) = parse(&wire[..cut], &tight_limits()) {
            prop_assert!(
                (400..500).contains(&e.status),
                "cut at {cut}: expected 4xx, got {} ({})",
                e.status,
                e.kind
            );
        }
        let full = parse(wire, &tight_limits()).expect("full request parses");
        prop_assert_eq!(full.method.as_str(), "POST");
        prop_assert_eq!(full.path.as_str(), "/sessions/pipe/edit");
        prop_assert!(full.body.is_some());
    }
}
