//! Differential recovery suite for sharded multi-process execution.
//!
//! Every test compares a sharded run — with workers killed, exited, or
//! hung at deterministic points — against the uninterrupted
//! single-process oracle ([`run_single_process`]) and demands *bit*
//! identity: same WNS/TNS bits, same full [`TimingSnapshot`]. That is
//! the module's determinism contract (any topological execution of the
//! update tasks produces identical `f32` bit patterns), and it is what
//! makes "SIGKILL anywhere, recover exactly" checkable with `assert_eq!`.
//!
//! The worker processes are the real `gpasta` binary (`shard-worker`
//! hidden subcommand), so the pipes, SIGKILLs, and respawns in these
//! tests exercise the production code path end to end.

use std::path::PathBuf;
use std::time::Duration;

use gpasta::circuits::PaperCircuit;
use gpasta::sched::{FaultKind, FaultPlan, RetryPolicy};
use gpasta::shard::{run_sharded, run_single_process, ShardRunConfig, ShardRunOutcome};
use proptest::prelude::*;

const CIRCUIT: PaperCircuit = PaperCircuit::AesCore;

/// Case count for the property tests, overridable via `PROPTEST_CASES`.
/// Each case spawns real worker processes, so the default stays small.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// A config whose workers are the real `gpasta` binary and whose
/// backoffs are test-sized.
fn cfg(scale: f64, seed: u64, shards: usize) -> ShardRunConfig {
    let mut cfg = ShardRunConfig::new(CIRCUIT, scale, seed, shards);
    cfg.worker_exe = PathBuf::from(env!("CARGO_BIN_EXE_gpasta"));
    cfg.retry = RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
    };
    cfg.capture_snapshot = true;
    cfg
}

fn assert_bit_identical(outcome: &ShardRunOutcome, scale: f64, seed: u64, label: &str) {
    let oracle = run_single_process(CIRCUIT, scale, seed);
    assert_eq!(outcome.wns_bits, oracle.wns_bits, "{label}: WNS bits");
    assert_eq!(outcome.tns_bits, oracle.tns_bits, "{label}: TNS bits");
    assert_eq!(
        *outcome.snapshot.as_ref().expect("snapshot captured"),
        oracle.snapshot,
        "{label}: full snapshot"
    );
}

/// The three disposition sets must partition `0..num_shards` exactly:
/// disjoint, complete, no stray ids.
fn assert_partitions_shard_set(outcome: &ShardRunOutcome, label: &str) {
    let mut all: Vec<u32> = outcome
        .salvaged
        .iter()
        .chain(&outcome.poisoned)
        .chain(&outcome.unfinished)
        .copied()
        .collect();
    all.sort_unstable();
    let expected: Vec<u32> = (0..outcome.num_shards as u32).collect();
    assert_eq!(
        all, expected,
        "{label}: salvaged {:?} ⊎ poisoned {:?} ⊎ unfinished {:?} must partition the shard set",
        outcome.salvaged, outcome.poisoned, outcome.unfinished
    );
    assert_eq!(outcome.attempts.len(), outcome.num_shards, "{label}");
}

/// Random kill points × seeds × shard counts: every combination must
/// respawn its victims and still match the oracle bit for bit.
#[test]
fn kill_matrix_respawns_and_heals_bit_identical() {
    const SCALE: f64 = 0.005;
    for &seed in &[3u64, 0xC0FFEE] {
        for &shards in &[2usize, 4] {
            for &chaos_seed in &[0u64, 0x9E37] {
                let label = format!("seed={seed:#x} shards={shards} chaos={chaos_seed:#x}");
                let mut c = cfg(SCALE, seed, shards);
                // SIGKILL shard 0's first attempt and exit(1) shard 1's;
                // the chaos seed moves the in-shard kill point.
                c.faults = FaultPlan::none().inject(0, 0, FaultKind::Panic).inject(
                    1,
                    0,
                    FaultKind::Transient,
                );
                c.chaos_seed = chaos_seed;
                let outcome = run_sharded(&c).expect("sharded run");
                assert!(outcome.respawns >= 2, "{label}: both victims respawn");
                assert!(outcome.poisoned.is_empty(), "{label}: retries suffice");
                assert_eq!(outcome.salvaged.len(), outcome.num_shards, "{label}");
                assert_partitions_shard_set(&outcome, &label);
                assert_bit_identical(&outcome, SCALE, seed, &label);
            }
        }
    }
}

/// A worker that dies on every attempt exhausts its retries, poisons its
/// forward closure, and the supervisor heals the whole cone in-process —
/// still bit-identical.
#[test]
fn retry_exhaustion_poisons_then_heals_bit_identical() {
    const SCALE: f64 = 0.005;
    const SEED: u64 = 0xBAD5EED;
    let mut c = cfg(SCALE, SEED, 4);
    c.retry.max_retries = 1;
    c.faults = FaultPlan::none()
        .inject(0, 0, FaultKind::Panic)
        .inject(0, 1, FaultKind::Panic);
    let outcome = run_sharded(&c).expect("sharded run");
    assert_eq!(outcome.poisoned, vec![0], "shard 0 exhausts its retries");
    assert!(
        !outcome.unfinished.is_empty(),
        "shard 0's forward closure drains: {outcome:?}"
    );
    assert!(outcome.healed_tasks > 0, "the poisoned cone is re-executed");
    assert_partitions_shard_set(&outcome, "poison");
    assert_bit_identical(&outcome, SCALE, SEED, "poison+heal");
}

/// A hung worker (silent, never exits) is detected by the heartbeat
/// watchdog, reaped, and respawned — still bit-identical.
#[test]
fn hung_workers_are_reaped_by_the_watchdog() {
    const SCALE: f64 = 0.005;
    const SEED: u64 = 7;
    let mut c = cfg(SCALE, SEED, 3);
    c.stall_after = Duration::from_millis(200);
    c.faults = FaultPlan::none().inject(1, 0, FaultKind::Delay { micros: 1_000_000 });
    let outcome = run_sharded(&c).expect("sharded run");
    assert!(outcome.respawns >= 1, "the hung worker is replaced");
    assert!(outcome.poisoned.is_empty(), "{outcome:?}");
    assert_partitions_shard_set(&outcome, "watchdog");
    assert_bit_identical(&outcome, SCALE, SEED, "watchdog");
}

/// Supervisor death and hand-off: a run checkpoints, "dies" after two
/// shard completions, and a *new* supervisor with a different shard
/// count resumes from the checkpoint without redoing the completed
/// partitions — final state bit-identical to the oracle.
#[test]
fn shard_count_change_across_a_supervisor_kill_resumes_bit_identical() {
    const SCALE: f64 = 0.008;
    const SEED: u64 = 0xFACADE;
    let dir = std::env::temp_dir().join(format!("gpasta-shard-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("hand_off.ckpt");

    let mut first = cfg(SCALE, SEED, 3);
    first.checkpoint_to = Some(ckpt.clone());
    first.kill_after_shards = Some(2);
    let interrupted = run_sharded(&first).expect("first run");
    assert!(interrupted.killed, "the first supervisor dies mid-run");
    assert!(
        !interrupted.completed_partitions.is_empty(),
        "progress was persisted before the kill"
    );

    // Resume under a different shard count: the checkpoint's unit is the
    // partition, which is plan-independent.
    let mut second = cfg(SCALE, SEED, 5);
    second.resume_from = Some(ckpt.clone());
    let resumed = run_sharded(&second).expect("resumed run");
    assert!(!resumed.killed);
    assert!(
        resumed.attempts.contains(&0),
        "some shard completed straight from the checkpoint: {:?}",
        resumed.attempts
    );
    assert_partitions_shard_set(&resumed, "resume");
    assert_bit_identical(&resumed, SCALE, SEED, "kill+resume");

    // Belt and braces: killing the resumed run's workers too must not
    // break the hand-off state.
    let mut third = cfg(SCALE, SEED, 4);
    third.resume_from = Some(ckpt);
    third.faults = FaultPlan::none().inject(2, 0, FaultKind::Panic);
    let hardened = run_sharded(&third).expect("resumed run with kills");
    assert_partitions_shard_set(&hardened, "resume+kill");
    assert_bit_identical(&hardened, SCALE, SEED, "resume+kill");

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// For any chaos schedule, shard count, and retry budget, the three
    /// disposition sets partition the shard set; and whenever healing is
    /// on, the final bits match the oracle regardless of what was killed.
    #[test]
    fn dispositions_partition_the_shard_set(
        seed in 0u64..1000,
        shards in 1usize..6,
        chaos_seed in any::<u64>(),
        rate_pct in 0u32..=100,
        max_retries in 0u32..3,
    ) {
        const SCALE: f64 = 0.002;
        let mut c = cfg(SCALE, seed, shards);
        c.retry.max_retries = max_retries;
        c.chaos_seed = chaos_seed;
        // Panic (SIGKILL) and Transient (exit 1) only: a random Delay
        // would serialise the test on the watchdog deadline.
        c.faults = FaultPlan::random(
            chaos_seed,
            f64::from(rate_pct) / 100.0,
            &[FaultKind::Panic, FaultKind::Transient],
        );
        let outcome = run_sharded(&c).expect("sharded run");
        assert_partitions_shard_set(&outcome, "proptest");
        assert_bit_identical(&outcome, SCALE, seed, "proptest");
    }
}
