//! Perf-regression tier: the committed perf artefacts in `results/` are
//! schema-checked on every test run, and — when `GPASTA_PERF=1` — a
//! fresh smoke measurement is compared against the committed baseline
//! with the tolerance band, failing the suite on a hot-path slowdown.
//!
//! The measured half is opt-in because wall-clock under `cargo test`'s
//! parallel, unoptimised builds is meaningless; CI runs it as a
//! dedicated `--release` step (see `.github/workflows/ci.yml`,
//! perf-smoke). Baseline refresh procedure: DESIGN.md §13.

use gpasta_bench::read_json;
use gpasta_bench::regress::{
    check_columns, check_schema, compare, run_smoke, PerfSummary, Tolerance, FIG7_POLICIES,
    FIG8_ALGOS,
};
use std::path::Path;

/// The committed smoke baseline.
const BASELINE: &str = "results/perf_baseline.json";

/// Metric names the baseline must pin — derived from the same
/// policy/algorithm lists the summarisers use, so the two cannot drift.
fn expected_metrics() -> Vec<String> {
    let mut names = Vec::new();
    for p in FIG7_POLICIES {
        names.push(format!("fig7_vga_lcd_{p}_wall_ms"));
    }
    names.push("fig7_vga_lcd_gpasta_speedup".to_owned());
    for a in FIG8_ALGOS {
        names.push(format!("fig8_leon2_{a}_wall_ms"));
    }
    names.push("fig8_leon2_seq_gpasta_speedup".to_owned());
    names
}

#[test]
fn committed_baseline_pins_every_smoke_metric() {
    let baseline = PerfSummary::load(Path::new(BASELINE)).expect("committed baseline parses");
    let names: Vec<&str> = baseline.metrics.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(names, expected_metrics(), "baseline metric set drifted");
    for (metric, value) in &baseline.metrics {
        assert!(
            value.is_finite() && *value > 0.0,
            "baseline {metric} must be a positive number, got {value}"
        );
    }
}

#[test]
fn committed_figure_files_parse_with_the_emitter_schema() {
    for circuit in ["vga_lcd", "leon2"] {
        let rows = read_json(Path::new(&format!("results/fig7_{circuit}.json")))
            .expect("committed fig7 file parses");
        assert!(!rows.is_empty());
        let cols: Vec<&str> = rows[0].values.iter().map(|(k, _)| k.as_str()).collect();
        let expected: Vec<String> = FIG7_POLICIES
            .iter()
            .map(|p| format!("{p}_wall_ms"))
            .chain(FIG7_POLICIES.iter().map(|p| format!("{p}_sim_ms")))
            .collect();
        assert_eq!(cols, expected, "fig7_{circuit} column schema drifted");
    }
    for circuit in ["des_perf", "leon2"] {
        let rows = read_json(Path::new(&format!("results/fig8_{circuit}.json")))
            .expect("committed fig8 file parses");
        assert!(!rows.is_empty());
        let cols: Vec<&str> = rows[0].values.iter().map(|(k, _)| k.as_str()).collect();
        let expected: Vec<String> = FIG8_ALGOS
            .iter()
            .map(|a| format!("{a}_sim_ms"))
            .chain(FIG8_ALGOS.iter().map(|a| format!("{a}_wall_ms")))
            .collect();
        assert_eq!(cols, expected, "fig8_{circuit} column schema drifted");
    }
}

#[test]
fn fresh_smoke_stays_inside_the_tolerance_band() {
    if std::env::var("GPASTA_PERF").as_deref() != Ok("1") {
        eprintln!("skipping measured perf comparison (set GPASTA_PERF=1, use --release)");
        return;
    }
    let smoke = run_smoke();
    check_columns(
        "results/fig7_vga_lcd.json",
        &smoke.fig7_rows,
        &read_json(Path::new("results/fig7_vga_lcd.json")).expect("committed fig7 parses"),
    )
    .expect("fig7 column schema");
    check_columns(
        "results/fig8_leon2.json",
        &smoke.fig8_rows,
        &read_json(Path::new("results/fig8_leon2.json")).expect("committed fig8 parses"),
    )
    .expect("fig8 column schema");

    let baseline = PerfSummary::load(Path::new(BASELINE)).expect("committed baseline parses");
    check_schema(BASELINE, &smoke.summary.to_rows(), &baseline.to_rows())
        .expect("summary schema matches baseline");
    let regressions = compare(&smoke.summary, &baseline, Tolerance::from_env())
        .expect("no baseline metric is missing");
    assert!(
        regressions.is_empty(),
        "hot-path perf regressed past the tolerance band:\n{}",
        regressions
            .iter()
            .map(|r| format!("  {r}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
