//! Quickstart: partition a small task dependency graph with G-PASTA.
//!
//! Builds the running example of the paper's Figure 4 (three chains
//! converging on one task), partitions it with every algorithm, and prints
//! the resulting clusters and their quality statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gpasta::core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta::tdg::{partition_to_dot, validate, TaskId, TdgBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The TDG of Figure 4: sources 0, 2, 4; chains 0->1, 2->3, 4->5; all
    // three feed task 6.
    let mut b = TdgBuilder::new(7);
    b.add_edge(TaskId(0), TaskId(1));
    b.add_edge(TaskId(2), TaskId(3));
    b.add_edge(TaskId(4), TaskId(5));
    b.add_edge(TaskId(1), TaskId(6));
    b.add_edge(TaskId(3), TaskId(6));
    b.add_edge(TaskId(5), TaskId(6));
    let tdg = b.build()?;
    println!(
        "TDG: {} tasks, {} dependencies, depth {}\n",
        tdg.num_tasks(),
        tdg.num_deps(),
        gpasta::tdg::critical_path_len(&tdg)
    );

    let partitioners: Vec<(Box<dyn Partitioner>, PartitionerOptions)> = vec![
        (Box::new(GPasta::new()), PartitionerOptions::default()),
        (Box::new(DeterGPasta::new()), PartitionerOptions::default()),
        (Box::new(SeqGPasta::new()), PartitionerOptions::default()),
        (Box::new(Gdca::new()), PartitionerOptions::with_max_size(3)),
        (
            Box::new(Sarkar::new()),
            PartitionerOptions::with_max_size(3),
        ),
    ];

    for (p, opts) in &partitioners {
        let partition = p.partition(&tdg, opts)?;
        // Every result must be schedulable: acyclic quotient, convex
        // partitions.
        validate::check_all(&tdg, &partition)?;
        let stats = partition.stats(&tdg);
        println!("{:<14} {}", p.name(), stats);
        for (pid, members) in partition.members().iter().enumerate() {
            println!("  P{pid}: {members:?}");
        }
        println!();
    }

    // Export the G-PASTA result for Graphviz.
    let partition = GPasta::new().partition(&tdg, &PartitionerOptions::default())?;
    let dot = partition_to_dot(&tdg, &partition);
    std::fs::write("quickstart_partition.dot", &dot)?;
    println!("wrote quickstart_partition.dot (render with: dot -Tpng -O quickstart_partition.dot)");
    Ok(())
}
