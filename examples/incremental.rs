//! Incremental timing with per-iteration partitioning (a miniature
//! Figure 7).
//!
//! Applies a sequence of design modifiers (gate repowering, net
//! capacitance changes) to a vga_lcd-class design. After every modifier,
//! `update_timing` emits a TDG for just the affected region; the example
//! compares running those incremental TDGs raw vs. G-PASTA-partitioned
//! and verifies the timing results agree at every step.
//!
//! ```text
//! cargo run --release --example incremental
//! ```

use gpasta::circuits::PaperCircuit;
use gpasta::core::{GPasta, Partitioner, PartitionerOptions};
use gpasta::sched::Executor;
use gpasta::sta::{CellLibrary, GateId, Timer};
use gpasta::tdg::QuotientTdg;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const ITERATIONS: usize = 60;

fn modify(timer: &mut Timer, rng: &mut ChaCha8Rng) {
    if rng.gen_bool(0.5) {
        let g = GateId(rng.gen_range(0..timer.netlist().num_gates() as u32));
        timer.repower_gate(g, *[0.5f32, 1.0, 2.0, 4.0].choose(rng).expect("non-empty"));
    } else {
        let net = rng.gen_range(0..timer.netlist().num_nets() as u32);
        timer.set_net_cap(net, rng.gen_range(0.0..6.0));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = PaperCircuit::VgaLcd.build(0.01);
    let library = CellLibrary::typical();
    let exec = Executor::host_parallel();
    let gpasta = GPasta::new();

    // Two timers fed the identical modifier stream.
    let mut plain_timer = Timer::new(netlist.clone(), library.clone());
    let mut part_timer = Timer::new(netlist, library);
    plain_timer.update_timing().run_sequential();
    part_timer.update_timing().run_sequential();

    let mut rng_a = ChaCha8Rng::seed_from_u64(7);
    let mut rng_b = ChaCha8Rng::seed_from_u64(7);
    let (mut plain_total, mut part_total) = (Duration::ZERO, Duration::ZERO);
    let mut total_tasks = 0usize;
    let mut total_dispatches_plain = 0u64;
    let mut total_dispatches_part = 0u64;

    for i in 0..ITERATIONS {
        modify(&mut plain_timer, &mut rng_a);
        modify(&mut part_timer, &mut rng_b);

        // Raw incremental TDG.
        {
            let update = plain_timer.update_timing();
            let payload = update.task_fn();
            let report = exec.run_tdg(update.tdg(), &payload);
            plain_total += update.build_time() + report.elapsed;
            total_tasks += report.tasks_executed;
            total_dispatches_plain += report.dispatches;
        }

        // Partitioned incremental TDG.
        {
            let update = part_timer.update_timing();
            let t0 = std::time::Instant::now();
            let partition = gpasta.partition(update.tdg(), &PartitionerOptions::default())?;
            let quotient = QuotientTdg::build(update.tdg(), &partition)?;
            let payload = update.task_fn();
            let report = exec.run_partitioned(&quotient, &payload);
            part_total += update.build_time() + t0.elapsed();
            total_dispatches_part += report.dispatches;
        }

        // Both policies must agree after every iteration.
        let (a, b) = (plain_timer.report(1), part_timer.report(1));
        assert_eq!(a.wns_ps, b.wns_ps, "divergence at iteration {i}");
    }

    let final_report = plain_timer.report(3);
    println!(
        "{} iterations, {} incremental tasks total",
        ITERATIONS, total_tasks
    );
    println!(
        "raw TDGs        : {:>8.2} ms cumulative, {} dispatches",
        plain_total.as_secs_f64() * 1e3,
        total_dispatches_plain
    );
    println!(
        "G-PASTA TDGs    : {:>8.2} ms cumulative, {} dispatches",
        part_total.as_secs_f64() * 1e3,
        total_dispatches_part
    );
    println!("\nfinal timing state:\n{final_report}");
    Ok(())
}
