//! Incremental timing with a cached, repaired partition (a miniature
//! `fig7 --incremental`).
//!
//! Applies a sequence of design modifiers (gate repowering, net
//! capacitance changes) to a vga_lcd-class design. After every modifier,
//! `update_timing` emits a TDG for just the affected region; the example
//! compares running those incremental TDGs raw vs. scheduled through the
//! dirty-cone partition cache — installed once on the full task space,
//! then *repaired* inside each iteration's cone instead of re-partitioned
//! — and verifies the timing results agree at every step.
//!
//! ```text
//! cargo run --release --example incremental
//! ```

use gpasta::circuits::PaperCircuit;
use gpasta::core::{GPasta, IncrementalPartitioner, PartitionerOptions};
use gpasta::sched::Executor;
use gpasta::sta::{CellLibrary, GateId, Timer};
use gpasta::tdg::QuotientTdg;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const ITERATIONS: usize = 60;

fn modify(timer: &mut Timer, rng: &mut ChaCha8Rng) {
    if rng.gen_bool(0.5) {
        let g = GateId(rng.gen_range(0..timer.netlist().num_gates() as u32));
        timer.repower_gate(g, *[0.5f32, 1.0, 2.0, 4.0].choose(rng).expect("non-empty"));
    } else {
        let net = rng.gen_range(0..timer.netlist().num_nets() as u32);
        timer.set_net_cap(net, rng.gen_range(0.0..6.0));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = PaperCircuit::VgaLcd.build(0.01);
    let library = CellLibrary::typical();
    let exec = Executor::host_parallel();
    let opts = PartitionerOptions::default();

    // Two timers fed the identical modifier stream.
    let mut plain_timer = Timer::new(netlist.clone(), library.clone());
    let mut part_timer = Timer::new(netlist, library);
    plain_timer.update_timing().run_sequential();

    // Install the partition cache once, on the initial full update: its
    // TDG spans the full task space, which is the cache's key domain.
    let mut inc = IncrementalPartitioner::new(GPasta::new());
    let t0 = std::time::Instant::now();
    let full_update = part_timer.update_timing();
    inc.install(full_update.tdg(), &opts)?;
    let install = t0.elapsed();
    full_update.run_sequential();
    drop(full_update);

    let mut rng_a = ChaCha8Rng::seed_from_u64(7);
    let mut rng_b = ChaCha8Rng::seed_from_u64(7);
    let (mut plain_total, mut part_total) = (Duration::ZERO, install);
    let mut total_tasks = 0usize;
    let mut total_dispatches_plain = 0u64;
    let mut total_dispatches_part = 0u64;
    let (mut total_dirty, mut total_moved) = (0usize, 0usize);

    for i in 0..ITERATIONS {
        modify(&mut plain_timer, &mut rng_a);
        modify(&mut part_timer, &mut rng_b);

        // Raw incremental TDG.
        {
            let update = plain_timer.update_timing();
            let payload = update.task_fn();
            let report = exec.run_tdg(update.tdg(), &payload);
            plain_total += update.build_time() + report.elapsed;
            total_tasks += report.tasks_executed;
            total_dispatches_plain += report.dispatches;
        }

        // Cached partition, repaired inside the dirty cone.
        {
            let update = part_timer.update_timing();
            let ids = update.full_space_ids();
            let t0 = std::time::Instant::now();
            let stats = inc.repair(&ids)?;
            let sub = inc.sub_partition(&ids)?;
            let quotient = QuotientTdg::build(update.tdg(), &sub)?;
            let payload = update.task_fn();
            let report = exec.run_partitioned(&quotient, &payload);
            part_total += update.build_time() + t0.elapsed();
            total_dispatches_part += report.dispatches;
            total_dirty += stats.num_dirty;
            total_moved += stats.moved;
        }

        // Both policies must agree after every iteration.
        let (a, b) = (plain_timer.report(1), part_timer.report(1));
        assert_eq!(a.wns_ps, b.wns_ps, "divergence at iteration {i}");
    }

    let final_report = plain_timer.report(3);
    println!(
        "{} iterations, {} incremental tasks total",
        ITERATIONS, total_tasks
    );
    println!(
        "raw TDGs        : {:>8.2} ms cumulative, {} dispatches",
        plain_total.as_secs_f64() * 1e3,
        total_dispatches_plain
    );
    println!(
        "cached partition: {:>8.2} ms cumulative ({:.2} ms install), {} dispatches",
        part_total.as_secs_f64() * 1e3,
        install.as_secs_f64() * 1e3,
        total_dispatches_part
    );
    println!(
        "repairs touched {} dirty task(s) total, moved {} (epoch {})",
        total_dirty,
        total_moved,
        inc.epoch()
    );
    println!("\nfinal timing state:\n{final_report}");
    Ok(())
}
