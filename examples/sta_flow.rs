//! A complete static-timing-analysis flow on a synthetic design.
//!
//! Generates an aes_core-class circuit, runs `update_timing` three ways —
//! sequentially, through the work-stealing scheduler, and through the
//! scheduler after G-PASTA partitioning — verifies all three agree
//! bit-for-bit, and prints the timing report plus the runtime of each
//! strategy.
//!
//! ```text
//! cargo run --release --example sta_flow
//! ```

use gpasta::circuits::PaperCircuit;
use gpasta::core::{GPasta, Partitioner, PartitionerOptions};
use gpasta::sched::Executor;
use gpasta::sta::{CellLibrary, Timer};
use gpasta::tdg::QuotientTdg;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 0.02; // ~1.3 K tasks; raise for a heavier demo
    let netlist = PaperCircuit::AesCore.build(scale);
    println!(
        "design: {} gates, {} nets, {} PIs, {} POs",
        netlist.num_gates(),
        netlist.num_nets(),
        netlist.num_inputs(),
        netlist.num_outputs()
    );

    let mut timer = Timer::new(netlist, CellLibrary::typical());
    timer.set_clock_period(800.0); // 800 ps — a demanding target

    // Strategy 1: plain sequential propagation.
    let sequential = {
        let update = timer.update_timing();
        println!(
            "update_timing TDG: {} tasks, {} dependencies",
            update.tdg().num_tasks(),
            update.tdg().num_deps()
        );
        let t0 = Instant::now();
        update.run_sequential();
        t0.elapsed()
    };
    let reference = timer.report(5);

    // Strategy 2: the work-stealing scheduler on the raw TDG.
    timer.invalidate_all();
    let exec = Executor::host_parallel();
    let plain = {
        let update = timer.update_timing();
        let payload = update.task_fn();
        exec.run_tdg(update.tdg(), &payload)
    };
    let scheduled = timer.report(5);

    // Strategy 3: partition with G-PASTA, then schedule partitions.
    timer.invalidate_all();
    let (partitioned, partition_time) = {
        let update = timer.update_timing();
        let t0 = Instant::now();
        let partition = GPasta::new().partition(update.tdg(), &PartitionerOptions::default())?;
        let quotient = QuotientTdg::build(update.tdg(), &partition)?;
        let partition_time = t0.elapsed();
        let payload = update.task_fn();
        (exec.run_partitioned(&quotient, &payload), partition_time)
    };
    let partitioned_report = timer.report(5);

    // All three strategies must agree exactly.
    assert_eq!(reference.wns_ps, scheduled.wns_ps);
    assert_eq!(reference.wns_ps, partitioned_report.wns_ps);

    println!("\ntiming report ({} endpoints):", reference.num_endpoints);
    print!("{reference}");

    println!("\nruntimes:");
    println!(
        "  sequential          : {:>9.3} ms",
        sequential.as_secs_f64() * 1e3
    );
    println!(
        "  scheduler (raw TDG) : {:>9.3} ms ({} dispatches)",
        plain.elapsed.as_secs_f64() * 1e3,
        plain.dispatches
    );
    println!(
        "  scheduler (G-PASTA) : {:>9.3} ms ({} dispatches, +{:.3} ms partitioning)",
        partitioned.elapsed.as_secs_f64() * 1e3,
        partitioned.dispatches,
        partition_time.as_secs_f64() * 1e3
    );
    println!(
        "\npartitioning collapsed {} tasks into {} scheduled units",
        plain.dispatches, partitioned.dispatches
    );

    // Trace the most critical path for diagnosis.
    if let Some(worst) = reference.worst.first() {
        if let Some(path) = gpasta::sta::trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &CellLibrary::typical(),
            timer.data(),
            worst.node,
        ) {
            println!();
            print!("{path}");
        }
    }
    Ok(())
}
