//! Tour of the simulated GPU device: flat and block launches, atomics,
//! deterministic primitives, and a frontier-based BFS — the building
//! blocks Algorithm 1 and Algorithm 2 are made of.
//!
//! ```text
//! cargo run --release --example gpu_kernels
//! ```

use gpasta::gpu::{prims, AtomicBuf, Device, KernelTimer};

fn main() {
    let dev = Device::host_parallel();
    let timer = KernelTimer::new();
    println!("device with {} workers\n", dev.num_threads());

    // 1. Flat grid: saxpy-style elementwise kernel.
    let n = 1 << 20;
    let x = AtomicBuf::from_slice(&(0..n as u32).collect::<Vec<_>>());
    let y = AtomicBuf::zeroed(n);
    {
        let (x, y) = (&x, &y);
        dev.launch_timed(&timer, "saxpy", n as u32, move |gid| {
            let i = gid as usize;
            y.store(i, 3 * x.load(i) + 7);
        });
    }
    assert_eq!(y.load(12_345), 3 * 12_345 + 7);

    // 2. Atomic histogram (the contention pattern of pid_cnt in Alg. 1).
    let bins = AtomicBuf::zeroed(16);
    {
        let bins = &bins;
        dev.launch_timed(&timer, "histogram", n as u32, move |gid| {
            bins.fetch_add((gid % 16) as usize, 1);
        });
    }
    assert_eq!(bins.to_vec().iter().sum::<u32>(), n as u32);

    // 3. Block launch: per-block partial sums, then one finishing pass.
    let block_dim = 256u32;
    let grid_dim = (n as u32).div_ceil(block_dim);
    let partial = AtomicBuf::zeroed(grid_dim as usize);
    {
        let (x, partial) = (&x, &partial);
        dev.launch_blocks(grid_dim, block_dim, move |block, thread| {
            let i = (block * block_dim + thread) as usize;
            if i < n {
                partial.fetch_add(block as usize, x.load(i) % 5);
            }
        });
    }
    let total: u64 = partial.to_vec().iter().map(|&v| u64::from(v)).sum();
    let expect: u64 = (0..n as u32).map(|v| u64::from(v % 5)).sum();
    assert_eq!(total, expect);
    println!("block-reduce total {total} across {grid_dim} blocks");

    // 4. Deterministic primitives (Algorithm 2's pipeline).
    let mut keys: Vec<u64> = (0..50_000u64)
        .map(|i| (i * 2_654_435_761) % 100_000)
        .collect();
    timer.time("sort_u64", || prims::sort_u64(&dev, &mut keys));
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    let ones = vec![1u32; keys.len()];
    let small_keys: Vec<u32> = keys.iter().map(|&k| (k / 1000) as u32).collect();
    let (uniq, counts) = timer.time("reduce_by_key", || {
        prims::reduce_by_key(&dev, &small_keys, &ones)
    });
    let offsets = timer.time("exclusive_scan", || prims::exclusive_scan(&dev, &counts));
    println!(
        "sorted {} keys into {} groups; last group starts at offset {}",
        keys.len(),
        uniq.len(),
        offsets.last().copied().unwrap_or(0)
    );

    // 5. Frontier BFS over a synthetic DAG — the skeleton of the
    //    partitioning kernel.
    let tdg = gpasta::circuits::dag::layered(256, 64, 2, 42);
    let dep = AtomicBuf::from_slice(&tdg.in_degrees());
    let handle = AtomicBuf::zeroed(tdg.num_tasks());
    let wsize = AtomicBuf::zeroed(1);
    let sources = tdg.sources();
    for (i, s) in sources.iter().enumerate() {
        handle.store(i, s.0);
    }
    let mut roffset = 0u32;
    let mut rsize = sources.len() as u32;
    let mut waves = 0;
    while rsize > 0 {
        wsize.store(0, 0);
        {
            let (dep, handle, wsize, tdg) = (&dep, &handle, &wsize, &tdg);
            dev.launch_timed(&timer, "bfs_wave", rsize, move |gid| {
                let cur = handle.load((roffset + gid) as usize);
                for &nb in tdg.successors(gpasta::tdg::TaskId(cur)) {
                    if dep.fetch_sub(nb as usize, 1) == 1 {
                        let w = wsize.fetch_add(0, 1);
                        handle.store((roffset + rsize + w) as usize, nb);
                    }
                }
            });
        }
        roffset += rsize;
        rsize = wsize.load(0);
        waves += 1;
    }
    assert_eq!(roffset as usize, tdg.num_tasks(), "BFS reached every task");
    println!(
        "frontier BFS covered {} tasks in {waves} waves",
        tdg.num_tasks()
    );

    println!("\nkernel timings:");
    for (name, count, total) in timer.report() {
        println!(
            "  {:<14} {:>4} launches {:>10.3} ms",
            name,
            count,
            total.as_secs_f64() * 1e3
        );
    }
}
