//! Compare every partitioner across DAG shapes and partition sizes.
//!
//! Sweeps the generic DAG generators (layered, fan-in tree,
//! series-parallel, random) with all five partitioners, validating every
//! result and printing compression, quotient depth, and retained
//! parallelism — the quality trade-off at the heart of the paper's
//! Figure 3.
//!
//! ```text
//! cargo run --release --example partition_explorer
//! ```

use gpasta::circuits::dag;
use gpasta::core::{DeterGPasta, GPasta, Gdca, Partitioner, PartitionerOptions, Sarkar, SeqGPasta};
use gpasta::tdg::{validate, ParallelismProfile, QuotientTdg, Tdg};

fn shapes() -> Vec<(&'static str, Tdg)> {
    vec![
        ("layered 64x20", dag::layered(64, 20, 2, 1)),
        ("fanin tree 512", dag::fanin_tree(512)),
        ("series-parallel 20x16", dag::series_parallel(20, 16)),
        ("random 2000", dag::random_dag(2000, 1.6, 9)),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(GPasta::new()),
        Box::new(DeterGPasta::new()),
        Box::new(SeqGPasta::new()),
        Box::new(Gdca::new()),
        Box::new(Sarkar::new()),
    ];

    for (name, tdg) in shapes() {
        let orig = ParallelismProfile::of(&tdg);
        println!(
            "\n=== {name}: {} tasks, {} deps, parallelism {:.1} ===",
            tdg.num_tasks(),
            tdg.num_deps(),
            orig.avg_parallelism
        );
        println!(
            "{:<14} {:>6} {:>11} {:>9} {:>13} {:>12}",
            "partitioner", "Ps", "partitions", "compress", "quot. depth", "parallelism"
        );
        for p in &partitioners {
            for opts in [
                PartitionerOptions::default(),
                PartitionerOptions::with_max_size(8),
            ] {
                let partition = p.partition(&tdg, &opts)?;
                validate::check_all(&tdg, &partition)?;
                let q = QuotientTdg::build(&tdg, &partition)?;
                let prof = ParallelismProfile::of(q.graph());
                let stats = partition.stats(&tdg);
                println!(
                    "{:<14} {:>6} {:>11} {:>8.1}x {:>13} {:>12.1}",
                    p.name(),
                    opts.max_partition_size
                        .map_or("auto".to_owned(), |ps| ps.to_string()),
                    stats.num_partitions,
                    stats.compression,
                    prof.depth,
                    prof.avg_parallelism
                );
            }
        }
    }
    println!("\nall partitions validated: acyclic quotients, convex clusters");
    Ok(())
}
