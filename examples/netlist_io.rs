//! File-based flow: write a design to Verilog + Liberty, read both back,
//! and verify the round trip preserves timing exactly.
//!
//! This is the interchange path a downstream user takes to analyse their
//! own designs (see also `gpasta sta <netlist.v> --lib <file.lib>`).
//!
//! ```text
//! cargo run --release --example netlist_io
//! ```

use gpasta::circuits::PaperCircuit;
use gpasta::sta::{parse_liberty, parse_verilog, write_liberty, write_verilog, CellLibrary, Timer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = PaperCircuit::DesPerf.build(0.003);
    let library = CellLibrary::typical();
    println!(
        "generated des_perf-class design: {} gates, {} nets",
        netlist.num_gates(),
        netlist.num_nets()
    );

    // Write both interchange files.
    let verilog = write_verilog(&netlist, "des_perf_demo");
    let liberty = write_liberty(&library, "typical");
    std::fs::write("des_perf_demo.v", &verilog)?;
    std::fs::write("typical.lib", &liberty)?;
    println!(
        "wrote des_perf_demo.v ({} lines) and typical.lib ({} lines)",
        verilog.lines().count(),
        liberty.lines().count()
    );

    // Read them back.
    let netlist_back = parse_verilog(&verilog)?;
    let library_back = parse_liberty(&liberty)?;
    assert_eq!(netlist, netlist_back, "netlist round trip is lossless");
    assert_eq!(library, library_back, "library round trip is lossless");

    // Identical timing either way.
    let mut original = Timer::new(netlist, library);
    original.update_timing().run_sequential();
    let mut round_tripped = Timer::new(netlist_back, library_back);
    round_tripped.update_timing().run_sequential();

    let (a, b) = (original.report(3), round_tripped.report(3));
    assert_eq!(a.wns_ps, b.wns_ps);
    assert_eq!(a.tns_ps, b.tns_ps);
    println!("\ntiming identical after the round trip:");
    print!("{a}");
    Ok(())
}
