//! A miniature timing-closure loop built on the incremental engine.
//!
//! Starts from a design that misses timing at an aggressive clock, then
//! repeatedly traces the worst path, upsizes its weakest gate, and re-runs
//! `update_timing` incrementally (through the scheduler, with G-PASTA
//! partitioning) until the design meets timing or upsizing stops helping —
//! the classic repower loop of physical synthesis, driven entirely by this
//! library's public API.
//!
//! ```text
//! cargo run --release --example timing_optimizer
//! ```

use gpasta::circuits::PaperCircuit;
use gpasta::core::{Partitioner, PartitionerOptions, SeqGPasta};
use gpasta::sched::Executor;
use gpasta::sta::{trace_worst_path, CellLibrary, GateId, Timer};
use gpasta::tdg::QuotientTdg;

const MAX_DRIVE: f32 = 8.0;
const MAX_ROUNDS: usize = 200;

/// Run the pending incremental update through the partitioned scheduler.
fn run_update(timer: &mut Timer, exec: &Executor, partitioner: &SeqGPasta) -> usize {
    let update = timer.update_timing();
    let tasks = update.tdg().num_tasks();
    if tasks == 0 {
        return 0;
    }
    let partition = partitioner
        .partition(update.tdg(), &PartitionerOptions::default())
        .expect("valid options");
    let quotient = QuotientTdg::build(update.tdg(), &partition).expect("schedulable");
    let payload = update.task_fn();
    exec.run_partitioned(&quotient, &payload);
    tasks
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = CellLibrary::typical();
    let mut timer = Timer::new(PaperCircuit::AesCore.build(0.01), library.clone());
    let exec = Executor::host_parallel();
    let partitioner = SeqGPasta::new();

    // Find a clock the unoptimised design misses by a healthy margin.
    timer.update_timing().run_sequential();
    let relaxed_wns = timer.report(1).wns_ps;
    let clock = timer.data().clock_period_ps - relaxed_wns - 60.0;
    timer.set_clock_period(clock);
    run_update(&mut timer, &exec, &partitioner);
    let start = timer.report(1);
    println!(
        "target clock {clock:.0} ps: starting WNS {:.1} ps, TNS {:.1} ps",
        start.wns_ps, start.tns_ps
    );
    assert!(start.wns_ps < 0.0, "the target clock must start violated");

    let mut upsized = 0usize;
    let mut incremental_tasks = 0usize;
    for round in 0..MAX_ROUNDS {
        let report = timer.report(1);
        if report.wns_ps >= 0.0 {
            println!(
                "\nmet timing after {round} rounds ({} gates upsized, {} incremental tasks re-run)",
                upsized, incremental_tasks
            );
            println!("final WNS {:.1} ps", report.wns_ps);
            return Ok(());
        }

        // Trace the worst path and pick its weakest (lowest-drive) gate.
        let endpoint = report.worst.first().expect("violating endpoint").node;
        let path = trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &library,
            timer.data(),
            endpoint,
        )
        .expect("endpoint is traceable");
        let victim: Option<GateId> = path
            .steps
            .iter()
            .filter_map(|step| match timer.graph().node_kind(step.node) {
                gpasta::sta::NodeKind::GateOutput(g) => Some(GateId(g)),
                _ => None,
            })
            .filter(|&g| timer.data().drive(g.0) < MAX_DRIVE)
            .min_by(|&a, &b| timer.data().drive(a.0).total_cmp(&timer.data().drive(b.0)));

        let Some(gate) = victim else {
            println!("\nno upsizable gate left on the critical path; stopping");
            println!(
                "best achieved WNS {:.1} ps at clock {clock:.0} ps",
                report.wns_ps
            );
            return Ok(());
        };
        let new_drive = timer.data().drive(gate.0) * 2.0;
        timer.repower_gate(gate, new_drive);
        upsized += 1;
        incremental_tasks += run_update(&mut timer, &exec, &partitioner);

        if round % 10 == 0 {
            println!(
                "round {round:>3}: WNS {:>8.1} ps, upsized {} ({} drive {new_drive})",
                timer.report(1).wns_ps,
                upsized,
                timer.netlist().gates()[gate.index()].name
            );
        }
    }
    println!(
        "\nstopped after {MAX_ROUNDS} rounds; WNS {:.1} ps",
        timer.report(1).wns_ps
    );
    Ok(())
}
