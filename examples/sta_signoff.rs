//! A signoff-style analysis pass: SDC constraints, setup and hold reports,
//! design-rule checks, and k-worst-path enumeration on a synthetic design.
//!
//! ```text
//! cargo run --release --example sta_signoff
//! ```

use gpasta::circuits::PaperCircuit;
use gpasta::sta::{apply_sdc, check_design_rules, k_worst_paths, write_sdc, CellLibrary, Timer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = CellLibrary::typical();
    let mut timer = Timer::new(PaperCircuit::VgaLcd.build(0.005), library);

    // Constrain the design the way a signoff run would: a clock plus
    // boundary delays on the first few ports.
    let mut sdc = String::from("create_clock -name core_clk -period 700\n");
    for name in timer
        .netlist()
        .input_names()
        .iter()
        .take(3)
        .cloned()
        .collect::<Vec<_>>()
    {
        sdc.push_str(&format!("set_input_delay 90 [get_ports {name}]\n"));
    }
    for name in timer
        .netlist()
        .output_names()
        .iter()
        .take(3)
        .cloned()
        .collect::<Vec<_>>()
    {
        sdc.push_str(&format!("set_output_delay 60 [get_ports {name}]\n"));
    }
    apply_sdc(&mut timer, &sdc)?;
    timer.update_timing().run_sequential();
    println!("applied constraints:\n{}", write_sdc(&timer));

    // Setup and hold summaries.
    let setup = timer.report(5);
    let hold = timer.report_hold(3);
    println!("setup:\n{setup}");
    println!("hold:\n{hold}");

    // Electrical design rules.
    let drc = check_design_rules(timer.graph(), timer.netlist(), timer.data(), 260.0, 40.0);
    println!("design rules: {drc}");

    // The three worst paths into the most critical endpoint.
    let endpoint = setup.worst.first().expect("endpoints exist");
    println!("top paths into {}:", endpoint.name);
    for (i, path) in k_worst_paths(
        timer.graph(),
        timer.netlist(),
        timer.data(),
        endpoint.node,
        3,
    )
    .into_iter()
    .enumerate()
    {
        println!(
            "\n#{} (slack {:.1} ps, {} hops)",
            i + 1,
            path.slack_ps,
            path.steps.len()
        );
        // Print only the gate-output hops to keep it readable.
        for step in path.steps.iter().filter(|s| s.location.ends_with(".out")) {
            println!(
                "   {:<20} {} arrival {:>8.1} ps",
                step.location,
                if step.rise { "^" } else { "v" },
                step.arrival_ps
            );
        }
    }
    Ok(())
}
