//! Sharded multi-process execution with a shard supervisor.
//!
//! One timing update is split across K OS processes: the quotient graph's
//! partitions are grouped into contiguous, acyclic *shards*
//! ([`ShardPlan`](crate::tdg::ShardPlan)), and each shard's fprop/bprop
//! tasks execute inside a dedicated worker process
//! (`gpasta shard-worker`, [`run_worker`]) while the parent supervisor
//! ([`run_sharded`]) streams boundary timing values in and shard deltas
//! out over `GPCKPT01`-framed pipes ([`wire`]).
//!
//! The process boundary is what buys fault tolerance: a worker that
//! panics, exits, or is `SIGKILL`ed takes down only its own address
//! space. The supervisor detects the death (by `wait` or by heartbeat
//! silence), drains the shard's forward closure, respawns the worker with
//! bounded retry/backoff, and — when retries are exhausted — poisons the
//! shard at shard granularity and *heals* the poisoned cone in-process at
//! the end, so the final report is bit-identical to a single-process run.
//!
//! # Determinism contract
//!
//! Supervisor, worker, and the single-process oracle all rebuild the same
//! context from `(circuit, scale, seed)`: netlist → timer → modifier
//! schedule → full-update TDG → seq-G-PASTA partition → quotient → shard
//! plan. Every step is a pure function of those inputs, and both sides
//! prove agreement by exchanging a combined TDG + plan fingerprint before
//! any value crosses the pipe. Timing values travel as raw `f32` bit
//! patterns, and any topological execution order of the update tasks
//! produces identical bits — which together make "killed anywhere,
//! recovered bit-identical" testable with `assert_eq!` on snapshots.

pub mod wire;

mod supervisor;
mod worker;

pub use supervisor::run_sharded;
pub use worker::{run_worker, WorkerArgs};

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::checkpoint::{fnv1a64, splitmix64};
use crate::circuits::PaperCircuit;
use crate::core::{PartitionError, Partitioner, PartitionerOptions, SeqGPasta};
use crate::sched::{FaultPlan, RetryPolicy};
use crate::sta::{CellLibrary, SnapshotMismatch, Timer, TimingSnapshot, TimingUpdateTdg};
use crate::tdg::{
    PartitionId, QuotientTdg, ShardPlan, ShardPlanError, ShardPlanOptions, Tdg,
    ValidatePartitionError,
};
use wire::{put_arr, put_u32, put_u64, Reader, WireError};

/// A sharded run failed.
#[derive(Debug)]
pub enum ShardError {
    /// Partitioning the update TDG failed.
    Partition(PartitionError),
    /// The quotient graph rejected the partition.
    Quotient(ValidatePartitionError),
    /// The shard plan rejected its inputs.
    Plan(ShardPlanError),
    /// A frame could not be read or written.
    Wire(WireError),
    /// An OS-level operation (spawn, wait, pipe, file) failed.
    Io {
        /// What the supervisor or worker was doing.
        op: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The peer violated the frame protocol (wrong frame order, or a
    /// fingerprint/shape disagreement between supervisor and worker).
    Protocol(String),
    /// A shard checkpoint is corrupt or belongs to a different run.
    Checkpoint(String),
    /// A checkpoint snapshot does not fit the rebuilt design.
    Snapshot(SnapshotMismatch),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Partition(e) => write!(f, "partitioning failed: {e}"),
            ShardError::Quotient(e) => write!(f, "quotient build failed: {e}"),
            ShardError::Plan(e) => write!(f, "shard planning failed: {e}"),
            ShardError::Wire(e) => write!(f, "shard wire failed: {e}"),
            ShardError::Io { op, source } => write!(f, "cannot {op}: {source}"),
            ShardError::Protocol(why) => write!(f, "shard protocol violation: {why}"),
            ShardError::Checkpoint(why) => write!(f, "shard checkpoint rejected: {why}"),
            ShardError::Snapshot(e) => write!(f, "checkpoint snapshot rejected: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Partition(e) => Some(e),
            ShardError::Quotient(e) => Some(e),
            ShardError::Plan(e) => Some(e),
            ShardError::Wire(e) => Some(e),
            ShardError::Io { source, .. } => Some(source),
            ShardError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionError> for ShardError {
    fn from(e: PartitionError) -> Self {
        ShardError::Partition(e)
    }
}

impl From<ValidatePartitionError> for ShardError {
    fn from(e: ValidatePartitionError) -> Self {
        ShardError::Quotient(e)
    }
}

impl From<ShardPlanError> for ShardError {
    fn from(e: ShardPlanError) -> Self {
        ShardError::Plan(e)
    }
}

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        ShardError::Wire(e)
    }
}

impl From<SnapshotMismatch> for ShardError {
    fn from(e: SnapshotMismatch) -> Self {
        ShardError::Snapshot(e)
    }
}

/// Configuration of one sharded run ([`run_sharded`]).
#[derive(Debug)]
pub struct ShardRunConfig {
    /// Design to analyse.
    pub circuit: PaperCircuit,
    /// Circuit scale factor (see [`PaperCircuit::build`]).
    pub scale: f64,
    /// Seed of the deterministic design-modifier schedule.
    pub seed: u64,
    /// Requested shard count (clamped to the partition count).
    pub shards: usize,
    /// Worker processes alive at once; `0` means one per shard.
    pub max_workers: usize,
    /// Member-task cap per shard; `0` disables the cap.
    pub max_tasks_per_shard: usize,
    /// Respawn policy for dead or hung workers.
    pub retry: RetryPolicy,
    /// Heartbeat silence after which a worker counts as hung.
    pub stall_after: Duration,
    /// Deterministic shard-level fault injection keyed `(shard, attempt)`.
    pub faults: FaultPlan,
    /// Seed choosing *where inside the shard* an injected fault fires.
    pub chaos_seed: u64,
    /// Re-run poisoned/unfinished shards in-process at the end so the
    /// final report matches the single-process oracle bit for bit.
    pub heal: bool,
    /// Capture the final [`TimingSnapshot`] in the outcome (differential
    /// tests want it; the CLI does not need the allocation).
    pub capture_snapshot: bool,
    /// Executable spawned as `shard-worker`; defaults to the current exe.
    pub worker_exe: PathBuf,
    /// Write a [`ShardCheckpoint`] here after every shard completion.
    pub checkpoint_to: Option<PathBuf>,
    /// Resume from a [`ShardCheckpoint`] written by an earlier run.
    pub resume_from: Option<PathBuf>,
    /// Stop (uncleanly, as if the supervisor died) after this many *new*
    /// shard completions — the test hook for supervisor-death recovery.
    pub kill_after_shards: Option<u32>,
}

impl ShardRunConfig {
    /// A default-tuned configuration for `(circuit, scale, seed, shards)`.
    pub fn new(circuit: PaperCircuit, scale: f64, seed: u64, shards: usize) -> Self {
        ShardRunConfig {
            circuit,
            scale,
            seed,
            shards,
            max_workers: 0,
            max_tasks_per_shard: 0,
            retry: RetryPolicy::default(),
            stall_after: Duration::from_secs(10),
            faults: FaultPlan::none(),
            chaos_seed: 0,
            heal: true,
            capture_snapshot: false,
            worker_exe: std::env::current_exe().unwrap_or_default(),
            checkpoint_to: None,
            resume_from: None,
            kill_after_shards: None,
        }
    }
}

/// What a sharded run produced.
#[derive(Debug, Clone)]
pub struct ShardRunOutcome {
    /// Worst negative slack, raw bits.
    pub wns_bits: u32,
    /// Total negative slack, raw bits.
    pub tns_bits: u32,
    /// Shards in the plan.
    pub num_shards: usize,
    /// Quotient edges crossing shard boundaries.
    pub edge_cut: usize,
    /// Shards whose workers completed (possibly after respawns).
    pub salvaged: Vec<u32>,
    /// Shards that exhausted their retries.
    pub poisoned: Vec<u32>,
    /// Shards drained because a poisoned shard sits upstream.
    pub unfinished: Vec<u32>,
    /// Worker attempts per shard (0 = completed from checkpoint).
    pub attempts: Vec<u32>,
    /// Workers respawned after a death or stall.
    pub respawns: u64,
    /// Tasks the supervisor re-executed in-process while healing.
    pub healed_tasks: u64,
    /// Sum of worker task-loop nanoseconds (overhead accounting).
    pub worker_exec_nanos: u64,
    /// The run stopped early via `kill_after_shards`.
    pub killed: bool,
    /// Partitions whose values are final (members of salvaged shards).
    pub completed_partitions: Vec<u32>,
    /// Final timing state, when `capture_snapshot` was set.
    pub snapshot: Option<TimingSnapshot>,
}

/// Rebuild the deterministic analysis context every process agrees on:
/// netlist at `scale`, typical library, and the seed's modifier schedule.
pub(crate) fn build_timer(circuit: PaperCircuit, scale: f64, seed: u64) -> Timer {
    let mut timer = Timer::new(circuit.build(scale), CellLibrary::typical());
    crate::checkpoint::apply_modifier_schedule(&mut timer, seed, 0);
    timer
}

/// Partition `update`'s TDG and group the quotient into shards — the same
/// pure function on every side of the process boundary.
pub(crate) fn plan_shards(
    update: &TimingUpdateTdg<'_>,
    shards: usize,
    max_tasks_per_shard: usize,
) -> Result<(QuotientTdg, ShardPlan), ShardError> {
    let partition = SeqGPasta::new().partition(update.tdg(), &PartitionerOptions::default())?;
    let quotient = QuotientTdg::build(update.tdg(), &partition)?;
    let plan = ShardPlan::build(
        &quotient,
        shards,
        &ShardPlanOptions {
            max_tasks_per_shard,
            ..ShardPlanOptions::default()
        },
    )?;
    Ok((quotient, plan))
}

/// Shard `shard`'s member tasks in a valid topological execution order
/// (members are in quotient level order; each member in TDG topo order).
pub(crate) fn shard_tasks(quotient: &QuotientTdg, plan: &ShardPlan, shard: u32) -> Vec<u32> {
    plan.members(shard)
        .iter()
        .flat_map(|&p| quotient.execution_order(PartitionId(p)).iter().copied())
        .collect()
}

/// The agreement fingerprint exchanged in `Hello`: TDG identity mixed
/// with the shard-plan identity.
pub(crate) fn run_fingerprint(tdg: &Tdg, plan: &ShardPlan) -> u64 {
    splitmix64(tdg.fingerprint()) ^ plan.fingerprint()
}

/// Where inside a shard an injected fault fires: a deterministic kill
/// point in `[0, tasks]` keyed by `(chaos_seed, shard, attempt)` — `0`
/// dies before the first task, `tasks` after the last one (before the
/// delta is sent).
pub(crate) fn fault_point(chaos_seed: u64, shard: u32, attempt: u32, tasks: u64) -> u64 {
    let h = splitmix64(chaos_seed ^ splitmix64((u64::from(shard) << 32) | u64::from(attempt)));
    h % (tasks + 1)
}

// ---------------------------------------------------------------------------
// Shard checkpoint: supervisor hand-off across its own death
// ---------------------------------------------------------------------------

const CKPT_MAGIC: &[u8; 8] = b"GPCKPT01";
const CKPT_KIND: u8 = 16; // disjoint from the wire frame kinds

/// What the supervisor persists after each shard completion: enough for a
/// *new* supervisor — even one using a different shard count — to pick up
/// without redoing the completed partitions' work.
///
/// The payload is the completed-partition set plus the full timing
/// snapshot; partitions (not shards) are the unit because the partition
/// set is a pure function of the design alone, while shards depend on the
/// requested count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Paper name of the circuit.
    pub circuit: String,
    /// Circuit scale as `f64` bits.
    pub scale_bits: u64,
    /// Modifier-schedule seed.
    pub seed: u64,
    /// Fingerprint of the update TDG (plan-independent, so the resuming
    /// supervisor may choose a different shard count).
    pub tdg_fingerprint: u64,
    /// Partitions whose values in `snapshot` are final.
    pub completed_partitions: Vec<u32>,
    /// The master timing state at checkpoint time.
    pub snapshot: TimingSnapshot,
}

impl ShardCheckpoint {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u32(&mut p, self.circuit.len() as u32);
        p.extend_from_slice(self.circuit.as_bytes());
        put_u64(&mut p, self.scale_bits);
        put_u64(&mut p, self.seed);
        put_u64(&mut p, self.tdg_fingerprint);
        put_arr(&mut p, &self.completed_partitions);
        let s = &self.snapshot;
        put_u32(&mut p, s.clock_period_bits);
        for arr in [
            &s.slew,
            &s.arrival,
            &s.required,
            &s.arc_delay,
            &s.drive,
            &s.gate_load,
            &s.net_delay,
            &s.input_delay,
            &s.output_delay,
        ] {
            put_arr(&mut p, arr);
        }
        let mut buf = Vec::with_capacity(CKPT_MAGIC.len() + 1 + 8 + p.len() + 8);
        buf.extend_from_slice(CKPT_MAGIC);
        buf.push(CKPT_KIND);
        buf.extend_from_slice(&(p.len() as u64).to_le_bytes());
        buf.extend_from_slice(&p);
        buf.extend_from_slice(&fnv1a64(&p).to_le_bytes());
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Self, ShardError> {
        let corrupt = |why: &str| ShardError::Checkpoint(why.to_string());
        let head = 8 + 1 + 8;
        if bytes.len() < head + 8 {
            return Err(corrupt("file shorter than a checkpoint header"));
        }
        if &bytes[..8] != CKPT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if bytes[8] != CKPT_KIND {
            return Err(corrupt("not a shard checkpoint"));
        }
        let len = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes")) as usize;
        if bytes.len() != head + len + 8 {
            return Err(corrupt("payload length disagrees with the file size"));
        }
        let payload = &bytes[head..head + len];
        let stored = u64::from_le_bytes(bytes[head + len..].try_into().expect("8 bytes"));
        if stored != fnv1a64(payload) {
            return Err(corrupt("checksum mismatch"));
        }
        let mut r = Reader::new(payload);
        let take = |e: WireError| ShardError::Checkpoint(e.to_string());
        let name_len = r.u32("circuit name length").map_err(take)? as usize;
        let name = r.take(name_len, "circuit name").map_err(take)?;
        let circuit =
            String::from_utf8(name.to_vec()).map_err(|_| corrupt("circuit name is not UTF-8"))?;
        let scale_bits = r.u64("scale bits").map_err(take)?;
        let seed = r.u64("seed").map_err(take)?;
        let tdg_fingerprint = r.u64("tdg fingerprint").map_err(take)?;
        let completed_partitions = r.arr("completed partitions").map_err(take)?;
        let clock_period_bits = r.u32("clock period").map_err(take)?;
        let slew = r.arr("slew").map_err(take)?;
        let arrival = r.arr("arrival").map_err(take)?;
        let required = r.arr("required").map_err(take)?;
        let arc_delay = r.arr("arc delay").map_err(take)?;
        let drive = r.arr("drive").map_err(take)?;
        let gate_load = r.arr("gate load").map_err(take)?;
        let net_delay = r.arr("net delay").map_err(take)?;
        let input_delay = r.arr("input delay").map_err(take)?;
        let output_delay = r.arr("output delay").map_err(take)?;
        r.done().map_err(take)?;
        Ok(ShardCheckpoint {
            circuit,
            scale_bits,
            seed,
            tdg_fingerprint,
            completed_partitions,
            snapshot: TimingSnapshot {
                clock_period_bits,
                slew,
                arrival,
                required,
                arc_delay,
                drive,
                gate_load,
                net_delay,
                input_delay,
                output_delay,
            },
        })
    }

    /// Write atomically (temp file + fsync + rename): a supervisor killed
    /// mid-write leaves either the old checkpoint or the new one, never a
    /// torn file.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the filesystem fails.
    pub fn write_to_path(&self, path: &Path) -> Result<(), ShardError> {
        let io = |op: &'static str| move |source| ShardError::Io { op, source };
        let tmp = path.with_extension("tmp");
        let mut f = fs::File::create(&tmp).map_err(io("create checkpoint temp file"))?;
        f.write_all(&self.encode())
            .map_err(io("write checkpoint"))?;
        f.sync_all().map_err(io("sync checkpoint"))?;
        drop(f);
        fs::rename(&tmp, path).map_err(io("rename checkpoint into place"))
    }

    /// Read and verify a checkpoint written by [`write_to_path`](Self::write_to_path).
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the file cannot be read and
    /// [`ShardError::Checkpoint`] when its bytes are not an intact shard
    /// checkpoint.
    pub fn read_from_path(path: &Path) -> Result<Self, ShardError> {
        let bytes = fs::read(path).map_err(|source| ShardError::Io {
            op: "read checkpoint",
            source,
        })?;
        Self::decode(&bytes)
    }
}

/// What [`run_single_process`] measured — the oracle every differential
/// test compares a sharded run against.
#[derive(Debug, Clone)]
pub struct SingleProcessRun {
    /// Worst negative slack, raw bits.
    pub wns_bits: u32,
    /// Total negative slack, raw bits.
    pub tns_bits: u32,
    /// Nanoseconds spent in the task-execution loop only.
    pub exec_nanos: u64,
    /// The complete timing state after the run.
    pub snapshot: TimingSnapshot,
}

/// Run the identical update in one process — same context builder, same
/// task set — and capture the full resulting state.
pub fn run_single_process(circuit: PaperCircuit, scale: f64, seed: u64) -> SingleProcessRun {
    let mut timer = build_timer(circuit, scale, seed);
    let update = timer.update_timing();
    let start = std::time::Instant::now();
    update.run_sequential();
    let exec_nanos = start.elapsed().as_nanos() as u64;
    drop(update);
    let report = timer.report(1);
    SingleProcessRun {
        wns_bits: report.wns_ps.to_bits(),
        tns_bits: report.tns_ps.to_bits(),
        exec_nanos,
        snapshot: timer.snapshot(),
    }
}

/// Run the identical update in one process but in *shard-plan task
/// order* — the exact order a sharded run's workers execute, with no
/// pipes, heartbeats, or fault hooks.
///
/// This is the order-fair baseline for overhead benchmarking: comparing
/// a worker's task loop against [`run_single_process`] (level order)
/// conflates process overhead with cache effects of the different
/// execution order, which swing tens of percent either way. Comparing
/// against this function isolates what sharding itself costs.
///
/// # Errors
///
/// Propagates [`ShardError`] from partitioning/planning, exactly as
/// [`run_sharded`] would for the same inputs.
pub fn run_in_plan_order(
    circuit: PaperCircuit,
    scale: f64,
    seed: u64,
    shards: usize,
) -> Result<SingleProcessRun, ShardError> {
    let mut timer = build_timer(circuit, scale, seed);
    let update = timer.update_timing();
    let (quotient, plan) = plan_shards(&update, shards, 0)?;
    // Shard ids are topological, so id order is a valid schedule.
    let mut order: Vec<u32> = Vec::with_capacity(update.tdg().num_tasks());
    for s in 0..plan.num_shards() as u32 {
        order.extend(shard_tasks(&quotient, &plan, s));
    }
    let start = std::time::Instant::now();
    for &t in &order {
        update.execute_task(crate::tdg::TaskId(t));
    }
    let exec_nanos = start.elapsed().as_nanos() as u64;
    drop(update);
    let report = timer.report(1);
    Ok(SingleProcessRun {
        wns_bits: report.wns_ps.to_bits(),
        tns_bits: report.tns_ps.to_bits(),
        exec_nanos,
        snapshot: timer.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> ShardCheckpoint {
        ShardCheckpoint {
            circuit: "aes_core".into(),
            scale_bits: 1.5f64.to_bits(),
            seed: 0xFEED,
            tdg_fingerprint: 0xABCD_EF01,
            completed_partitions: vec![0, 2, 3],
            snapshot: TimingSnapshot {
                clock_period_bits: 1000.0f32.to_bits(),
                slew: vec![1, 2, 3, 4],
                arrival: vec![5, 6, 7, 8],
                required: vec![9, 10],
                arc_delay: vec![11],
                drive: vec![12, 13],
                gate_load: vec![14],
                net_delay: vec![15],
                input_delay: vec![16],
                output_delay: vec![17, 18],
            },
        }
    }

    #[test]
    fn checkpoints_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("gpasta-shard-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("hand_off.ckpt");
        let ck = sample_checkpoint();
        ck.write_to_path(&path).expect("write");
        let back = ShardCheckpoint::read_from_path(&path).expect("read");
        assert_eq!(back, ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let ck = sample_checkpoint();
        let bytes = ck.encode();
        assert!(ShardCheckpoint::decode(&bytes).is_ok());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                ShardCheckpoint::decode(&bad).is_err(),
                "flip at byte {i} must be detected"
            );
        }
        assert!(
            ShardCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err(),
            "truncation must be detected"
        );
    }

    #[test]
    fn fault_points_cover_the_whole_shard_range() {
        // Keyed by (shard, attempt): different keys reach different
        // points, and every point is within [0, tasks].
        let tasks = 7;
        let mut seen = std::collections::BTreeSet::new();
        for shard in 0..8 {
            for attempt in 0..8 {
                let p = fault_point(42, shard, attempt, tasks);
                assert!(p <= tasks);
                seen.insert(p);
            }
        }
        assert!(seen.len() > 4, "kill points must spread, got {seen:?}");
        assert_eq!(
            fault_point(42, 3, 1, tasks),
            fault_point(42, 3, 1, tasks),
            "deterministic"
        );
    }

    #[test]
    fn fingerprints_depend_on_the_plan() {
        let mut timer = build_timer(PaperCircuit::AesCore, 0.002, 7);
        let update = timer.update_timing();
        let (_, plan2) = plan_shards(&update, 2, 0).expect("plan");
        let (_, plan4) = plan_shards(&update, 4, 0).expect("plan");
        let f2 = run_fingerprint(update.tdg(), &plan2);
        assert_eq!(f2, run_fingerprint(update.tdg(), &plan2), "pure");
        if plan2.num_shards() != plan4.num_shards() {
            assert_ne!(f2, run_fingerprint(update.tdg(), &plan4));
        }
    }
}
