//! `GPCKPT01`-framed messages between the shard supervisor and its
//! worker processes.
//!
//! Every frame shares the checkpoint format's magic + version prefix and
//! its FNV-1a 64 integrity checksum, so a truncated pipe, an interleaved
//! foreign write, or a worker killed mid-frame is detected as corruption
//! rather than parsed as garbage:
//!
//! ```text
//! magic "GPCKPT" + version "01"     8 bytes
//! frame kind                        u8
//! payload length                    u64 LE
//! payload                           length bytes
//! FNV-1a 64 of the payload          u64 LE
//! ```
//!
//! Frames flow in both directions: the supervisor sends [`Frame::Boundary`]
//! (the worker's boundary inputs) down the child's stdin; the worker sends
//! [`Frame::Hello`], [`Frame::Heartbeat`], [`Frame::Delta`], and
//! [`Frame::Done`] up its stdout. Values travel as raw `f32` bit patterns
//! inside [`BoundaryValues`], never as rounded text, so a value that
//! crossed the pipe is bit-identical to one computed locally.

use crate::checkpoint::fnv1a64;
use crate::sta::{BoundaryValues, ValueSet};
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"GPCKPT01";

/// Refuse to allocate for a frame larger than this (a corrupt length
/// header must not demand gigabytes).
const MAX_PAYLOAD: u64 = 1 << 30;

const KIND_HELLO: u8 = 1;
const KIND_BOUNDARY: u8 = 2;
const KIND_HEARTBEAT: u8 = 3;
const KIND_DELTA: u8 = 4;
const KIND_DONE: u8 = 5;

/// A message between supervisor and shard worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → supervisor: identity and plan agreement, sent once after
    /// the worker rebuilt the design and its shard plan.
    Hello {
        /// The worker's assigned shard.
        shard: u32,
        /// The attempt this worker serves.
        attempt: u32,
        /// Shards in the worker's plan.
        num_shards: u32,
        /// Tasks in the worker's update TDG.
        num_tasks: u64,
        /// Combined TDG + shard-plan fingerprint; both sides must agree
        /// before values are exchanged.
        fingerprint: u64,
    },
    /// Supervisor → worker: the boundary inputs (values the shard reads
    /// but does not compute).
    Boundary(BoundaryValues),
    /// Worker → supervisor: liveness plus progress.
    Heartbeat {
        /// Tasks executed so far.
        done: u64,
    },
    /// Worker → supervisor: the shard's write set (its delta).
    Delta(BoundaryValues),
    /// Worker → supervisor: the shard finished; always follows its
    /// [`Frame::Delta`].
    Done {
        /// Nanoseconds spent in the task-execution loop only (excludes
        /// design rebuild), for overhead accounting.
        exec_nanos: u64,
        /// Tasks executed.
        tasks: u64,
    },
}

/// Reading or decoding a frame failed.
#[derive(Debug)]
pub enum WireError {
    /// The pipe closed mid-frame or failed outright.
    Io(std::io::Error),
    /// The peer closed the pipe cleanly between frames.
    Eof,
    /// The bytes are not a `GPCKPT01` frame, the checksum disagrees, or a
    /// section is malformed; the string names the defect.
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Eof => write!(f, "peer closed the pipe"),
            WireError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_arr(buf: &mut Vec<u8>, arr: &[u32]) {
    put_u32(buf, arr.len() as u32);
    for &v in arr {
        put_u32(buf, v);
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Corrupt(format!(
                "truncated while reading {what} ({} bytes left, {n} needed)",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn arr(&mut self, what: &str) -> Result<Vec<u32>, WireError> {
        let len = self.u32(what)? as usize;
        if self.buf.len() - self.pos < len * 4 {
            return Err(WireError::Corrupt(format!(
                "{what} claims {len} entries but only {} bytes remain",
                self.buf.len() - self.pos
            )));
        }
        (0..len).map(|_| self.u32(what)).collect()
    }

    pub(crate) fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after the last section",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn encode_values(buf: &mut Vec<u8>, values: &BoundaryValues) {
    put_u32(buf, values.clock_period_bits);
    put_arr(buf, &values.set.fprop_nodes);
    put_arr(buf, &values.set.req_nodes);
    put_arr(buf, &values.set.arcs);
    put_arr(buf, &values.fprop_bits);
    put_arr(buf, &values.req_bits);
    put_arr(buf, &values.arc_bits);
}

fn decode_values(r: &mut Reader<'_>) -> Result<BoundaryValues, WireError> {
    let clock_period_bits = r.u32("clock period")?;
    let set = ValueSet {
        fprop_nodes: r.arr("fprop node set")?,
        req_nodes: r.arr("required node set")?,
        arcs: r.arr("arc set")?,
    };
    let values = BoundaryValues {
        clock_period_bits,
        fprop_bits: r.arr("fprop values")?,
        req_bits: r.arr("required values")?,
        arc_bits: r.arr("arc values")?,
        set,
    };
    if values.fprop_bits.len() != values.set.fprop_nodes.len() * 8
        || values.req_bits.len() != values.set.req_nodes.len() * 4
        || values.arc_bits.len() != values.set.arcs.len() * 4
    {
        return Err(WireError::Corrupt(
            "value array lengths disagree with the cell sets".into(),
        ));
    }
    Ok(values)
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Boundary(_) => KIND_BOUNDARY,
            Frame::Heartbeat { .. } => KIND_HEARTBEAT,
            Frame::Delta(_) => KIND_DELTA,
            Frame::Done { .. } => KIND_DONE,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Frame::Hello {
                shard,
                attempt,
                num_shards,
                num_tasks,
                fingerprint,
            } => {
                put_u32(&mut buf, *shard);
                put_u32(&mut buf, *attempt);
                put_u32(&mut buf, *num_shards);
                put_u64(&mut buf, *num_tasks);
                put_u64(&mut buf, *fingerprint);
            }
            Frame::Boundary(v) | Frame::Delta(v) => encode_values(&mut buf, v),
            Frame::Heartbeat { done } => put_u64(&mut buf, *done),
            Frame::Done { exec_nanos, tasks } => {
                put_u64(&mut buf, *exec_nanos);
                put_u64(&mut buf, *tasks);
            }
        }
        buf
    }

    fn decode(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let frame = match kind {
            KIND_HELLO => Frame::Hello {
                shard: r.u32("shard")?,
                attempt: r.u32("attempt")?,
                num_shards: r.u32("shard count")?,
                num_tasks: r.u64("task count")?,
                fingerprint: r.u64("fingerprint")?,
            },
            KIND_BOUNDARY => Frame::Boundary(decode_values(&mut r)?),
            KIND_HEARTBEAT => Frame::Heartbeat {
                done: r.u64("progress")?,
            },
            KIND_DELTA => Frame::Delta(decode_values(&mut r)?),
            KIND_DONE => Frame::Done {
                exec_nanos: r.u64("exec nanos")?,
                tasks: r.u64("task count")?,
            },
            other => {
                return Err(WireError::Corrupt(format!("unknown frame kind {other}")));
            }
        };
        r.done()?;
        Ok(frame)
    }

    /// Serialize this frame — magic, kind, length, payload, checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut buf = Vec::with_capacity(MAGIC.len() + 1 + 8 + payload.len() + 8);
        buf.extend_from_slice(MAGIC);
        buf.push(self.kind());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        buf
    }

    /// Write this frame to `w` and flush it (frames cross pipes; an
    /// unflushed frame would deadlock both sides).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the pipe fails.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        w.write_all(&self.to_bytes()).map_err(WireError::Io)?;
        w.flush().map_err(WireError::Io)
    }

    /// Read one frame from `r`, verifying magic, length, and checksum.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] on a clean close before the first byte,
    /// [`WireError::Io`] on a mid-frame close or pipe failure, and
    /// [`WireError::Corrupt`] for malformed bytes.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, WireError> {
        let mut head = [0u8; 8 + 1 + 8];
        let mut filled = 0;
        while filled < head.len() {
            let n = r.read(&mut head[filled..]).map_err(WireError::Io)?;
            if n == 0 {
                return if filled == 0 {
                    Err(WireError::Eof)
                } else {
                    Err(WireError::Corrupt(format!(
                        "pipe closed {filled} bytes into a frame header"
                    )))
                };
            }
            filled += n;
        }
        if &head[..8] != MAGIC {
            return Err(WireError::Corrupt("bad frame magic".into()));
        }
        let kind = head[8];
        let len = u64::from_le_bytes(head[9..17].try_into().expect("8 bytes"));
        if len > MAX_PAYLOAD {
            return Err(WireError::Corrupt(format!(
                "frame claims {len} payload bytes (cap {MAX_PAYLOAD})"
            )));
        }
        let mut body = vec![0u8; len as usize + 8];
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Corrupt("pipe closed mid-payload".into())
            } else {
                WireError::Io(e)
            }
        })?;
        let (payload, sum_bytes) = body.split_at(len as usize);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(WireError::Corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            )));
        }
        Frame::decode(kind, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> BoundaryValues {
        BoundaryValues {
            clock_period_bits: 1000.0f32.to_bits(),
            set: ValueSet {
                fprop_nodes: vec![1, 4],
                req_nodes: vec![2],
                arcs: vec![0, 3, 9],
            },
            fprop_bits: (0..16).collect(),
            req_bits: vec![100, 101, 102, 103],
            arc_bits: (200..212).collect(),
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = [
            Frame::Hello {
                shard: 3,
                attempt: 1,
                num_shards: 4,
                num_tasks: 1000,
                fingerprint: 0xDEAD_BEEF,
            },
            Frame::Boundary(sample_values()),
            Frame::Heartbeat { done: 42 },
            Frame::Delta(sample_values()),
            Frame::Done {
                exec_nanos: 123_456,
                tasks: 500,
            },
        ];
        let mut pipe = Vec::new();
        for f in &frames {
            f.write_to(&mut pipe).expect("write");
        }
        let mut cursor = std::io::Cursor::new(pipe);
        for f in &frames {
            let got = Frame::read_from(&mut cursor).expect("read");
            assert_eq!(&got, f);
        }
        assert!(matches!(Frame::read_from(&mut cursor), Err(WireError::Eof)));
    }

    #[test]
    fn bit_flips_are_rejected() {
        let bytes = Frame::Heartbeat { done: 7 }.to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = Frame::read_from(&mut std::io::Cursor::new(bad))
                .expect_err("every single-bit flip must be detected");
            assert!(
                matches!(err, WireError::Corrupt(_) | WireError::Io(_)),
                "byte {i}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_corruption_not_eof() {
        let bytes = Frame::Done {
            exec_nanos: 1,
            tasks: 2,
        }
        .to_bytes();
        for cut in 1..bytes.len() {
            let err = Frame::read_from(&mut std::io::Cursor::new(&bytes[..cut]))
                .expect_err("truncated frame must fail");
            assert!(
                matches!(err, WireError::Corrupt(_)),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut bytes = Frame::Heartbeat { done: 7 }.to_bytes();
        bytes[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = Frame::read_from(&mut std::io::Cursor::new(bytes)).expect_err("cap");
        assert!(matches!(err, WireError::Corrupt(_)));
    }

    #[test]
    fn mismatched_value_lengths_are_rejected() {
        let mut v = sample_values();
        v.fprop_bits.pop();
        let bytes = Frame::Delta(v).to_bytes();
        let err = Frame::read_from(&mut std::io::Cursor::new(bytes)).expect_err("length check");
        assert!(matches!(err, WireError::Corrupt(_)));
    }
}
