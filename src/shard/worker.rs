//! The shard worker: the child-process half of sharded execution.
//!
//! A worker rebuilds the deterministic analysis context from
//! `(circuit, scale, seed)` (see [`super::build_timer`]), rediscovers its
//! own shard from `(shards, shard)` via the shared pure planning
//! function, and then speaks the [`super::wire`] protocol on its stdio:
//!
//! 1. send `Hello` (identity + agreement fingerprint);
//! 2. receive `Boundary` (the values its tasks read but do not compute),
//!    verify the set against its own projection, and apply it;
//! 3. execute its tasks in topological order, sending `Heartbeat` frames
//!    as progress proof for the supervisor's hung-shard watchdog;
//! 4. send `Delta` (every value its tasks wrote) followed by `Done`.
//!
//! Fault injection happens *here*, in the victim process: the supervisor
//! translates a shard-level [`FaultKind`](crate::sched::FaultKind) into
//! one of the `die_after` / `exit_after` / `stall_after` knobs, and the
//! worker SIGKILLs itself, exits nonzero, or goes silent at the chosen
//! task index. The supervisor only ever observes the *symptom* — a dead
//! pipe or a silent child — exactly as it would for a real crash.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use super::wire::Frame;
use super::{build_timer, plan_shards, run_fingerprint, shard_tasks, ShardError};
use crate::circuits::PaperCircuit;
use crate::sta::{BoundaryValues, ValueSet};
use crate::tdg::TaskId;

/// Everything a worker process needs (parsed from the hidden
/// `gpasta shard-worker` command line).
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// Design to rebuild.
    pub circuit: PaperCircuit,
    /// Circuit scale as `f64` bits (bit-exact across the exec boundary).
    pub scale_bits: u64,
    /// Modifier-schedule seed.
    pub seed: u64,
    /// Shard count the supervisor planned with.
    pub shards: usize,
    /// Member-task cap the supervisor planned with.
    pub max_tasks_per_shard: usize,
    /// This worker's shard.
    pub shard: u32,
    /// Which attempt this process serves (echoed in every frame so the
    /// supervisor can discard stragglers from killed predecessors).
    pub attempt: u32,
    /// Check the heartbeat clock every this many tasks (min 1).
    pub beat_every: u64,
    /// Minimum microseconds between heartbeat frames; `0` beats at every
    /// check point. Throttling by *time* matters on small machines: each
    /// frame wakes the supervisor's reader thread, and on one core that
    /// preempts the task loop itself.
    pub beat_interval_micros: u64,
    /// Injected fault: SIGKILL self after this many tasks.
    pub die_after: Option<u64>,
    /// Injected fault: exit(1) after this many tasks.
    pub exit_after: Option<u64>,
    /// Injected fault: go silent (hang) after this many tasks.
    pub stall_after: Option<u64>,
}

/// Fire the injected fault scheduled for progress point `done`, if any.
/// A fault point of `n` fires after `n` tasks have executed — `0` before
/// the first task, `tasks` after the last one but before the delta.
fn maybe_fault(args: &WorkerArgs, done: u64) {
    if args.die_after == Some(done) {
        // SIGKILL self so the parent observes a killed child, not a clean
        // exit; abort() is the fallback if the kill binary is missing.
        let _ = std::process::Command::new("kill")
            .arg("-9")
            .arg(std::process::id().to_string())
            .status();
        std::process::abort();
    }
    if args.exit_after == Some(done) {
        std::process::exit(1);
    }
    if args.stall_after == Some(done) {
        // Hang without exiting or beating: only the supervisor's
        // heartbeat watchdog can detect this state.
        loop {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// The worker protocol over caller-supplied streams (the testable core
/// of [`run_worker`]).
///
/// # Errors
///
/// [`ShardError`] when planning fails, a frame is corrupt, or the
/// supervisor violates the protocol.
pub(crate) fn run_worker_io(
    args: &WorkerArgs,
    inp: &mut impl Read,
    out: &mut impl Write,
) -> Result<(), ShardError> {
    let mut timer = build_timer(args.circuit, f64::from_bits(args.scale_bits), args.seed);
    let update = timer.update_timing();
    let (quotient, plan) = plan_shards(&update, args.shards, args.max_tasks_per_shard)?;
    if (args.shard as usize) >= plan.num_shards() {
        return Err(ShardError::Protocol(format!(
            "assigned shard {} but the plan has {} shards",
            args.shard,
            plan.num_shards()
        )));
    }
    let tasks = shard_tasks(&quotient, &plan, args.shard);

    Frame::Hello {
        shard: args.shard,
        attempt: args.attempt,
        num_shards: plan.num_shards() as u32,
        num_tasks: update.tdg().num_tasks() as u64,
        fingerprint: run_fingerprint(update.tdg(), &plan),
    }
    .write_to(out)?;

    let frame = Frame::read_from(inp)?;
    let Frame::Boundary(boundary) = frame else {
        return Err(ShardError::Protocol(format!(
            "expected a Boundary frame, got {frame:?}"
        )));
    };
    let data = update.data();
    if boundary.clock_period_bits != data.clock_period_ps.to_bits() {
        return Err(ShardError::Protocol(
            "clock period disagrees with the supervisor".into(),
        ));
    }
    let writes = ValueSet::writes_of(&update, &tasks);
    let needed = ValueSet::reads_of(&update, &tasks).minus(&writes);
    if boundary.set != needed {
        return Err(ShardError::Protocol(format!(
            "boundary names {} cells but this shard needs {}",
            boundary.set.len(),
            needed.len()
        )));
    }
    boundary.apply(data);

    let beat_every = args.beat_every.max(1);
    // Timing tasks run sub-microsecond, so even an `Option` compare per
    // task shows up against the single-process baseline. Fold the three
    // fault points into one trip index and execute in clean segments
    // between heartbeats: the fault-free path pays no per-task
    // bookkeeping at all.
    let trip: Option<u64> = [args.die_after, args.exit_after, args.stall_after]
        .into_iter()
        .flatten()
        .min();
    let beat_interval = Duration::from_micros(args.beat_interval_micros);
    let total = tasks.len() as u64;
    let start = Instant::now();
    let mut last_beat = start;
    let mut done = 0u64;
    if trip == Some(0) {
        maybe_fault(args, 0);
    }
    while done < total {
        let mut stop = (done + beat_every).min(total);
        if let Some(p) = trip {
            if p > done && p < stop {
                stop = p;
            }
        }
        for &t in &tasks[done as usize..stop as usize] {
            update.execute_task(TaskId(t));
        }
        done = stop;
        let now = Instant::now();
        if now.duration_since(last_beat) >= beat_interval {
            Frame::Heartbeat { done }.write_to(out)?;
            last_beat = now;
        }
        if trip == Some(done) && done < total {
            maybe_fault(args, done);
        }
    }
    maybe_fault(args, done);
    let exec_nanos = start.elapsed().as_nanos() as u64;

    Frame::Delta(BoundaryValues::export(data, writes)).write_to(out)?;
    Frame::Done {
        exec_nanos,
        tasks: done,
    }
    .write_to(out)
    .map_err(ShardError::from)
}

/// Entry point of the hidden `gpasta shard-worker` subcommand: the
/// protocol of [`run_worker_io`] over this process's stdin/stdout.
///
/// # Errors
///
/// See [`run_worker_io`]; the CLI maps any error to a nonzero exit.
pub fn run_worker(args: &WorkerArgs) -> Result<(), ShardError> {
    let mut inp = std::io::stdin().lock();
    let mut out = std::io::stdout().lock();
    run_worker_io(args, &mut inp, &mut out)
}

#[cfg(test)]
mod tests {
    use super::super::run_single_process;
    use super::*;

    const CIRCUIT: PaperCircuit = PaperCircuit::AesCore;
    const SCALE: f64 = 0.002;
    const SEED: u64 = 0xC0FFEE;

    fn args(shard: u32, shards: usize) -> WorkerArgs {
        WorkerArgs {
            circuit: CIRCUIT,
            scale_bits: SCALE.to_bits(),
            seed: SEED,
            shards,
            max_tasks_per_shard: 0,
            shard,
            attempt: 0,
            beat_every: 8,
            beat_interval_micros: 0,
            die_after: None,
            exit_after: None,
            stall_after: None,
        }
    }

    /// Drive every shard's worker protocol in-process, playing the
    /// supervisor by hand, and check the assembled result against the
    /// single-process oracle bit for bit.
    #[test]
    fn workers_reassemble_the_oracle_bit_for_bit() {
        let shards = 3;
        let mut timer = build_timer(CIRCUIT, SCALE, SEED);
        let update = timer.update_timing();
        let (quotient, plan) = plan_shards(&update, shards, 0).expect("plan");

        // Shard ids are topological, so id order is a valid schedule.
        for s in 0..plan.num_shards() as u32 {
            let tasks = shard_tasks(&quotient, &plan, s);
            let writes = ValueSet::writes_of(&update, &tasks);
            let needed = ValueSet::reads_of(&update, &tasks).minus(&writes);
            let boundary = BoundaryValues::export(update.data(), needed);

            let mut inbox = Vec::new();
            Frame::Boundary(boundary)
                .write_to(&mut inbox)
                .expect("frame");
            let mut outbox = Vec::new();
            run_worker_io(
                &args(s, shards),
                &mut std::io::Cursor::new(inbox),
                &mut outbox,
            )
            .expect("worker");

            // Hello, heartbeats, then the delta we apply to the master.
            let mut cursor = std::io::Cursor::new(outbox);
            let hello = Frame::read_from(&mut cursor).expect("hello");
            let Frame::Hello { fingerprint, .. } = hello else {
                panic!("expected Hello, got {hello:?}");
            };
            assert_eq!(fingerprint, run_fingerprint(update.tdg(), &plan));
            let mut saw_done = false;
            loop {
                match Frame::read_from(&mut cursor) {
                    Ok(Frame::Heartbeat { .. }) => {}
                    Ok(Frame::Delta(delta)) => {
                        assert_eq!(delta.set, writes);
                        delta.apply(update.data());
                    }
                    Ok(Frame::Done { tasks: n, .. }) => {
                        assert_eq!(n, tasks.len() as u64);
                        saw_done = true;
                    }
                    Ok(other) => panic!("unexpected frame {other:?}"),
                    Err(super::super::wire::WireError::Eof) => break,
                    Err(e) => panic!("wire error: {e}"),
                }
            }
            assert!(saw_done, "worker must report completion");
        }

        drop(update);
        let oracle = run_single_process(CIRCUIT, SCALE, SEED);
        assert_eq!(timer.snapshot(), oracle.snapshot, "bit-identical");
    }

    #[test]
    fn a_wrong_boundary_is_a_protocol_error() {
        let shards = 2;
        let mut timer = build_timer(CIRCUIT, SCALE, SEED);
        let update = timer.update_timing();
        let (_, plan) = plan_shards(&update, shards, 0).expect("plan");
        assert!(plan.num_shards() >= 2, "test needs a real split");

        // Send shard 1 an empty boundary: its read set is not empty (it
        // depends on shard 0), so the worker must refuse to run.
        let empty = BoundaryValues::export(update.data(), ValueSet::default());
        let mut inbox = Vec::new();
        Frame::Boundary(empty).write_to(&mut inbox).expect("frame");
        let mut outbox = Vec::new();
        let err = run_worker_io(
            &args(1, shards),
            &mut std::io::Cursor::new(inbox),
            &mut outbox,
        )
        .expect_err("empty boundary must be rejected");
        assert!(matches!(err, ShardError::Protocol(_)), "got {err:?}");
    }

    #[test]
    fn out_of_range_shards_are_rejected() {
        let mut outbox = Vec::new();
        let err = run_worker_io(
            &args(99, 2),
            &mut std::io::Cursor::new(Vec::new()),
            &mut outbox,
        )
        .expect_err("shard 99 of 2 must fail");
        assert!(matches!(err, ShardError::Protocol(_)), "got {err:?}");
    }
}
