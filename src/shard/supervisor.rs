//! The shard supervisor: parent-process orchestration of kill-tolerant
//! worker processes.
//!
//! [`run_sharded`] owns the master [`Timer`](crate::sta::Timer) state and
//! dispatches shards to `gpasta shard-worker` children in the shard
//! graph's topological order (shard ids), at most `max_workers` at once.
//! Per child it streams the boundary inputs down stdin and collects
//! `Hello`/`Heartbeat`/`Delta`/`Done` frames from stdout via a reader
//! thread feeding one mpsc event loop; every event is tagged
//! `(shard, attempt)` so stragglers from a killed attempt are discarded.
//!
//! Failure handling is crash-only, at shard granularity:
//!
//! * a child that dies (SIGKILL, panic, nonzero exit — observed as a
//!   closed pipe without `Done`) or goes silent past the heartbeat stall
//!   window is killed, reaped, and respawned with bounded retry/backoff;
//! * a shard that exhausts its retries is *poisoned* and its forward
//!   closure in the shard graph drains as *unfinished* — exactly the
//!   salvage semantics of the in-process recovering executor, one level
//!   up;
//! * at the end, the supervisor *heals* poisoned/unfinished shards by
//!   executing their tasks in-process (shard-id order is topological), so
//!   the final report is bit-identical to the single-process oracle no
//!   matter what was killed;
//! * after every shard completion the supervisor can persist a
//!   [`ShardCheckpoint`], and a *new* supervisor — even one with a
//!   different shard count — resumes from it, re-running only partially
//!   covered shards (idempotent: re-execution is bit-identical).

use std::collections::HashMap;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use super::wire::{Frame, WireError};
use super::{
    build_timer, fault_point, plan_shards, run_fingerprint, shard_tasks, ShardCheckpoint,
    ShardError, ShardRunConfig, ShardRunOutcome,
};
use crate::core::forward_closure;
use crate::sched::{FaultKind, HeartbeatMonitor};
use crate::sta::{BoundaryValues, TimingUpdateTdg, ValueSet};
use crate::tdg::{ShardPlan, TaskId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Not all shard-graph predecessors have completed.
    Waiting,
    /// Dispatchable (a pending retry may gate it behind a backoff).
    Ready,
    /// A worker process is serving it.
    Running,
    /// Its delta is applied to the master state.
    Completed,
    /// Retries exhausted.
    Poisoned,
    /// Drained: a poisoned shard sits upstream.
    Unfinished,
}

/// What the reader thread distils a child's stdout into.
enum Event {
    Frame(Frame),
    /// The pipe closed: `None` cleanly (after `Done`), `Some` with the
    /// wire error a crash or corruption produced.
    Closed(Option<WireError>),
}

struct Running {
    child: Child,
    attempt: u32,
    /// Stashed on `Delta`, applied on `Done`.
    delta: Option<BoundaryValues>,
    /// The shard's write set, for validating the delta.
    writes: ValueSet,
}

struct Supervisor<'a, 'b> {
    cfg: &'a ShardRunConfig,
    update: &'a TimingUpdateTdg<'b>,
    plan: &'a ShardPlan,
    /// Per-shard task lists in execution order.
    tasks: &'a [Vec<u32>],
    fingerprint: u64,
    state: Vec<State>,
    deps_left: Vec<u32>,
    /// Worker attempts started per shard.
    attempts: Vec<u32>,
    retry_at: Vec<Option<Instant>>,
    running: HashMap<u32, Running>,
    monitor: HeartbeatMonitor,
    tx: Sender<(u32, u32, Event)>,
    rx: Receiver<(u32, u32, Event)>,
    max_workers: usize,
    respawns: u64,
    worker_exec_nanos: u64,
    /// Shards completed by workers this run (excludes checkpoint-restored
    /// ones) — the `kill_after_shards` counter.
    completed_new: u32,
    killed: bool,
}

impl Supervisor<'_, '_> {
    fn num_shards(&self) -> usize {
        self.state.len()
    }

    fn all_settled(&self) -> bool {
        self.state
            .iter()
            .all(|s| matches!(s, State::Completed | State::Poisoned | State::Unfinished))
    }

    /// Spawn workers for every dispatchable shard, in shard-id
    /// (topological) order, up to the worker cap.
    fn dispatch(&mut self, now: Instant) -> Result<(), ShardError> {
        for s in 0..self.num_shards() as u32 {
            if self.running.len() >= self.max_workers {
                break;
            }
            if self.state[s as usize] != State::Ready {
                continue;
            }
            if let Some(at) = self.retry_at[s as usize] {
                if now < at {
                    continue;
                }
            }
            self.retry_at[s as usize] = None;
            self.spawn(s, now)?;
        }
        Ok(())
    }

    fn spawn(&mut self, shard: u32, now: Instant) -> Result<(), ShardError> {
        let attempt = self.attempts[shard as usize];
        self.attempts[shard as usize] += 1;
        if attempt > 0 {
            self.respawns += 1;
        }
        let tasks = &self.tasks[shard as usize];
        let writes = ValueSet::writes_of(self.update, tasks);
        let needed = ValueSet::reads_of(self.update, tasks).minus(&writes);
        let boundary = BoundaryValues::export(self.update.data(), needed);

        let cfg = self.cfg;
        let mut cmd = Command::new(&cfg.worker_exe);
        cmd.arg("shard-worker")
            .arg("--circuit")
            .arg(cfg.circuit.name())
            .arg("--scale-bits")
            .arg(cfg.scale.to_bits().to_string())
            .arg("--seed")
            .arg(cfg.seed.to_string())
            .arg("--shards")
            .arg(cfg.shards.to_string())
            .arg("--max-shard-tasks")
            .arg(cfg.max_tasks_per_shard.to_string())
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--attempt")
            .arg(attempt.to_string())
            .arg("--beat-every")
            .arg(1.max(tasks.len() / 64).to_string())
            // Beats throttled to an eighth of the stall deadline: dense
            // enough that the watchdog never false-fires, sparse enough
            // that frame wakeups don't preempt the task loop on small
            // machines.
            .arg("--beat-interval-micros")
            .arg(1.max(cfg.stall_after.as_micros() / 8).to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if let Some(kind) = cfg.faults.fault_at(shard, attempt) {
            let point = fault_point(cfg.chaos_seed, shard, attempt, tasks.len() as u64);
            let flag = match kind {
                FaultKind::Panic | FaultKind::WrongResult => "--die-after",
                FaultKind::Transient => "--exit-after",
                FaultKind::Delay { .. } => "--stall-after",
            };
            cmd.arg(flag).arg(point.to_string());
        }
        let mut child = cmd.spawn().map_err(|source| ShardError::Io {
            op: "spawn shard worker",
            source,
        })?;

        // Dedicated writer: a boundary larger than the pipe buffer must
        // not block the event loop (the child reads it only after its
        // own rebuild). Closing stdin afterwards is the end-of-input.
        let stdin = child.stdin.take().expect("stdin was piped");
        std::thread::spawn(move || {
            let mut w = stdin;
            let _ = Frame::Boundary(boundary).write_to(&mut w);
        });

        // Dedicated reader: frames become events; a closed pipe is the
        // death notification for everything short of `Done`.
        let stdout = child.stdout.take().expect("stdout was piped");
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            let mut r = stdout;
            loop {
                match Frame::read_from(&mut r) {
                    Ok(f) => {
                        if tx.send((shard, attempt, Event::Frame(f))).is_err() {
                            return;
                        }
                    }
                    Err(WireError::Eof) => {
                        let _ = tx.send((shard, attempt, Event::Closed(None)));
                        return;
                    }
                    Err(e) => {
                        let _ = tx.send((shard, attempt, Event::Closed(Some(e))));
                        return;
                    }
                }
            }
        });

        self.running.insert(
            shard,
            Running {
                child,
                attempt,
                delta: None,
                writes,
            },
        );
        self.monitor.start(shard, now);
        self.state[shard as usize] = State::Running;
        Ok(())
    }

    /// Whether `(shard, attempt)` identifies the currently running
    /// worker (stale events from killed attempts are discarded).
    fn is_current(&self, shard: u32, attempt: u32) -> bool {
        self.state[shard as usize] == State::Running
            && self
                .running
                .get(&shard)
                .is_some_and(|r| r.attempt == attempt)
    }

    fn handle(
        &mut self,
        shard: u32,
        attempt: u32,
        ev: Event,
        now: Instant,
    ) -> Result<(), ShardError> {
        if !self.is_current(shard, attempt) {
            return Ok(());
        }
        match ev {
            Event::Frame(Frame::Hello {
                fingerprint,
                num_shards,
                ..
            }) => {
                if fingerprint != self.fingerprint || num_shards as usize != self.num_shards() {
                    // A deterministic-rebuild disagreement can never
                    // succeed on retry; fail the whole run loudly.
                    self.shutdown();
                    return Err(ShardError::Protocol(format!(
                        "worker for shard {shard} rebuilt a different plan \
                         (fingerprint {fingerprint:#018x} vs {:#018x})",
                        self.fingerprint
                    )));
                }
                self.monitor.beat(shard, now);
            }
            Event::Frame(Frame::Heartbeat { .. }) => self.monitor.beat(shard, now),
            Event::Frame(Frame::Delta(delta)) => {
                let r = self.running.get_mut(&shard).expect("is_current");
                if delta.set == r.writes {
                    r.delta = Some(delta);
                    self.monitor.beat(shard, now);
                } else {
                    self.fail_attempt(shard, now, "sent a delta for the wrong cell set");
                }
            }
            Event::Frame(Frame::Done { exec_nanos, .. }) => {
                let r = self.running.get_mut(&shard).expect("is_current");
                if r.delta.is_some() {
                    self.complete(shard, exec_nanos)?;
                } else {
                    self.fail_attempt(shard, now, "reported done without a delta");
                }
            }
            Event::Frame(other) => {
                let what = match other {
                    Frame::Boundary(_) => "a boundary frame",
                    _ => "an unexpected frame",
                };
                let why = format!("sent {what} upstream");
                self.fail_attempt(shard, now, &why);
            }
            Event::Closed(err) => {
                // Death before `Done`: SIGKILL, panic, nonzero exit, or a
                // corrupt tail — all the same symptom, all retried.
                let why = match err {
                    Some(e) => format!("pipe closed before done: {e}"),
                    None => "pipe closed before done".to_string(),
                };
                self.fail_attempt(shard, now, &why);
            }
        }
        Ok(())
    }

    /// Reap the worker and either schedule a respawn (with backoff) or
    /// poison the shard and drain its forward closure.
    fn fail_attempt(&mut self, shard: u32, now: Instant, why: &str) {
        let mut r = self.running.remove(&shard).expect("running");
        let _ = r.child.kill();
        let _ = r.child.wait();
        self.monitor.stop(shard);
        let attempt = r.attempt;
        if self.attempts[shard as usize] > self.cfg.retry.max_retries {
            eprintln!(
                "gpasta shard: shard {shard} attempt {attempt} failed ({why}); retries exhausted, poisoning"
            );
            self.poison(shard);
        } else {
            eprintln!("gpasta shard: shard {shard} attempt {attempt} failed ({why}); respawning");
            self.state[shard as usize] = State::Ready;
            self.retry_at[shard as usize] = Some(now + self.cfg.retry.backoff(attempt));
        }
    }

    fn poison(&mut self, shard: u32) {
        self.state[shard as usize] = State::Poisoned;
        for t in forward_closure(self.plan.graph(), &[shard]) {
            if t == shard {
                continue;
            }
            debug_assert_eq!(
                self.state[t as usize],
                State::Waiting,
                "a descendant of an incomplete shard cannot have started"
            );
            self.state[t as usize] = State::Unfinished;
        }
    }

    fn complete(&mut self, shard: u32, exec_nanos: u64) -> Result<(), ShardError> {
        let mut r = self.running.remove(&shard).expect("running");
        let delta = r.delta.take().expect("checked by caller");
        delta.apply(self.update.data());
        let _ = r.child.wait();
        self.monitor.stop(shard);
        self.state[shard as usize] = State::Completed;
        self.worker_exec_nanos += exec_nanos;
        self.completed_new += 1;
        for &succ in self.plan.graph().successors(TaskId(shard)) {
            let d = &mut self.deps_left[succ as usize];
            *d -= 1;
            if *d == 0 && self.state[succ as usize] == State::Waiting {
                self.state[succ as usize] = State::Ready;
            }
        }
        if let Some(path) = &self.cfg.checkpoint_to {
            self.checkpoint().write_to_path(path)?;
        }
        if self.cfg.kill_after_shards == Some(self.completed_new) {
            // Simulate the supervisor's own death: abandon everything
            // that is still running and stop without healing.
            self.shutdown();
            self.killed = true;
        }
        Ok(())
    }

    fn checkpoint(&self) -> ShardCheckpoint {
        let mut completed: Vec<u32> = (0..self.num_shards() as u32)
            .filter(|&s| self.state[s as usize] == State::Completed)
            .flat_map(|s| self.plan.members(s).iter().copied())
            .collect();
        completed.sort_unstable();
        ShardCheckpoint {
            circuit: self.cfg.circuit.name().to_string(),
            scale_bits: self.cfg.scale.to_bits(),
            seed: self.cfg.seed,
            tdg_fingerprint: self.update.tdg().fingerprint(),
            completed_partitions: completed,
            snapshot: self.update.data().snapshot(),
        }
    }

    /// Kill and reap every running worker.
    fn shutdown(&mut self) {
        for (&s, _) in self.running.iter() {
            self.monitor.stop(s);
        }
        for (_, mut r) in self.running.drain() {
            let _ = r.child.kill();
            let _ = r.child.wait();
        }
    }

    fn event_loop(&mut self) -> Result<(), ShardError> {
        loop {
            if self.killed || (self.all_settled() && self.running.is_empty()) {
                return Ok(());
            }
            let now = Instant::now();
            for s in self.monitor.stalled(now) {
                self.fail_attempt(s, now, "heartbeat stall (hung worker)");
            }
            self.dispatch(now)?;
            let mut timeout = Duration::from_millis(100);
            if let Some(d) = self.monitor.next_deadline(now) {
                timeout = timeout.min(d);
            }
            for at in self.retry_at.iter().flatten() {
                timeout = timeout.min(at.saturating_duration_since(now));
            }
            let timeout = timeout.max(Duration::from_millis(1));
            match self.rx.recv_timeout(timeout) {
                Ok((shard, attempt, ev)) => {
                    let now = Instant::now();
                    self.handle(shard, attempt, ev, now)?;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("the supervisor keeps a sender alive")
                }
            }
        }
    }
}

/// Execute one full timing update across `cfg.shards` worker processes
/// and report the result (see the module docs for the failure model).
///
/// # Errors
///
/// [`ShardError`] when planning fails, a worker cannot be spawned, a
/// worker's rebuild disagrees with the supervisor's, or a checkpoint
/// cannot be written/read. Worker *deaths* are not errors — they are
/// retried, then poisoned and healed.
pub fn run_sharded(cfg: &ShardRunConfig) -> Result<ShardRunOutcome, ShardError> {
    let mut timer = build_timer(cfg.circuit, cfg.scale, cfg.seed);
    let resume = match &cfg.resume_from {
        Some(p) => Some(ShardCheckpoint::read_from_path(p)?),
        None => None,
    };
    if let Some(ck) = &resume {
        if ck.circuit != cfg.circuit.name() {
            return Err(ShardError::Checkpoint(format!(
                "checkpoint is for circuit {} (run is {})",
                ck.circuit,
                cfg.circuit.name()
            )));
        }
        if ck.scale_bits != cfg.scale.to_bits() || ck.seed != cfg.seed {
            return Err(ShardError::Checkpoint(
                "checkpoint scale/seed disagree with the run".into(),
            ));
        }
        timer.restore_snapshot(&ck.snapshot)?;
        // The snapshot cleared the dirty set; re-dirty everything so the
        // update TDG covers the full design again (idempotent re-runs of
        // partially covered shards are what make resume correct).
        timer.invalidate_all();
    }
    let update = timer.update_timing();
    if let Some(ck) = &resume {
        if ck.tdg_fingerprint != update.tdg().fingerprint() {
            return Err(ShardError::Checkpoint(
                "checkpoint TDG fingerprint disagrees with the rebuilt design".into(),
            ));
        }
    }
    let (quotient, plan) = plan_shards(&update, cfg.shards, cfg.max_tasks_per_shard)?;
    let k = plan.num_shards();
    let tasks: Vec<Vec<u32>> = (0..k as u32)
        .map(|s| shard_tasks(&quotient, &plan, s))
        .collect();

    let mut deps_left: Vec<u32> = (0..k)
        .map(|s| plan.graph().predecessors(TaskId(s as u32)).len() as u32)
        .collect();
    let mut state = vec![State::Waiting; k];
    // Shards fully covered by the checkpoint are already complete: their
    // values were restored with the snapshot. Partially covered shards
    // re-run from scratch.
    if let Some(ck) = &resume {
        let done: std::collections::HashSet<u32> =
            ck.completed_partitions.iter().copied().collect();
        for s in 0..k as u32 {
            let members = plan.members(s);
            if !members.is_empty() && members.iter().all(|p| done.contains(p)) {
                state[s as usize] = State::Completed;
                for &succ in plan.graph().successors(TaskId(s)) {
                    deps_left[succ as usize] -= 1;
                }
            }
        }
    }
    for s in 0..k {
        if state[s] == State::Waiting && deps_left[s] == 0 {
            state[s] = State::Ready;
        }
    }

    let (tx, rx) = mpsc::channel();
    let mut sup = Supervisor {
        cfg,
        update: &update,
        plan: &plan,
        tasks: &tasks,
        fingerprint: run_fingerprint(update.tdg(), &plan),
        state,
        deps_left,
        attempts: vec![0; k],
        retry_at: vec![None; k],
        running: HashMap::new(),
        monitor: HeartbeatMonitor::new(k, cfg.stall_after),
        tx,
        rx,
        max_workers: if cfg.max_workers == 0 {
            k
        } else {
            cfg.max_workers.max(1)
        },
        respawns: 0,
        worker_exec_nanos: 0,
        completed_new: 0,
        killed: false,
    };
    let result = sup.event_loop();
    if result.is_err() {
        sup.shutdown();
    }
    result?;

    // Heal: execute every non-completed shard's tasks in-process, in
    // shard-id (topological) order — bit-identical to what a healthy
    // worker would have computed. Without healing, mark the stale cone
    // unknown so nobody mistakes it for a result.
    let mut healed_tasks = 0u64;
    if !sup.killed {
        for (s, shard_tasks) in tasks.iter().enumerate().take(k) {
            if sup.state[s] == State::Completed {
                continue;
            }
            if cfg.heal {
                for &t in shard_tasks {
                    update.execute_task(TaskId(t));
                }
                healed_tasks += shard_tasks.len() as u64;
            } else {
                for &t in shard_tasks {
                    let v = update.node(TaskId(t));
                    match update.kind(TaskId(t)) {
                        crate::sta::TaskKind::Fprop => update.data().mark_arrival_unknown(v),
                        crate::sta::TaskKind::Bprop => update.data().mark_required_unknown(v),
                    }
                }
            }
        }
    }

    let mut salvaged = Vec::new();
    let mut poisoned = Vec::new();
    let mut unfinished = Vec::new();
    for s in 0..k as u32 {
        match sup.state[s as usize] {
            State::Completed => salvaged.push(s),
            State::Poisoned => poisoned.push(s),
            State::Unfinished => unfinished.push(s),
            // Only reachable when `kill_after_shards` stopped the run.
            _ => unfinished.push(s),
        }
    }
    let mut completed_partitions: Vec<u32> = salvaged
        .iter()
        .flat_map(|&s| plan.members(s).iter().copied())
        .collect();
    completed_partitions.sort_unstable();

    let outcome_attempts = sup.attempts.clone();
    let respawns = sup.respawns;
    let worker_exec_nanos = sup.worker_exec_nanos;
    let killed = sup.killed;
    drop(sup);
    drop(update);
    let report = timer.report(1);
    Ok(ShardRunOutcome {
        wns_bits: report.wns_ps.to_bits(),
        tns_bits: report.tns_ps.to_bits(),
        num_shards: k,
        edge_cut: plan.edge_cut(),
        salvaged,
        poisoned,
        unfinished,
        attempts: outcome_attempts,
        respawns,
        healed_tasks,
        worker_exec_nanos,
        killed,
        completed_partitions,
        snapshot: cfg.capture_snapshot.then(|| timer.snapshot()),
    })
}
