//! `gpasta` — command-line TDG partitioner.
//!
//! Reads a task dependency graph from an edge-list file (one `from to`
//! pair per line, `#` comments allowed, task ids dense from 0), partitions
//! it with the chosen algorithm, validates the result, and prints
//! statistics — optionally emitting the assignment as CSV or the
//! partitioned graph as Graphviz DOT.
//!
//! ```text
//! gpasta partition edges.txt --algo gpasta --ps 16 --dot out.dot
//! gpasta sanitize edges.txt --algo gpasta --workers 1,2,4
//! gpasta stats edges.txt
//! gpasta serve --addr 127.0.0.1:9480 --spool /tmp/spool
//! gpasta demo
//! ```
//!
//! Every subcommand funnels into [`gpasta::errors::Error`]: usage
//! errors print the banner and exit 2, runtime failures exit 1.

use gpasta::core::sanitize::{audit_host_partitioner, audit_incremental_repair, audit_partitioner};
use gpasta::core::{
    forward_closure, DeterGPasta, GPasta, Gdca, IncrementalPartitioner, Partitioner,
    PartitionerOptions, Sarkar, SeqGPasta,
};
use gpasta::errors::{CliError, Error};
use gpasta::sched::{Executor, FaultKind, FaultPlan, FaultyWork, RetryPolicy, RunBudget};
use gpasta::serve::ServeConfig;
use gpasta::session::{DesignSources, Edit, Session};
use gpasta::tdg::{
    partition_to_dot, validate, ParallelismProfile, QuotientTdg, TaskId, Tdg, TdgBuilder,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  gpasta partition <edges-file> [--algo gpasta|deter|seq|gdca|sarkar]
                                [--ps <n>] [--dot <file>] [--csv <file>]
                                [--incremental]
  gpasta sanitize <edges-file>  [--algo gpasta|deter|seq|gdca|sarkar|incremental|recovery|all]
                                [--ps <n>] [--workers <w1,w2,..>] [--runs <n>]
  gpasta stats <edges-file>
  gpasta sta <netlist.v> [--lib <file.lib>] [--sdc <file.sdc>]\n                         [--clock <ps>] [--paths <k>]\n                         [--repower <gate>=<drive> ..] [--bits]
  gpasta faults <edges-file>    [--algo gpasta|deter|seq|gdca|sarkar] [--ps <n>]
                                [--workers <n>] [--seed <n>] [--rate <f>]
                                [--retries <n>]
  gpasta update --circuit <name> [--scale <f>] [--iters <n>] [--workers <n>]
                                [--seed <n>] [--checkpoint <file>]
                                [--resume <file>] [--kill-after <i>]
                                [--deadline-ms <n>]
  gpasta shard --circuit <name> [--scale <f>] [--shards <k>] [--workers <n>]
               [--seed <n>] [--retries <n>] [--stall-ms <n>]
               [--kill <shard:attempt[:kind]> ..]
               [--chaos-seed <n>] [--chaos-rate <f>]
               [--checkpoint <file>] [--resume <file>]
               [--kill-after-shards <n>] [--no-heal]
               [--max-shard-tasks <n>] [--bits]
  gpasta serve [--addr <host:port>] [--stdio] [--spool <dir>]
               [--workers <n>] [--max-sessions <n>]
               [--checkpoint-ms <n>] [--max-inflight <n>]
               [--max-connections <n>] [--read-timeout-ms <n>]
               [--keep-alive-requests <n>] [--idle-timeout-ms <n>]
               [--crash-window-ms <n>] [--max-crashes <n>]
               [--chaos-seed <n>] [--chaos-rate <f>] [--chaos-kinds <k,..>]
               [--chaos-inject <name:update:attempt:kind> ..]
  gpasta demo

edge-list format: one `from to` pair of task ids per line; `#` comments
and blank lines are ignored; task count is 1 + the largest id. Netlists
use the structural-Verilog subset produced by gpasta::sta::write_verilog;
libraries use the Liberty subset of gpasta::sta::write_liberty.
`serve` hosts warm timing sessions over HTTP/JSON (or JSON-RPC on stdio);
see DESIGN.md section 12 for the wire schema.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.is_usage() {
                eprintln!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), Error> {
    match args.first().map(String::as_str) {
        Some("partition") => partition_cmd(&args[1..]),
        Some("sanitize") => sanitize_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        Some("sta") => sta_cmd(&args[1..]),
        Some("faults") => faults_cmd(&args[1..]),
        Some("update") => update_cmd(&args[1..]),
        Some("shard") => shard_cmd(&args[1..]),
        // Hidden: the child-process half of `gpasta shard`.
        Some("shard-worker") => shard_worker_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("demo") => demo_cmd(),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try --help").into()),
    }
}

/// The flag's value, or a typed usage error.
fn need(flag: &'static str, value: Option<&String>) -> Result<String, Error> {
    value
        .cloned()
        .ok_or_else(|| CliError::MissingValue(flag).into())
}

/// Parse the flag's value, or a typed usage error naming flag and value.
fn parse<T>(flag: &'static str, value: Option<&String>) -> Result<T, Error>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let raw = need(flag, value)?;
    raw.parse().map_err(|e: T::Err| {
        CliError::BadValue {
            flag,
            value: raw.clone(),
            why: e.to_string(),
        }
        .into()
    })
}

fn unexpected(arg: &str) -> Error {
    CliError::UnknownFlag(arg.to_string()).into()
}

fn load_edges(path: &Path) -> Result<Tdg, Error> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(gpasta::tdg::parse_edge_list(&text).map_err(|e| e.to_string())?)
}

fn pick_algo(name: &str) -> Result<Box<dyn Partitioner>, Error> {
    Ok(match name {
        "gpasta" => Box::new(GPasta::new()),
        "deter" => Box::new(DeterGPasta::new()),
        "seq" => Box::new(SeqGPasta::new()),
        "gdca" => Box::new(Gdca::new()),
        "sarkar" => Box::new(Sarkar::new()),
        other => return Err(format!("unknown algorithm `{other}`").into()),
    })
}

fn partition_cmd(args: &[String]) -> Result<(), Error> {
    let mut file = None;
    let mut algo = "gpasta".to_owned();
    let mut ps = None;
    let mut dot_out = None;
    let mut csv_out = None;
    let mut incremental = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = need("--algo", it.next())?,
            "--ps" => ps = Some(parse::<usize>("--ps", it.next())?),
            "--dot" => dot_out = Some(need("--dot", it.next())?),
            "--csv" => csv_out = Some(need("--csv", it.next())?),
            "--incremental" => incremental = true,
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(unexpected(other)),
        }
    }
    let file = file.ok_or_else(|| Error::from("missing <edges-file>".to_string()))?;
    let tdg = load_edges(Path::new(&file))?;
    let partitioner = pick_algo(&algo)?;
    let opts = match ps {
        Some(n) => PartitionerOptions::with_max_size(n),
        None => PartitionerOptions::default(),
    };
    if incremental {
        return incremental_demo(&tdg, partitioner, &opts);
    }

    let t0 = std::time::Instant::now();
    let partition = partitioner
        .partition(&tdg, &opts)
        .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    validate::check_all(&tdg, &partition).map_err(|e| format!("internal error: {e}"))?;

    println!(
        "{}: {} tasks, {} deps -> {}",
        partitioner.name(),
        tdg.num_tasks(),
        tdg.num_deps(),
        partition.stats(&tdg)
    );
    println!(
        "partitioned in {:.3} ms; result validated (acyclic, convex)",
        elapsed.as_secs_f64() * 1e3
    );

    if let Some(path) = csv_out {
        let mut out = String::from("task,partition\n");
        for (t, &p) in partition.assignment().iter().enumerate() {
            out.push_str(&format!("{t},{p}\n"));
        }
        std::fs::write(&path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = dot_out {
        std::fs::write(&path, partition_to_dot(&tdg, &partition))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The `partition --incremental` demo: install the cache once, then
/// repair the forward cone of a mid-graph task and compare the repair
/// cost against the cold install.
fn incremental_demo(
    tdg: &Tdg,
    partitioner: Box<dyn Partitioner>,
    opts: &PartitionerOptions,
) -> Result<(), Error> {
    if tdg.num_tasks() == 0 {
        return Err("--incremental needs a non-empty graph".to_string().into());
    }
    let name = partitioner.name();
    let mut inc = IncrementalPartitioner::new(partitioner);
    let t0 = std::time::Instant::now();
    inc.install(tdg, opts).map_err(|e| e.to_string())?;
    let install = t0.elapsed();

    let seed = (tdg.num_tasks() / 2) as u32;
    let dirty = forward_closure(tdg, &[seed]);
    let t0 = std::time::Instant::now();
    let stats = inc.repair(&dirty).map_err(|e| e.to_string())?;
    let repair = t0.elapsed();

    let partition = inc
        .full_partition()
        .map_err(|e| format!("incremental cache unusable after repair: {e}"))?;
    validate::check_all(tdg, &partition).map_err(|e| format!("internal error: {e}"))?;

    println!(
        "incremental({name}): {} tasks, {} deps -> {}",
        tdg.num_tasks(),
        tdg.num_deps(),
        partition.stats(tdg)
    );
    println!(
        "install (cold {name}): {:.3} ms; repair of task {seed}'s forward cone \
         ({} dirty): {:.3} ms",
        install.as_secs_f64() * 1e3,
        stats.num_dirty,
        repair.as_secs_f64() * 1e3
    );
    println!(
        "repair moved {} task(s), allocated {} fresh partition(s), epoch {}; \
         result validated (acyclic, convex)",
        stats.moved, stats.fresh_partitions, stats.epoch
    );
    Ok(())
}

fn sanitize_cmd(args: &[String]) -> Result<(), Error> {
    let mut file = None;
    let mut algo = "all".to_owned();
    let mut ps = None;
    let mut workers = vec![1usize, 2, 4];
    let mut runs = 2usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = need("--algo", it.next())?,
            "--ps" => ps = Some(parse::<usize>("--ps", it.next())?),
            "--workers" => {
                let raw = need("--workers", it.next())?;
                workers = raw
                    .split(',')
                    .map(|w| {
                        w.trim().parse::<usize>().map_err(|e| {
                            Error::from(CliError::BadValue {
                                flag: "--workers",
                                value: raw.clone(),
                                why: e.to_string(),
                            })
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if workers.is_empty() || workers.contains(&0) {
                    return Err(CliError::NonPositive("--workers").into());
                }
            }
            "--runs" => {
                runs = parse::<usize>("--runs", it.next())?;
                if runs == 0 {
                    return Err(CliError::NonPositive("--runs").into());
                }
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(unexpected(other)),
        }
    }
    let file = file.ok_or_else(|| Error::from("missing <edges-file>".to_string()))?;
    let tdg = load_edges(Path::new(&file))?;
    let opts = match ps {
        Some(n) => PartitionerOptions::with_max_size(n),
        None => PartitionerOptions::default(),
    };
    let algos: Vec<&str> = if algo == "all" {
        vec![
            "gpasta",
            "deter",
            "seq",
            "gdca",
            "sarkar",
            "incremental",
            "recovery",
        ]
    } else {
        vec![algo.as_str()]
    };
    if let Some(bad) = algos.iter().find(|a| {
        !matches!(
            **a,
            "gpasta" | "deter" | "seq" | "gdca" | "sarkar" | "incremental" | "recovery"
        )
    }) {
        return Err(format!("unknown algorithm `{bad}`").into());
    }
    println!(
        "sanitizing {} tasks, {} deps under workers {workers:?} x {} schedule(s) x {runs} run(s)\n",
        tdg.num_tasks(),
        tdg.num_deps(),
        gpasta::gpu::Schedule::ALL.len(),
    );
    for name in algos {
        let outcome = match name {
            "gpasta" => audit_partitioner(GPasta::with_device, &tdg, &opts, &workers, runs),
            "deter" => audit_partitioner(DeterGPasta::with_device, &tdg, &opts, &workers, runs),
            "seq" => audit_host_partitioner(&SeqGPasta::new(), &tdg, &opts, &workers, runs),
            "gdca" => audit_host_partitioner(&Gdca::new(), &tdg, &opts, &workers, runs),
            "sarkar" => audit_host_partitioner(&Sarkar::new(), &tdg, &opts, &workers, runs),
            // The incremental repair path, backed by the deterministic
            // partitioner so any nondeterminism is the repair's own.
            "incremental" => {
                let dirty = if tdg.num_tasks() == 0 {
                    Vec::new()
                } else {
                    forward_closure(&tdg, &[(tdg.num_tasks() / 2) as u32])
                };
                audit_incremental_repair(
                    DeterGPasta::with_device,
                    &tdg,
                    &opts,
                    &dirty,
                    &workers,
                    runs,
                )
            }
            // Fault recovery under a fixed plan: same seed + same worker
            // count must yield the identical salvage/poison sets.
            "recovery" => audit_recovery(&tdg, &opts, &workers, runs)?,
            other => unreachable!("algorithm `{other}` validated above"),
        };
        println!("{name:<12} {outcome}");
    }
    Ok(())
}

/// Determinism audit of the fault-recovery path itself: partition the
/// graph once (deterministic partitioner), then replay a fixed
/// [`FaultPlan`] through `run_partitioned_recovering` under every audited
/// worker count, fingerprinting the salvage/poison sets. Recovery is
/// sound only if the fingerprint is independent of scheduling — the audit
/// must report `Deterministic`.
fn audit_recovery(
    tdg: &Tdg,
    opts: &PartitionerOptions,
    workers: &[usize],
    runs: usize,
) -> Result<gpasta::core::sanitize::AuditOutcome, Error> {
    let partition = DeterGPasta::new()
        .partition(tdg, opts)
        .map_err(|e| e.to_string())?;
    let quotient = QuotientTdg::build(tdg, &partition).map_err(|e| e.to_string())?;
    let kinds = [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
    ];
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: std::time::Duration::ZERO,
        max_backoff: std::time::Duration::ZERO,
    };
    // Injected panics are expected; keep the default hook's stderr lines
    // out of the audit output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = gpasta::gpu::audit_determinism(workers, runs, |dev| {
        let plan = FaultPlan::random(0xFA17_0001, 0.05, &kinds);
        let payload = |_t: TaskId| {};
        let work = FaultyWork::new(&payload, &plan);
        let exec = Executor::new(dev.num_threads());
        let outcome = exec.run_partitioned_recovering(&quotient, &work, &policy);
        // Fingerprint: poisoned units, poisoned tasks, then the counters.
        let mut fp = outcome.poisoned_units.clone();
        fp.push(u32::MAX);
        fp.extend_from_slice(&outcome.poisoned_tasks);
        fp.push(u32::MAX);
        fp.push(outcome.salvaged_tasks as u32);
        fp.push(outcome.retries as u32);
        fp.push(outcome.failures.len() as u32);
        fp
    });
    std::panic::set_hook(default_hook);
    Ok(outcome)
}

fn stats_cmd(args: &[String]) -> Result<(), Error> {
    let file = args
        .first()
        .ok_or_else(|| Error::from("missing <edges-file>".to_string()))?;
    let tdg = load_edges(Path::new(file))?;
    let profile = ParallelismProfile::of(&tdg);
    println!("{} tasks, {} deps", tdg.num_tasks(), tdg.num_deps());
    println!("{profile}");
    println!(
        "{} sources, {} sinks",
        tdg.sources().len(),
        tdg.sinks().len()
    );
    Ok(())
}

/// The `sta` subcommand, built on [`Session`] — the same ownership unit
/// `gpasta serve` hosts, so a CLI run and a served session follow the
/// identical code path (and the serve smoke test can compare their
/// WNS/TNS bit patterns).
fn sta_cmd(args: &[String]) -> Result<(), Error> {
    let mut file = None;
    let mut lib_file = None;
    let mut sdc_file = None;
    let mut clock_ps = 1_000.0f32;
    let mut paths = 1usize;
    let mut repowers: Vec<(String, f32)> = Vec::new();
    let mut bits = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lib" => lib_file = Some(need("--lib", it.next())?),
            "--sdc" => sdc_file = Some(need("--sdc", it.next())?),
            "--clock" => clock_ps = parse::<f32>("--clock", it.next())?,
            "--paths" => paths = parse::<usize>("--paths", it.next())?,
            "--repower" => {
                let raw = need("--repower", it.next())?;
                let parsed = raw.split_once('=').and_then(|(gate, drive)| {
                    drive
                        .parse::<f32>()
                        .ok()
                        .map(|d| (gate.trim().to_string(), d))
                });
                match parsed {
                    Some(pair) => repowers.push(pair),
                    None => {
                        return Err(CliError::BadValue {
                            flag: "--repower",
                            value: raw,
                            why: "expected <gate>=<drive>".to_string(),
                        }
                        .into())
                    }
                }
            }
            "--bits" => bits = true,
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(unexpected(other)),
        }
    }
    let file = file.ok_or_else(|| Error::from("missing <netlist.v>".to_string()))?;
    let verilog = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let read = |path: Option<String>| -> Result<Option<String>, Error> {
        match path {
            Some(p) => Ok(Some(
                std::fs::read_to_string(&p).map_err(|e| format!("cannot read {p}: {e}"))?,
            )),
            None => Ok(None),
        }
    };
    let sources = DesignSources {
        verilog,
        liberty: read(lib_file)?,
        sdc: read(sdc_file)?,
        clock_period_ps: clock_ps,
    };
    let mut session = Session::create(&file, sources, 1)?;
    let shape = session.shape();
    println!(
        "design: {} gates, {} nets, {} PIs, {} POs; clock {clock_ps} ps",
        shape.gates, shape.nets, shape.inputs, shape.outputs
    );

    for (gate, drive) in &repowers {
        session.apply_edit(&Edit::Repower {
            gate: gate.clone(),
            drive: *drive,
        })?;
    }
    if !repowers.is_empty() {
        let out = session.update_timing(&RunBudget::unbounded())?;
        println!(
            "applied {} repower edit(s); incremental update: {} task(s), \
             {} moved, epoch {}",
            repowers.len(),
            out.tasks,
            out.repair_moved,
            out.epoch
        );
    }

    let report = session.report(paths.max(1));
    print!("{report}");
    if bits {
        println!(
            "WNS bits {:08x}  TNS bits {:08x}",
            report.wns_ps.to_bits(),
            report.tns_ps.to_bits()
        );
    }
    for endpoint in report.worst.iter().take(paths) {
        if let Some(path) = gpasta::sta::trace_worst_path(
            session.timer().graph(),
            session.timer().netlist(),
            session.library(),
            session.timer().data(),
            endpoint.node,
        ) {
            println!();
            print!("{path}");
        }
    }
    Ok(())
}

/// The `faults` subcommand: partition the TDG, run it through the
/// recovering executor under a seeded fault plan, and report the salvage /
/// quarantine split — verifying on the way out that the poisoned set is
/// exactly the forward closure of the failed partitions.
fn faults_cmd(args: &[String]) -> Result<(), Error> {
    let mut file = None;
    let mut algo = "deter".to_owned();
    let mut ps = None;
    let mut workers = 2usize;
    let mut seed = 0xFA17u64;
    let mut rate = 0.02f64;
    let mut retries = 2u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = need("--algo", it.next())?,
            "--ps" => ps = Some(parse::<usize>("--ps", it.next())?),
            "--workers" => workers = parse::<usize>("--workers", it.next())?,
            "--seed" => seed = parse::<u64>("--seed", it.next())?,
            "--rate" => {
                rate = parse::<f64>("--rate", it.next())?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--rate must be within [0, 1]".to_string().into());
                }
            }
            "--retries" => retries = parse::<u32>("--retries", it.next())?,
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(unexpected(other)),
        }
    }
    let file = file.ok_or_else(|| Error::from("missing <edges-file>".to_string()))?;
    let tdg = load_edges(Path::new(&file))?;
    let exec = Executor::try_new(workers).map_err(|e| format!("--workers: {e}"))?;
    let partitioner = pick_algo(&algo)?;
    let opts = match ps {
        Some(n) => PartitionerOptions::with_max_size(n),
        None => PartitionerOptions::default(),
    };
    let partition = partitioner
        .partition(&tdg, &opts)
        .map_err(|e| e.to_string())?;
    let quotient = QuotientTdg::build(&tdg, &partition).map_err(|e| e.to_string())?;

    let kinds = [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
    ];
    let plan = FaultPlan::random(seed, rate, &kinds);
    let policy = RetryPolicy {
        max_retries: retries,
        ..RetryPolicy::default()
    };
    println!(
        "{}: {} tasks in {} partitions; injecting faults at rate {rate} (seed {seed}, \
         {retries} retr{} max) on {workers} worker(s)",
        partitioner.name(),
        tdg.num_tasks(),
        quotient.graph().num_tasks(),
        if retries == 1 { "y" } else { "ies" },
    );

    let payload = |_t: TaskId| {};
    let work = FaultyWork::new(&payload, &plan);
    // Injected panics are expected and reported below as failure records;
    // keep the default hook's per-panic stderr lines out of the output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = exec.run_partitioned_recovering(&quotient, &work, &policy);
    std::panic::set_hook(default_hook);

    println!(
        "{} fault(s) fired, {} retr(y/ies) absorbed",
        plan.fired(),
        outcome.retries
    );
    for f in &outcome.failures {
        println!(
            "  partition {} quarantined: task {} failed after {} attempt(s): {}",
            f.unit, f.task, f.attempts, f.error
        );
    }
    println!("{outcome}");

    // The quarantine contract: poisoned partitions are exactly the forward
    // closure (in the quotient graph) of the partitions that failed.
    let failed_units: Vec<u32> = outcome.failures.iter().map(|f| f.unit).collect();
    let mut expected = if failed_units.is_empty() {
        Vec::new()
    } else {
        forward_closure(quotient.graph(), &failed_units)
    };
    expected.sort_unstable();
    if expected != outcome.poisoned_units {
        return Err(format!(
            "quarantine mismatch: poisoned {:?}, expected closure {:?}",
            outcome.poisoned_units, expected
        )
        .into());
    }
    let salvage_check: usize = quotient
        .graph()
        .num_tasks()
        .saturating_sub(outcome.poisoned_units.len());
    println!(
        "quarantine verified: poisoned set is the forward closure of {} failed \
         partition(s); {} partition(s) salvaged",
        failed_units.len(),
        salvage_check,
    );
    Ok(())
}

/// The `update` command: the crash-safe incremental timing-update flow —
/// deterministic gate-repower iterations over a paper circuit with
/// per-iteration checkpointing, kill/resume, and an optional wall-clock
/// deadline (see `gpasta::checkpoint`).
fn update_cmd(args: &[String]) -> Result<(), Error> {
    use gpasta::checkpoint::{run_update_flow, UpdateFlowConfig};
    use gpasta::circuits::PaperCircuit;
    use gpasta::sched::StopCause;

    let mut circuit = None;
    let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuit" => circuit = Some(parse_circuit(&need("--circuit", it.next())?)?),
            "--scale" => {
                cfg.scale = parse::<f64>("--scale", it.next())?;
                if cfg.scale <= 0.0 {
                    return Err(CliError::NonPositive("--scale").into());
                }
            }
            "--iters" => cfg.iterations = parse::<u32>("--iters", it.next())?,
            "--workers" => {
                cfg.workers = parse::<usize>("--workers", it.next())?;
                if cfg.workers == 0 {
                    return Err(CliError::NonPositive("--workers").into());
                }
            }
            "--seed" => cfg.seed = parse::<u64>("--seed", it.next())?,
            "--checkpoint" => cfg.checkpoint_to = Some(need("--checkpoint", it.next())?.into()),
            "--resume" => cfg.resume_from = Some(need("--resume", it.next())?.into()),
            "--kill-after" => cfg.kill_after = Some(parse::<u32>("--kill-after", it.next())?),
            "--deadline-ms" => {
                cfg.deadline = Some(std::time::Duration::from_millis(parse::<u64>(
                    "--deadline-ms",
                    it.next(),
                )?))
            }
            other => return Err(unexpected(other)),
        }
    }
    cfg.circuit =
        circuit.ok_or_else(|| Error::from("update needs --circuit <name>".to_string()))?;
    if cfg.kill_after.is_some() && cfg.checkpoint_to.is_none() {
        return Err(
            "--kill-after needs --checkpoint (the resume point must be saved)"
                .to_string()
                .into(),
        );
    }

    let out = run_update_flow(&cfg)?;
    println!(
        "update({}, scale {}): {}/{} iteration(s), epoch {}, WNS {} ps, TNS {} ps",
        cfg.circuit.name(),
        cfg.scale,
        out.iterations_done,
        cfg.iterations,
        out.epoch,
        f32::from_bits(out.wns_bits),
        f32::from_bits(out.tns_bits),
    );
    match out.stop {
        StopCause::Completed => {}
        cause => println!(
            "stopped early ({cause:?}): {} endpoint(s) read unknown (NaN); \
             re-run with --resume and a fresh budget to converge",
            out.unknown_endpoints
        ),
    }
    if out.killed {
        println!(
            "killed after iteration {} (simulated crash); resume with --resume {}",
            out.iterations_done,
            cfg.checkpoint_to
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }
    Ok(())
}

/// Resolve a paper-circuit name, listing the choices on a miss.
fn parse_circuit(name: &str) -> Result<gpasta::circuits::PaperCircuit, Error> {
    use gpasta::circuits::PaperCircuit;
    PaperCircuit::all()
        .iter()
        .copied()
        .find(|c| c.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown circuit `{name}` (choose from {})",
                PaperCircuit::all()
                    .iter()
                    .map(|c| c.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
            .into()
        })
}

/// The `shard` subcommand: one full timing update executed across K
/// worker processes under a kill-tolerant supervisor (see
/// `gpasta::shard`). `--kill` and the chaos knobs inject worker deaths;
/// the run still ends bit-identical to a single-process run because the
/// supervisor respawns, quarantines, and heals.
fn shard_cmd(args: &[String]) -> Result<(), Error> {
    use gpasta::shard::{run_sharded, ShardRunConfig};

    let mut circuit = None;
    let mut scale = 1.0f64;
    let mut seed = 0x5EEDu64;
    let mut shards = 4usize;
    let mut workers = 0usize;
    let mut retries = 3u32;
    let mut stall_ms = 10_000u64;
    let mut kills: Vec<(u32, u32, FaultKind)> = Vec::new();
    let mut chaos_seed = 0u64;
    let mut chaos_rate = 0.0f64;
    let mut checkpoint = None;
    let mut resume = None;
    let mut kill_after_shards = None;
    let mut heal = true;
    let mut max_shard_tasks = 0usize;
    let mut bits = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuit" => circuit = Some(parse_circuit(&need("--circuit", it.next())?)?),
            "--scale" => {
                scale = parse::<f64>("--scale", it.next())?;
                if scale <= 0.0 {
                    return Err(CliError::NonPositive("--scale").into());
                }
            }
            "--seed" => seed = parse::<u64>("--seed", it.next())?,
            "--shards" => {
                shards = parse::<usize>("--shards", it.next())?;
                if shards == 0 {
                    return Err(CliError::NonPositive("--shards").into());
                }
            }
            "--workers" => workers = parse::<usize>("--workers", it.next())?,
            "--retries" => retries = parse::<u32>("--retries", it.next())?,
            "--stall-ms" => stall_ms = parse::<u64>("--stall-ms", it.next())?,
            "--kill" => kills.push(parse_kill(&need("--kill", it.next())?)?),
            "--chaos-seed" => chaos_seed = parse::<u64>("--chaos-seed", it.next())?,
            "--chaos-rate" => {
                chaos_rate = parse::<f64>("--chaos-rate", it.next())?;
                if !(0.0..=1.0).contains(&chaos_rate) {
                    return Err("--chaos-rate must be within [0, 1]".to_string().into());
                }
            }
            "--checkpoint" => checkpoint = Some(need("--checkpoint", it.next())?.into()),
            "--resume" => resume = Some(need("--resume", it.next())?.into()),
            "--kill-after-shards" => {
                kill_after_shards = Some(parse::<u32>("--kill-after-shards", it.next())?)
            }
            "--no-heal" => heal = false,
            "--max-shard-tasks" => {
                max_shard_tasks = parse::<usize>("--max-shard-tasks", it.next())?
            }
            "--bits" => bits = true,
            other => return Err(unexpected(other)),
        }
    }
    let circuit = circuit.ok_or_else(|| Error::from("shard needs --circuit <name>".to_string()))?;
    if kill_after_shards.is_some() && checkpoint.is_none() {
        return Err(
            "--kill-after-shards needs --checkpoint (the hand-off must be saved)"
                .to_string()
                .into(),
        );
    }

    let mut cfg = ShardRunConfig::new(circuit, scale, seed, shards);
    cfg.max_workers = workers;
    cfg.max_tasks_per_shard = max_shard_tasks;
    cfg.retry.max_retries = retries;
    cfg.stall_after = std::time::Duration::from_millis(stall_ms.max(1));
    // Random chaos draws only prompt-killable kinds; a random stall would
    // serialise the run on the watchdog window (still available through a
    // targeted `--kill s:a:delay`).
    cfg.faults = FaultPlan::random(
        chaos_seed,
        chaos_rate,
        &[FaultKind::Panic, FaultKind::Transient],
    )
    .with_targets(kills);
    cfg.chaos_seed = chaos_seed;
    cfg.heal = heal;
    cfg.checkpoint_to = checkpoint;
    cfg.resume_from = resume;
    cfg.kill_after_shards = kill_after_shards;

    let out = run_sharded(&cfg).map_err(|e| e.to_string())?;
    println!(
        "shard({}, scale {scale}): {} shard(s), edge cut {}, {} worker(s) max",
        circuit.name(),
        out.num_shards,
        out.edge_cut,
        if cfg.max_workers == 0 {
            out.num_shards
        } else {
            cfg.max_workers
        },
    );
    println!(
        "salvaged {} shard(s), poisoned {:?}, unfinished {:?}; {} respawn(s), {} task(s) healed",
        out.salvaged.len(),
        out.poisoned,
        out.unfinished,
        out.respawns,
        out.healed_tasks,
    );
    println!(
        "WNS {} ps, TNS {} ps; worker exec total {:.3} ms",
        f32::from_bits(out.wns_bits),
        f32::from_bits(out.tns_bits),
        out.worker_exec_nanos as f64 / 1e6,
    );
    if bits {
        println!(
            "WNS bits {:08x}  TNS bits {:08x}",
            out.wns_bits, out.tns_bits
        );
    }
    if out.killed {
        println!(
            "killed after {} shard completion(s) (simulated supervisor crash); \
             resume with --resume {}",
            cfg.kill_after_shards.unwrap_or_default(),
            cfg.checkpoint_to
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }
    Ok(())
}

/// Parse one `--kill shard:attempt[:kind]` spec; the kind defaults to
/// `panic` (a SIGKILLed worker) and may itself contain a colon
/// (`delay:500` hangs the worker for the watchdog to reap).
fn parse_kill(raw: &str) -> Result<(u32, u32, FaultKind), Error> {
    let invalid = |why: String| {
        Error::from(CliError::BadValue {
            flag: "--kill",
            value: raw.to_string(),
            why,
        })
    };
    let mut parts = raw.splitn(3, ':');
    let (Some(shard), Some(attempt)) = (parts.next(), parts.next()) else {
        return Err(invalid(format!(
            "expected shard:attempt[:kind], got `{raw}`"
        )));
    };
    let shard = shard
        .parse::<u32>()
        .map_err(|_| invalid(format!("shard `{shard}` is not a u32")))?;
    let attempt = attempt
        .parse::<u32>()
        .map_err(|_| invalid(format!("attempt `{attempt}` is not a u32")))?;
    let kind = match parts.next() {
        Some(k) => k.parse::<FaultKind>().map_err(invalid)?,
        None => FaultKind::Panic,
    };
    Ok((shard, attempt, kind))
}

/// The hidden `shard-worker` subcommand: rebuild the context, speak the
/// wire protocol on stdio, exit nonzero on any violation. Spawned only
/// by the shard supervisor — not part of the public CLI surface.
fn shard_worker_cmd(args: &[String]) -> Result<(), Error> {
    use gpasta::shard::{run_worker, WorkerArgs};

    let mut wa = WorkerArgs {
        circuit: gpasta::circuits::PaperCircuit::AesCore,
        scale_bits: 1.0f64.to_bits(),
        seed: 0,
        shards: 1,
        max_tasks_per_shard: 0,
        shard: 0,
        attempt: 0,
        beat_every: 64,
        beat_interval_micros: 0,
        die_after: None,
        exit_after: None,
        stall_after: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuit" => wa.circuit = parse_circuit(&need("--circuit", it.next())?)?,
            "--scale-bits" => wa.scale_bits = parse::<u64>("--scale-bits", it.next())?,
            "--seed" => wa.seed = parse::<u64>("--seed", it.next())?,
            "--shards" => wa.shards = parse::<usize>("--shards", it.next())?,
            "--max-shard-tasks" => {
                wa.max_tasks_per_shard = parse::<usize>("--max-shard-tasks", it.next())?
            }
            "--shard" => wa.shard = parse::<u32>("--shard", it.next())?,
            "--attempt" => wa.attempt = parse::<u32>("--attempt", it.next())?,
            "--beat-every" => wa.beat_every = parse::<u64>("--beat-every", it.next())?,
            "--beat-interval-micros" => {
                wa.beat_interval_micros = parse::<u64>("--beat-interval-micros", it.next())?
            }
            "--die-after" => wa.die_after = Some(parse::<u64>("--die-after", it.next())?),
            "--exit-after" => wa.exit_after = Some(parse::<u64>("--exit-after", it.next())?),
            "--stall-after" => wa.stall_after = Some(parse::<u64>("--stall-after", it.next())?),
            other => return Err(unexpected(other)),
        }
    }
    run_worker(&wa).map_err(|e| Error::from(format!("shard worker: {e}")))
}

/// The `serve` subcommand: host warm timing sessions over HTTP/JSON or
/// JSON-RPC stdio. Runs until a shutdown request (or stdio EOF), then
/// spools every live session to the spool directory.
fn serve_cmd(args: &[String]) -> Result<(), Error> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = need("--addr", it.next())?,
            "--stdio" => cfg.stdio = true,
            "--spool" => cfg.spool = need("--spool", it.next())?.into(),
            "--workers" => {
                cfg.workers = parse::<usize>("--workers", it.next())?;
                if cfg.workers == 0 {
                    return Err(CliError::NonPositive("--workers").into());
                }
            }
            "--max-sessions" => {
                cfg.max_sessions = parse::<usize>("--max-sessions", it.next())?;
                if cfg.max_sessions == 0 {
                    return Err(CliError::NonPositive("--max-sessions").into());
                }
            }
            "--checkpoint-ms" => cfg.checkpoint_ms = parse::<u64>("--checkpoint-ms", it.next())?,
            "--max-inflight" => cfg.max_inflight = parse::<u64>("--max-inflight", it.next())?,
            "--max-connections" => {
                cfg.max_connections = parse::<usize>("--max-connections", it.next())?;
            }
            "--read-timeout-ms" => {
                cfg.read_timeout_ms = parse::<u64>("--read-timeout-ms", it.next())?;
            }
            "--keep-alive-requests" => {
                cfg.keep_alive_requests = parse::<u64>("--keep-alive-requests", it.next())?;
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms = parse::<u64>("--idle-timeout-ms", it.next())?;
            }
            "--crash-window-ms" => {
                cfg.crash_window_ms = parse::<u64>("--crash-window-ms", it.next())?;
            }
            "--max-crashes" => {
                cfg.max_crashes = parse::<usize>("--max-crashes", it.next())?;
                if cfg.max_crashes == 0 {
                    return Err(CliError::NonPositive("--max-crashes").into());
                }
            }
            "--chaos-seed" => cfg.chaos.seed = parse::<u64>("--chaos-seed", it.next())?,
            "--chaos-rate" => {
                cfg.chaos.rate = parse::<f64>("--chaos-rate", it.next())?;
                if !(0.0..=1.0).contains(&cfg.chaos.rate) {
                    return Err(CliError::BadValue {
                        flag: "--chaos-rate",
                        value: cfg.chaos.rate.to_string(),
                        why: "must be in [0, 1]".to_string(),
                    }
                    .into());
                }
            }
            "--chaos-kinds" => {
                let raw = need("--chaos-kinds", it.next())?;
                cfg.chaos.kinds = raw
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse::<FaultKind>().map_err(|why| CliError::BadValue {
                            flag: "--chaos-kinds",
                            value: s.to_string(),
                            why,
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--chaos-inject" => {
                let raw = need("--chaos-inject", it.next())?;
                cfg.chaos.targeted.push(parse_chaos_inject(&raw)?);
            }
            other => return Err(unexpected(other)),
        }
    }
    gpasta::serve::run(&cfg)?;
    Ok(())
}

/// Parse one `--chaos-inject name:update:attempt:kind` spec (the kind
/// may itself contain a colon, as in `delay:500`).
fn parse_chaos_inject(raw: &str) -> Result<(String, u32, u32, FaultKind), Error> {
    let invalid = |why: String| {
        Error::from(CliError::BadValue {
            flag: "--chaos-inject",
            value: raw.to_string(),
            why,
        })
    };
    let mut parts = raw.splitn(4, ':');
    let (Some(name), Some(update), Some(attempt), Some(kind)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(invalid(format!(
            "expected name:update:attempt:kind, got `{raw}`"
        )));
    };
    let update = update
        .parse::<u32>()
        .map_err(|_| invalid(format!("update index `{update}` is not a u32")))?;
    let attempt = attempt
        .parse::<u32>()
        .map_err(|_| invalid(format!("attempt `{attempt}` is not a u32")))?;
    let kind = kind.parse::<FaultKind>().map_err(invalid)?;
    Ok((name.to_string(), update, attempt, kind))
}

fn demo_cmd() -> Result<(), Error> {
    // The paper's Figure 4 graph, partitioned by every algorithm.
    let mut b = TdgBuilder::new(7);
    for (u, v) in [(0, 1), (2, 3), (4, 5), (1, 6), (3, 6), (5, 6)] {
        b.add_edge(TaskId(u), TaskId(v));
    }
    let tdg = b.build().map_err(|e| e.to_string())?;
    println!(
        "Figure 4 demo graph: {} tasks, {} deps\n",
        tdg.num_tasks(),
        tdg.num_deps()
    );
    for name in ["gpasta", "deter", "seq", "gdca", "sarkar"] {
        let p = pick_algo(name)?;
        let partition = p
            .partition(&tdg, &PartitionerOptions::with_max_size(3))
            .map_err(|e| e.to_string())?;
        println!("{:<10} {:?}", p.name(), partition.assignment());
    }
    Ok(())
}
