//! `gpasta` — command-line TDG partitioner.
//!
//! Reads a task dependency graph from an edge-list file (one `from to`
//! pair per line, `#` comments allowed, task ids dense from 0), partitions
//! it with the chosen algorithm, validates the result, and prints
//! statistics — optionally emitting the assignment as CSV or the
//! partitioned graph as Graphviz DOT.
//!
//! ```text
//! gpasta partition edges.txt --algo gpasta --ps 16 --dot out.dot
//! gpasta sanitize edges.txt --algo gpasta --workers 1,2,4
//! gpasta stats edges.txt
//! gpasta demo
//! ```

use gpasta::core::sanitize::{audit_host_partitioner, audit_incremental_repair, audit_partitioner};
use gpasta::core::{
    forward_closure, DeterGPasta, GPasta, Gdca, IncrementalPartitioner, Partitioner,
    PartitionerOptions, Sarkar, SeqGPasta,
};
use gpasta::sched::{Executor, FaultKind, FaultPlan, FaultyWork, RetryPolicy};
use gpasta::tdg::{
    partition_to_dot, validate, ParallelismProfile, QuotientTdg, TaskId, Tdg, TdgBuilder,
};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  gpasta partition <edges-file> [--algo gpasta|deter|seq|gdca|sarkar]
                                [--ps <n>] [--dot <file>] [--csv <file>]
                                [--incremental]
  gpasta sanitize <edges-file>  [--algo gpasta|deter|seq|gdca|sarkar|incremental|recovery|all]
                                [--ps <n>] [--workers <w1,w2,..>] [--runs <n>]
  gpasta stats <edges-file>
  gpasta sta <netlist.v> [--lib <file.lib>] [--sdc <file.sdc>]\n                         [--clock <ps>] [--paths <k>]
  gpasta faults <edges-file>    [--algo gpasta|deter|seq|gdca|sarkar] [--ps <n>]
                                [--workers <n>] [--seed <n>] [--rate <f>]
                                [--retries <n>]
  gpasta update --circuit <name> [--scale <f>] [--iters <n>] [--workers <n>]
                                [--seed <n>] [--checkpoint <file>]
                                [--resume <file>] [--kill-after <i>]
                                [--deadline-ms <n>]
  gpasta demo

edge-list format: one `from to` pair of task ids per line; `#` comments
and blank lines are ignored; task count is 1 + the largest id. Netlists
use the structural-Verilog subset produced by gpasta::sta::write_verilog;
libraries use the Liberty subset of gpasta::sta::write_liberty.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("partition") => partition_cmd(&args[1..]),
        Some("sanitize") => sanitize_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        Some("sta") => sta_cmd(&args[1..]),
        Some("faults") => faults_cmd(&args[1..]),
        Some("update") => update_cmd(&args[1..]),
        Some("demo") => demo_cmd(),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn load_edges(path: &Path) -> Result<Tdg, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    gpasta::tdg::parse_edge_list(&text).map_err(|e| e.to_string())
}

fn pick_algo(name: &str) -> Result<Box<dyn Partitioner>, String> {
    Ok(match name {
        "gpasta" => Box::new(GPasta::new()),
        "deter" => Box::new(DeterGPasta::new()),
        "seq" => Box::new(SeqGPasta::new()),
        "gdca" => Box::new(Gdca::new()),
        "sarkar" => Box::new(Sarkar::new()),
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

fn partition_cmd(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut algo = "gpasta".to_owned();
    let mut ps = None;
    let mut dot_out = None;
    let mut csv_out = None;
    let mut incremental = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = it.next().ok_or("--algo needs a value")?.clone(),
            "--ps" => {
                ps = Some(
                    it.next()
                        .ok_or("--ps needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("--ps: {e}"))?,
                )
            }
            "--dot" => dot_out = Some(it.next().ok_or("--dot needs a file")?.clone()),
            "--csv" => csv_out = Some(it.next().ok_or("--csv needs a file")?.clone()),
            "--incremental" => incremental = true,
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing <edges-file>")?;
    let tdg = load_edges(Path::new(&file))?;
    let partitioner = pick_algo(&algo)?;
    let opts = match ps {
        Some(n) => PartitionerOptions::with_max_size(n),
        None => PartitionerOptions::default(),
    };
    if incremental {
        return incremental_demo(&tdg, partitioner, &opts);
    }

    let t0 = std::time::Instant::now();
    let partition = partitioner
        .partition(&tdg, &opts)
        .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    validate::check_all(&tdg, &partition).map_err(|e| format!("internal error: {e}"))?;

    println!(
        "{}: {} tasks, {} deps -> {}",
        partitioner.name(),
        tdg.num_tasks(),
        tdg.num_deps(),
        partition.stats(&tdg)
    );
    println!(
        "partitioned in {:.3} ms; result validated (acyclic, convex)",
        elapsed.as_secs_f64() * 1e3
    );

    if let Some(path) = csv_out {
        let mut out = String::from("task,partition\n");
        for (t, &p) in partition.assignment().iter().enumerate() {
            out.push_str(&format!("{t},{p}\n"));
        }
        std::fs::write(&path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = dot_out {
        std::fs::write(&path, partition_to_dot(&tdg, &partition))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The `partition --incremental` demo: install the cache once, then
/// repair the forward cone of a mid-graph task and compare the repair
/// cost against the cold install.
fn incremental_demo(
    tdg: &Tdg,
    partitioner: Box<dyn Partitioner>,
    opts: &PartitionerOptions,
) -> Result<(), String> {
    if tdg.num_tasks() == 0 {
        return Err("--incremental needs a non-empty graph".into());
    }
    let name = partitioner.name();
    let mut inc = IncrementalPartitioner::new(partitioner);
    let t0 = std::time::Instant::now();
    inc.install(tdg, opts).map_err(|e| e.to_string())?;
    let install = t0.elapsed();

    let seed = (tdg.num_tasks() / 2) as u32;
    let dirty = forward_closure(tdg, &[seed]);
    let t0 = std::time::Instant::now();
    let stats = inc.repair(&dirty).map_err(|e| e.to_string())?;
    let repair = t0.elapsed();

    let partition = inc
        .full_partition()
        .ok_or("incremental cache is cold after repair (internal invariant violated)")?;
    validate::check_all(tdg, &partition).map_err(|e| format!("internal error: {e}"))?;

    println!(
        "incremental({name}): {} tasks, {} deps -> {}",
        tdg.num_tasks(),
        tdg.num_deps(),
        partition.stats(tdg)
    );
    println!(
        "install (cold {name}): {:.3} ms; repair of task {seed}'s forward cone \
         ({} dirty): {:.3} ms",
        install.as_secs_f64() * 1e3,
        stats.num_dirty,
        repair.as_secs_f64() * 1e3
    );
    println!(
        "repair moved {} task(s), allocated {} fresh partition(s), epoch {}; \
         result validated (acyclic, convex)",
        stats.moved, stats.fresh_partitions, stats.epoch
    );
    Ok(())
}

fn sanitize_cmd(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut algo = "all".to_owned();
    let mut ps = None;
    let mut workers = vec![1usize, 2, 4];
    let mut runs = 2usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = it.next().ok_or("--algo needs a value")?.clone(),
            "--ps" => {
                ps = Some(
                    it.next()
                        .ok_or("--ps needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("--ps: {e}"))?,
                )
            }
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a comma-separated list")?
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--workers: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if workers.is_empty() || workers.contains(&0) {
                    return Err("--workers needs positive worker counts".into());
                }
            }
            "--runs" => {
                runs = it
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("--runs: {e}"))?;
                if runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing <edges-file>")?;
    let tdg = load_edges(Path::new(&file))?;
    let opts = match ps {
        Some(n) => PartitionerOptions::with_max_size(n),
        None => PartitionerOptions::default(),
    };
    let algos: Vec<&str> = if algo == "all" {
        vec![
            "gpasta",
            "deter",
            "seq",
            "gdca",
            "sarkar",
            "incremental",
            "recovery",
        ]
    } else {
        vec![algo.as_str()]
    };
    if let Some(bad) = algos.iter().find(|a| {
        !matches!(
            **a,
            "gpasta" | "deter" | "seq" | "gdca" | "sarkar" | "incremental" | "recovery"
        )
    }) {
        return Err(format!("unknown algorithm `{bad}`"));
    }
    println!(
        "sanitizing {} tasks, {} deps under workers {workers:?} x {} schedule(s) x {runs} run(s)\n",
        tdg.num_tasks(),
        tdg.num_deps(),
        gpasta::gpu::Schedule::ALL.len(),
    );
    for name in algos {
        let outcome = match name {
            "gpasta" => audit_partitioner(GPasta::with_device, &tdg, &opts, &workers, runs),
            "deter" => audit_partitioner(DeterGPasta::with_device, &tdg, &opts, &workers, runs),
            "seq" => audit_host_partitioner(&SeqGPasta::new(), &tdg, &opts, &workers, runs),
            "gdca" => audit_host_partitioner(&Gdca::new(), &tdg, &opts, &workers, runs),
            "sarkar" => audit_host_partitioner(&Sarkar::new(), &tdg, &opts, &workers, runs),
            // The incremental repair path, backed by the deterministic
            // partitioner so any nondeterminism is the repair's own.
            "incremental" => {
                let dirty = if tdg.num_tasks() == 0 {
                    Vec::new()
                } else {
                    forward_closure(&tdg, &[(tdg.num_tasks() / 2) as u32])
                };
                audit_incremental_repair(
                    DeterGPasta::with_device,
                    &tdg,
                    &opts,
                    &dirty,
                    &workers,
                    runs,
                )
            }
            // Fault recovery under a fixed plan: same seed + same worker
            // count must yield the identical salvage/poison sets.
            "recovery" => audit_recovery(&tdg, &opts, &workers, runs)?,
            other => unreachable!("algorithm `{other}` validated above"),
        };
        println!("{name:<12} {outcome}");
    }
    Ok(())
}

/// Determinism audit of the fault-recovery path itself: partition the
/// graph once (deterministic partitioner), then replay a fixed
/// [`FaultPlan`] through `run_partitioned_recovering` under every audited
/// worker count, fingerprinting the salvage/poison sets. Recovery is
/// sound only if the fingerprint is independent of scheduling — the audit
/// must report `Deterministic`.
fn audit_recovery(
    tdg: &Tdg,
    opts: &PartitionerOptions,
    workers: &[usize],
    runs: usize,
) -> Result<gpasta::core::sanitize::AuditOutcome, String> {
    let partition = DeterGPasta::new()
        .partition(tdg, opts)
        .map_err(|e| e.to_string())?;
    let quotient = QuotientTdg::build(tdg, &partition).map_err(|e| e.to_string())?;
    let kinds = [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
    ];
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: std::time::Duration::ZERO,
        max_backoff: std::time::Duration::ZERO,
    };
    // Injected panics are expected; keep the default hook's stderr lines
    // out of the audit output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = gpasta::gpu::audit_determinism(workers, runs, |dev| {
        let plan = FaultPlan::random(0xFA17_0001, 0.05, &kinds);
        let payload = |_t: TaskId| {};
        let work = FaultyWork::new(&payload, &plan);
        let exec = Executor::new(dev.num_threads());
        let outcome = exec.run_partitioned_recovering(&quotient, &work, &policy);
        // Fingerprint: poisoned units, poisoned tasks, then the counters.
        let mut fp = outcome.poisoned_units.clone();
        fp.push(u32::MAX);
        fp.extend_from_slice(&outcome.poisoned_tasks);
        fp.push(u32::MAX);
        fp.push(outcome.salvaged_tasks as u32);
        fp.push(outcome.retries as u32);
        fp.push(outcome.failures.len() as u32);
        fp
    });
    std::panic::set_hook(default_hook);
    Ok(outcome)
}

fn stats_cmd(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("missing <edges-file>")?;
    let tdg = load_edges(Path::new(file))?;
    let profile = ParallelismProfile::of(&tdg);
    println!("{} tasks, {} deps", tdg.num_tasks(), tdg.num_deps());
    println!("{profile}");
    println!(
        "{} sources, {} sinks",
        tdg.sources().len(),
        tdg.sinks().len()
    );
    Ok(())
}

fn sta_cmd(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut lib_file = None;
    let mut sdc_file = None;
    let mut clock_ps = 1_000.0f32;
    let mut paths = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lib" => lib_file = Some(it.next().ok_or("--lib needs a file")?.clone()),
            "--sdc" => sdc_file = Some(it.next().ok_or("--sdc needs a file")?.clone()),
            "--clock" => {
                clock_ps = it
                    .next()
                    .ok_or("--clock needs a value")?
                    .parse()
                    .map_err(|e| format!("--clock: {e}"))?
            }
            "--paths" => {
                paths = it
                    .next()
                    .ok_or("--paths needs a value")?
                    .parse()
                    .map_err(|e| format!("--paths: {e}"))?
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing <netlist.v>")?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let netlist = gpasta::sta::parse_verilog(&text).map_err(|e| e.to_string())?;
    let library = match lib_file {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            gpasta::sta::parse_liberty(&text).map_err(|e| e.to_string())?
        }
        None => gpasta::sta::CellLibrary::typical(),
    };
    println!(
        "design: {} gates, {} nets, {} PIs, {} POs; clock {clock_ps} ps",
        netlist.num_gates(),
        netlist.num_nets(),
        netlist.num_inputs(),
        netlist.num_outputs()
    );

    let mut timer = gpasta::sta::Timer::try_new(netlist, library.clone())
        .map_err(|e| format!("cannot build timing graph: {e}"))?;
    timer.set_clock_period(clock_ps);
    if let Some(path) = sdc_file {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        gpasta::sta::apply_sdc(&mut timer, &text).map_err(|e| e.to_string())?;
    }
    let update = timer.update_timing();
    println!(
        "update_timing TDG: {} tasks, {} deps",
        update.tdg().num_tasks(),
        update.tdg().num_deps()
    );
    update.run_sequential();
    drop(update);

    let report = timer.report(paths.max(1));
    print!("{report}");
    for endpoint in report.worst.iter().take(paths) {
        if let Some(path) = gpasta::sta::trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &library,
            timer.data(),
            endpoint.node,
        ) {
            println!();
            print!("{path}");
        }
    }
    Ok(())
}

/// The `faults` subcommand: partition the TDG, run it through the
/// recovering executor under a seeded fault plan, and report the salvage /
/// quarantine split — verifying on the way out that the poisoned set is
/// exactly the forward closure of the failed partitions.
fn faults_cmd(args: &[String]) -> Result<(), String> {
    let mut file = None;
    let mut algo = "deter".to_owned();
    let mut ps = None;
    let mut workers = 2usize;
    let mut seed = 0xFA17u64;
    let mut rate = 0.02f64;
    let mut retries = 2u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--algo" => algo = it.next().ok_or("--algo needs a value")?.clone(),
            "--ps" => {
                ps = Some(
                    it.next()
                        .ok_or("--ps needs a value")?
                        .parse::<usize>()
                        .map_err(|e| format!("--ps: {e}"))?,
                )
            }
            "--workers" => {
                workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rate" => {
                rate = it
                    .next()
                    .ok_or("--rate needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--rate: {e}"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--rate must be within [0, 1]".into());
                }
            }
            "--retries" => {
                retries = it
                    .next()
                    .ok_or("--retries needs a value")?
                    .parse::<u32>()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            other if file.is_none() => file = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing <edges-file>")?;
    let tdg = load_edges(Path::new(&file))?;
    let exec = Executor::try_new(workers).map_err(|e| format!("--workers: {e}"))?;
    let partitioner = pick_algo(&algo)?;
    let opts = match ps {
        Some(n) => PartitionerOptions::with_max_size(n),
        None => PartitionerOptions::default(),
    };
    let partition = partitioner
        .partition(&tdg, &opts)
        .map_err(|e| e.to_string())?;
    let quotient = QuotientTdg::build(&tdg, &partition).map_err(|e| e.to_string())?;

    let kinds = [
        FaultKind::Panic,
        FaultKind::Transient,
        FaultKind::WrongResult,
    ];
    let plan = FaultPlan::random(seed, rate, &kinds);
    let policy = RetryPolicy {
        max_retries: retries,
        ..RetryPolicy::default()
    };
    println!(
        "{}: {} tasks in {} partitions; injecting faults at rate {rate} (seed {seed}, \
         {retries} retr{} max) on {workers} worker(s)",
        partitioner.name(),
        tdg.num_tasks(),
        quotient.graph().num_tasks(),
        if retries == 1 { "y" } else { "ies" },
    );

    let payload = |_t: TaskId| {};
    let work = FaultyWork::new(&payload, &plan);
    // Injected panics are expected and reported below as failure records;
    // keep the default hook's per-panic stderr lines out of the output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = exec.run_partitioned_recovering(&quotient, &work, &policy);
    std::panic::set_hook(default_hook);

    println!(
        "{} fault(s) fired, {} retr(y/ies) absorbed",
        plan.fired(),
        outcome.retries
    );
    for f in &outcome.failures {
        println!(
            "  partition {} quarantined: task {} failed after {} attempt(s): {}",
            f.unit, f.task, f.attempts, f.error
        );
    }
    println!("{outcome}");

    // The quarantine contract: poisoned partitions are exactly the forward
    // closure (in the quotient graph) of the partitions that failed.
    let failed_units: Vec<u32> = outcome.failures.iter().map(|f| f.unit).collect();
    let mut expected = if failed_units.is_empty() {
        Vec::new()
    } else {
        forward_closure(quotient.graph(), &failed_units)
    };
    expected.sort_unstable();
    if expected != outcome.poisoned_units {
        return Err(format!(
            "quarantine mismatch: poisoned {:?}, expected closure {:?}",
            outcome.poisoned_units, expected
        ));
    }
    let salvage_check: usize = quotient
        .graph()
        .num_tasks()
        .saturating_sub(outcome.poisoned_units.len());
    println!(
        "quarantine verified: poisoned set is the forward closure of {} failed \
         partition(s); {} partition(s) salvaged",
        failed_units.len(),
        salvage_check,
    );
    Ok(())
}

/// The `update` command: the crash-safe incremental timing-update flow —
/// deterministic gate-repower iterations over a paper circuit with
/// per-iteration checkpointing, kill/resume, and an optional wall-clock
/// deadline (see `gpasta::checkpoint`).
fn update_cmd(args: &[String]) -> Result<(), String> {
    use gpasta::checkpoint::{run_update_flow, UpdateFlowConfig};
    use gpasta::circuits::PaperCircuit;
    use gpasta::sched::StopCause;

    let mut circuit = None;
    let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuit" => {
                let name = it.next().ok_or("--circuit needs a value")?;
                circuit = Some(
                    PaperCircuit::all()
                        .iter()
                        .copied()
                        .find(|c| c.name() == name)
                        .ok_or_else(|| {
                            format!(
                                "unknown circuit `{name}` (choose from {})",
                                PaperCircuit::all()
                                    .iter()
                                    .map(|c| c.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        })?,
                );
            }
            "--scale" => {
                cfg.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("--scale: {e}"))?;
                if cfg.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--iters" => {
                cfg.iterations = it
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse::<u32>()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--workers" => {
                cfg.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--checkpoint" => {
                cfg.checkpoint_to = Some(it.next().ok_or("--checkpoint needs a path")?.into())
            }
            "--resume" => cfg.resume_from = Some(it.next().ok_or("--resume needs a path")?.into()),
            "--kill-after" => {
                cfg.kill_after = Some(
                    it.next()
                        .ok_or("--kill-after needs an iteration number")?
                        .parse::<u32>()
                        .map_err(|e| format!("--kill-after: {e}"))?,
                )
            }
            "--deadline-ms" => {
                cfg.deadline = Some(std::time::Duration::from_millis(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse::<u64>()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                ))
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    cfg.circuit = circuit.ok_or("update needs --circuit <name>")?;
    if cfg.kill_after.is_some() && cfg.checkpoint_to.is_none() {
        return Err("--kill-after needs --checkpoint (the resume point must be saved)".into());
    }

    let out = run_update_flow(&cfg).map_err(|e| e.to_string())?;
    println!(
        "update({}, scale {}): {}/{} iteration(s), epoch {}, WNS {} ps, TNS {} ps",
        cfg.circuit.name(),
        cfg.scale,
        out.iterations_done,
        cfg.iterations,
        out.epoch,
        f32::from_bits(out.wns_bits),
        f32::from_bits(out.tns_bits),
    );
    match out.stop {
        StopCause::Completed => {}
        cause => println!(
            "stopped early ({cause:?}): {} endpoint(s) read unknown (NaN); \
             re-run with --resume and a fresh budget to converge",
            out.unknown_endpoints
        ),
    }
    if out.killed {
        println!(
            "killed after iteration {} (simulated crash); resume with --resume {}",
            out.iterations_done,
            cfg.checkpoint_to
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
    }
    Ok(())
}

fn demo_cmd() -> Result<(), String> {
    // The paper's Figure 4 graph, partitioned by every algorithm.
    let mut b = TdgBuilder::new(7);
    for (u, v) in [(0, 1), (2, 3), (4, 5), (1, 6), (3, 6), (5, 6)] {
        b.add_edge(TaskId(u), TaskId(v));
    }
    let tdg = b.build().map_err(|e| e.to_string())?;
    println!(
        "Figure 4 demo graph: {} tasks, {} deps\n",
        tdg.num_tasks(),
        tdg.num_deps()
    );
    for name in ["gpasta", "deter", "seq", "gdca", "sarkar"] {
        let p = pick_algo(name)?;
        let partition = p
            .partition(&tdg, &PartitionerOptions::with_max_size(3))
            .map_err(|e| e.to_string())?;
        println!("{:<10} {:?}", p.name(), partition.assignment());
    }
    Ok(())
}
