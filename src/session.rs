//! `Session` — an owned, movable unit of timing-analysis state.
//!
//! Before this module, analysis state lived on the stack of whichever
//! CLI subcommand built it: a [`Timer`] here, an
//! [`IncrementalPartitioner`] there, an [`Executor`] somewhere else,
//! wired together ad hoc per command. A [`Session`] packages all of it —
//! the parsed design, its timer, the warm partition cache, and the
//! executor handle — into one `Send + 'static` value that can be created,
//! handed to another thread, parked behind a mutex in a server registry
//! ([`crate::serve`]), evicted to disk, and re-admitted later.
//!
//! The lifecycle:
//!
//! * [`Session::create`] parses the [`DesignSources`] (structural
//!   Verilog, optional Liberty library, optional SDC constraints), runs
//!   the initial full analysis, and installs the incremental partition
//!   cache on the full-space update TDG — after this every
//!   [`Session::update_timing`] pays only dirty-cone repair, exactly the
//!   warm path the paper's Figure 7 measures;
//! * [`Session::apply_edit`] applies validated incremental edits
//!   ([`Edit`]): gate repower, net-capacitance change, I/O-delay and
//!   clock-period constraint changes. Validation happens *here*, so bad
//!   client input surfaces as a typed [`SessionError`] instead of a
//!   panic inside the timer;
//! * [`Session::update_timing`] repairs the cached partition inside the
//!   dirty cone, executes the partitioned update through the bounded
//!   recovering executor under a caller-supplied [`RunBudget`], and
//!   degrades explicitly on an expired deadline (affected endpoints read
//!   NaN; the whole design is re-marked dirty so a later update
//!   converges);
//! * [`Session::evict_to`] persists the session through the existing
//!   `GPCKPT01` checkpoint format ([`crate::checkpoint`]) and returns a
//!   [`DormantSession`] — the light in-memory residue (source texts plus
//!   the net-capacitance journal) from which
//!   [`DormantSession::restore`] rebuilds a bit-identical live session.
//!
//! # Eviction and bit-identity
//!
//! A `GPCKPT01` checkpoint stores timing *values*, not netlist state, so
//! two pieces of bookkeeping make evict/restore bit-exact:
//!
//! * pending edits are flushed (one unbounded update) before the
//!   snapshot is taken — the snapshot stores values, not the dirty set;
//! * [`Edit::SetNetCap`] mutates the netlist itself, which a restore
//!   rebuilds from source text; the session therefore journals every
//!   net-cap edit (bit-exact `f32` patterns) and the restore replays the
//!   journal before installing the snapshot.
//!
//! The checkpoint's identity fields are reused rather than extended (the
//! on-disk format is unchanged): `circuit` holds the session name,
//! `scale_bits` an FNV-1a64 fingerprint of the Verilog text, and `seed`
//! a fingerprint of the constraints (Liberty + SDC + clock period), so a
//! restore against edited sources is rejected with a typed error.

use std::error::Error as StdError;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::checkpoint::{
    fnv1a64, read_checkpoint, write_checkpoint, CheckpointError, DesignShape, UpdateCheckpoint,
};
use crate::core::{IncrementalError, IncrementalPartitioner, PartitionerOptions, SeqGPasta};
use crate::sched::{Executor, FaultKind, FaultPlan, RetryPolicy, RunBudget, StopCause};
use crate::sta::{
    apply_sdc, k_worst_paths, parse_liberty, parse_verilog, CellLibrary, GateId, ParseLibertyError,
    ParseSdcError, ParseVerilogError, PortId, SnapshotMismatch, Timer, TimingPath, TimingReport,
};
use crate::tdg::{BuildTdgError, QuotientArena, QuotientTdg, ValidatePartitionError};

/// The textual inputs a session is built from. Owning the *sources*
/// (rather than only the parsed design) is what makes eviction cheap:
/// a [`DormantSession`] keeps these strings and a checkpoint path, and
/// the heavy timer/cache state is rebuilt on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSources {
    /// Structural Verilog netlist (the subset of
    /// [`crate::sta::parse_verilog`]).
    pub verilog: String,
    /// Liberty cell library; [`CellLibrary::typical`] when absent.
    pub liberty: Option<String>,
    /// SDC constraints applied after construction.
    pub sdc: Option<String>,
    /// Clock period in ps (applied before the SDC, which may override).
    pub clock_period_ps: f32,
}

impl DesignSources {
    /// Sources with no library/constraint files and a 1 ns clock.
    pub fn verilog_only(verilog: impl Into<String>) -> Self {
        DesignSources {
            verilog: verilog.into(),
            liberty: None,
            sdc: None,
            clock_period_ps: 1_000.0,
        }
    }

    /// FNV-1a64 fingerprint of the netlist text (stored in the
    /// checkpoint's `scale_bits` identity field).
    pub fn netlist_bits(&self) -> u64 {
        fnv1a64(self.verilog.as_bytes())
    }

    /// FNV-1a64 fingerprint of the constraints: Liberty text, SDC text,
    /// and clock-period bits (stored in the checkpoint's `seed` field).
    pub fn constraint_bits(&self) -> u64 {
        let mut buf = Vec::new();
        for text in [self.liberty.as_deref(), self.sdc.as_deref()] {
            let bytes = text.unwrap_or("").as_bytes();
            buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        buf.extend_from_slice(&self.clock_period_ps.to_bits().to_le_bytes());
        fnv1a64(&buf)
    }
}

/// A session operation failed. Every variant is recoverable at the
/// request boundary: the daemon renders it as a structured JSON error
/// and the session (when one exists) stays usable.
#[derive(Debug)]
pub enum SessionError {
    /// The Verilog netlist failed to parse.
    Verilog(ParseVerilogError),
    /// The Liberty library failed to parse.
    Liberty(ParseLibertyError),
    /// The SDC constraints failed to parse or apply.
    Sdc(ParseSdcError),
    /// The netlist contains a combinational loop, so no timing graph
    /// exists for it.
    Graph(BuildTdgError),
    /// An [`Edit`] referenced a missing object or carried an invalid
    /// value; the message names both.
    BadEdit(String),
    /// Partition-cache maintenance (install, repair, restore) failed.
    Partition(IncrementalError),
    /// A repaired partition failed quotient construction — a library
    /// bug, reported instead of panicking so one request fails, not the
    /// process.
    Quotient(ValidatePartitionError),
    /// A checkpoint's timing snapshot does not fit this design.
    Snapshot(SnapshotMismatch),
    /// Reading or writing the eviction checkpoint failed.
    Checkpoint(CheckpointError),
}

impl SessionError {
    /// A stable machine-readable tag for wire protocols.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::Verilog(_) => "parse_verilog",
            SessionError::Liberty(_) => "parse_liberty",
            SessionError::Sdc(_) => "parse_sdc",
            SessionError::Graph(_) => "combinational_loop",
            SessionError::BadEdit(_) => "bad_edit",
            SessionError::Partition(_) => "partition",
            SessionError::Quotient(_) => "quotient",
            SessionError::Snapshot(_) => "snapshot_mismatch",
            SessionError::Checkpoint(_) => "checkpoint",
        }
    }

    /// Whether the failure is the client's fault (bad input: HTTP 4xx)
    /// rather than the server's (internal failure: HTTP 5xx).
    pub fn is_client_error(&self) -> bool {
        matches!(
            self,
            SessionError::Verilog(_)
                | SessionError::Liberty(_)
                | SessionError::Sdc(_)
                | SessionError::Graph(_)
                | SessionError::BadEdit(_)
        )
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Verilog(e) => write!(f, "netlist: {e}"),
            SessionError::Liberty(e) => write!(f, "liberty: {e}"),
            SessionError::Sdc(e) => write!(f, "sdc: {e}"),
            SessionError::Graph(e) => write!(f, "netlist has no timing graph: {e}"),
            SessionError::BadEdit(why) => write!(f, "bad edit: {why}"),
            SessionError::Partition(e) => write!(f, "partition maintenance failed: {e}"),
            SessionError::Quotient(e) => write!(
                f,
                "repaired partition has no valid quotient (library bug): {e}"
            ),
            SessionError::Snapshot(e) => write!(f, "snapshot mismatch: {e}"),
            SessionError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for SessionError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SessionError::Verilog(e) => Some(e),
            SessionError::Liberty(e) => Some(e),
            SessionError::Sdc(e) => Some(e),
            SessionError::Graph(e) => Some(e),
            SessionError::BadEdit(_) => None,
            SessionError::Partition(e) => Some(e),
            SessionError::Quotient(e) => Some(e),
            SessionError::Snapshot(e) => Some(e),
            SessionError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<IncrementalError> for SessionError {
    fn from(e: IncrementalError) -> Self {
        SessionError::Partition(e)
    }
}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

/// One validated incremental edit. Gates and ports are addressed by
/// their netlist names (`u3`, `clk_out`); a decimal string is also
/// accepted as a raw index, which is what the deterministic CLI flows
/// use.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Repower a gate to a new drive strength (multiplier, must be
    /// positive and finite).
    Repower {
        /// Gate name or decimal index.
        gate: String,
        /// New drive strength.
        drive: f32,
    },
    /// Set the wire capacitance of a net (reconnect-class edit: the
    /// journaled netlist mutation).
    SetNetCap {
        /// Net index.
        net: u32,
        /// New wire capacitance in fF (non-negative, finite).
        cap_ff: f32,
    },
    /// Constrain a primary input's external delay.
    SetInputDelay {
        /// Input port name or decimal index.
        port: String,
        /// Delay in ps (finite).
        delay_ps: f32,
    },
    /// Constrain a primary output's external delay.
    SetOutputDelay {
        /// Output port name or decimal index.
        port: String,
        /// Delay in ps (finite).
        delay_ps: f32,
    },
    /// Change the clock period (ps, positive and finite). Marks the
    /// whole design dirty.
    SetClockPeriod {
        /// New period in ps.
        period_ps: f32,
    },
}

/// What one [`Session::update_timing`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Why the run stopped; [`StopCause::Completed`] unless the budget
    /// expired.
    pub stop: StopCause,
    /// Tasks in this update's TDG (0 when nothing was dirty).
    pub tasks: usize,
    /// Tasks the dirty-cone repair moved between partitions.
    pub repair_moved: usize,
    /// Fresh partitions the repair allocated.
    pub repair_fresh: usize,
    /// The partition cache's epoch after the run.
    pub epoch: u64,
    /// Endpoints left reading *unknown* (NaN) by an early stop; zero
    /// for completed runs.
    pub unknown_endpoints: u32,
}

/// The in-memory residue of an evicted session: design sources, the
/// net-capacitance journal, and the path of the `GPCKPT01` checkpoint
/// holding the heavy state. [`DormantSession::restore`] turns it back
/// into a live [`Session`] with bit-identical timing state.
#[derive(Debug, Clone)]
pub struct DormantSession {
    name: String,
    sources: DesignSources,
    net_cap_journal: Vec<(u32, u32)>,
    checkpoint: PathBuf,
}

impl DormantSession {
    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the heavy state was checkpointed.
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint
    }

    /// Rebuild the live session: reparse the sources, replay the
    /// net-cap journal, restore the timing snapshot and the partition
    /// cache from the checkpoint. The result is bit-identical to the
    /// session as it was at eviction.
    ///
    /// # Errors
    ///
    /// [`SessionError::Checkpoint`] for unreadable, corrupt, or
    /// mismatched checkpoints (including sources edited since
    /// eviction), the parse variants if the sources no longer parse,
    /// [`SessionError::Snapshot`] / [`SessionError::Partition`] if the
    /// snapshot or cache does not fit the rebuilt design.
    pub fn restore(&self, workers: usize) -> Result<Session, SessionError> {
        let ckpt = read_checkpoint(&self.checkpoint)?;
        let mismatch = |why: String| SessionError::Checkpoint(CheckpointError::Mismatch(why));
        if ckpt.circuit != self.name {
            return Err(mismatch(format!(
                "checkpoint belongs to session `{}`, not `{}`",
                ckpt.circuit, self.name
            )));
        }
        if ckpt.scale_bits != self.sources.netlist_bits() {
            return Err(mismatch(
                "netlist text changed since eviction (fingerprint mismatch)".into(),
            ));
        }
        if ckpt.seed != self.sources.constraint_bits() {
            return Err(mismatch(
                "constraints changed since eviction (fingerprint mismatch)".into(),
            ));
        }

        let (mut timer, library) = build_timer(&self.sources)?;
        let shape = DesignShape::of(&timer);
        if ckpt.shape != shape {
            return Err(mismatch(format!(
                "design shape {shape:?} differs from the checkpoint's {:?}",
                ckpt.shape
            )));
        }
        // The full-space TDG is a pure function of the rebuilt design; it
        // hosts the restored cache, and building it clears the fresh
        // timer's full-dirty flag (the snapshot restore resets dirtiness
        // anyway).
        let full_tdg = timer.update_timing().tdg().clone();
        // Net caps live in the netlist, outside the snapshot: replay the
        // journal bit-exactly before installing the snapshot values.
        for &(net, cap_bits) in &self.net_cap_journal {
            if net as usize >= timer.netlist().num_nets() {
                return Err(SessionError::BadEdit(format!(
                    "journaled net {net} out of range (design has {} nets)",
                    timer.netlist().num_nets()
                )));
            }
            timer.set_net_cap(net, f32::from_bits(cap_bits));
        }
        timer
            .restore_snapshot(&ckpt.snapshot)
            .map_err(SessionError::Snapshot)?;

        let opts = PartitionerOptions::default();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        match ckpt.cache {
            Some(cache) => inc.restore_cache(&full_tdg, cache)?,
            // Cache-less checkpoints are legal in the format; degrade to
            // a fresh install on the restored timing state.
            None => inc.install(&full_tdg, &opts)?,
        }

        Ok(Session {
            name: self.name.clone(),
            sources: self.sources.clone(),
            timer,
            library,
            inc,
            exec: Executor::new(workers.max(1)),
            policy: RetryPolicy::default(),
            net_cap_journal: self.net_cap_journal.clone(),
            updates_done: ckpt.iterations_done,
            chaos: None,
            quotient_arena: QuotientArena::new(),
        })
    }
}

fn build_timer(sources: &DesignSources) -> Result<(Timer, CellLibrary), SessionError> {
    let netlist = parse_verilog(&sources.verilog).map_err(SessionError::Verilog)?;
    let library = match &sources.liberty {
        Some(text) => parse_liberty(text).map_err(SessionError::Liberty)?,
        None => CellLibrary::typical(),
    };
    let mut timer = Timer::try_new(netlist, library.clone()).map_err(SessionError::Graph)?;
    timer.set_clock_period(sources.clock_period_ps);
    if let Some(sdc) = &sources.sdc {
        apply_sdc(&mut timer, sdc).map_err(SessionError::Sdc)?;
    }
    Ok((timer, library))
}

/// An owned unit of timing-analysis state: parsed design, [`Timer`],
/// warm [`IncrementalPartitioner`] cache, and [`Executor`] handle.
/// `Send + 'static`, so it can live behind a mutex in a server registry
/// and move between worker threads. See the [module docs](self) for the
/// lifecycle.
pub struct Session {
    name: String,
    sources: DesignSources,
    timer: Timer,
    library: CellLibrary,
    inc: IncrementalPartitioner<SeqGPasta>,
    exec: Executor,
    policy: RetryPolicy,
    /// `(net, f32 bits)` of every applied [`Edit::SetNetCap`], in order —
    /// replayed by [`DormantSession::restore`] because net caps live in
    /// the netlist, outside the timing snapshot.
    net_cap_journal: Vec<(u32, u32)>,
    updates_done: u32,
    /// Deterministic chaos schedule, if the hosting daemon installed one
    /// (see [`Session::set_chaos`]). Never serialized; the supervisor
    /// reinstalls it after create, restore, and crash recovery.
    chaos: Option<SessionChaos>,
    /// Recycled scratch and output buffers for the per-update quotient
    /// rebuild, so steady-state [`Session::update_timing`] calls stop
    /// touching the allocator once the high-water mark is established.
    quotient_arena: QuotientArena,
}

/// A session-layer fault schedule: the shared [`FaultPlan`] plus the
/// attempt coordinate the supervisor advances on every crash recovery,
/// so a fault that fires at update `i` of attempt `a` does not re-fire
/// forever on the healed session (mirroring executor retry keying).
#[derive(Debug, Clone)]
struct SessionChaos {
    plan: FaultPlan,
    attempt: u32,
}

// The whole point of the type: a Session can cross threads and outlive
// its creating scope. Checked at compile time, here, once.
const _: fn() = || {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<Session>();
};

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("name", &self.name)
            .field("shape", &self.shape())
            .field("updates_done", &self.updates_done)
            .field("epoch", &self.inc.epoch())
            .field("workers", &self.exec.num_workers())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Parse `sources`, run the initial full analysis, and install the
    /// incremental partition cache on the full-space update TDG.
    ///
    /// # Errors
    ///
    /// The parse variants of [`SessionError`] for bad sources,
    /// [`SessionError::Graph`] for combinational loops, and
    /// [`SessionError::Partition`] if the cache install fails.
    pub fn create(
        name: impl Into<String>,
        sources: DesignSources,
        workers: usize,
    ) -> Result<Session, SessionError> {
        let (mut timer, library) = build_timer(&sources)?;
        let opts = PartitionerOptions::default();
        let mut inc = IncrementalPartitioner::new(SeqGPasta::new());
        let full = timer.update_timing();
        inc.install(full.tdg(), &opts)?;
        full.run_sequential();
        drop(full); // returns its buffers to the timer before the move
        Ok(Session {
            name: name.into(),
            sources,
            timer,
            library,
            inc,
            exec: Executor::new(workers.max(1)),
            policy: RetryPolicy::default(),
            net_cap_journal: Vec::new(),
            updates_done: 0,
            chaos: None,
            quotient_arena: QuotientArena::new(),
        })
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sources the session was built from.
    pub fn sources(&self) -> &DesignSources {
        &self.sources
    }

    /// The design's shape (gate/net/port/node counts).
    pub fn shape(&self) -> DesignShape {
        DesignShape::of(&self.timer)
    }

    /// Completed [`update_timing`](Session::update_timing) runs
    /// (surviving evict/restore).
    pub fn updates_done(&self) -> u32 {
        self.updates_done
    }

    /// The partition cache's repair epoch.
    pub fn epoch(&self) -> u64 {
        self.inc.epoch()
    }

    /// Executor worker-thread count.
    pub fn workers(&self) -> usize {
        self.exec.num_workers()
    }

    /// Whether edits are pending (the next update has work to do).
    pub fn has_pending_changes(&self) -> bool {
        self.timer.has_pending_changes()
    }

    /// Install (or clear) a session-layer chaos schedule. The plan is
    /// consulted once per [`update_timing`](Session::update_timing) at
    /// the key `(updates_done, attempt)` — *after* the dirty-cone
    /// partition repair, so an injected panic leaves the session in the
    /// genuinely inconsistent mid-operation state crash-only recovery
    /// must cope with. `attempt` is the hosting supervisor's recovery
    /// count for this session: a fault that fired before a crash keys
    /// differently on the healed session, exactly like executor retries.
    ///
    /// Only [`FaultKind::Panic`] and [`FaultKind::Delay`] are meaningful
    /// at session granularity; `Transient`/`WrongResult` model executor
    /// task failures and are ignored here.
    pub fn set_chaos(&mut self, plan: Option<FaultPlan>, attempt: u32) {
        self.chaos = plan.map(|plan| SessionChaos { plan, attempt });
    }

    /// Consult the chaos schedule for the current update. Takes fields,
    /// not `&self`, because the call site holds the timer's update
    /// handle (a `&mut` borrow of the timer field).
    fn chaos_point(chaos: Option<&SessionChaos>, name: &str, updates_done: u32) {
        let Some(chaos) = chaos else { return };
        match chaos.plan.fault_at(updates_done, chaos.attempt) {
            Some(FaultKind::Panic) => panic!(
                "injected chaos: panic in session `{name}` update {updates_done} \
                 (attempt {})",
                chaos.attempt
            ),
            Some(FaultKind::Delay { micros }) => {
                std::thread::sleep(std::time::Duration::from_micros(u64::from(micros)));
            }
            Some(FaultKind::Transient | FaultKind::WrongResult) | None => {}
        }
    }

    /// Validate and apply one edit. On error nothing is changed.
    ///
    /// # Errors
    ///
    /// [`SessionError::BadEdit`] naming the offending object or value.
    pub fn apply_edit(&mut self, edit: &Edit) -> Result<(), SessionError> {
        let bad = |why: String| Err(SessionError::BadEdit(why));
        match edit {
            Edit::Repower { gate, drive } => {
                if !drive.is_finite() || *drive <= 0.0 {
                    return bad(format!("drive {drive} must be positive and finite"));
                }
                let g = self.resolve_gate(gate)?;
                self.timer.repower_gate(g, *drive);
            }
            Edit::SetNetCap { net, cap_ff } => {
                if !cap_ff.is_finite() || *cap_ff < 0.0 {
                    return bad(format!("wire cap {cap_ff} must be non-negative and finite"));
                }
                if *net as usize >= self.timer.netlist().num_nets() {
                    return bad(format!(
                        "net {net} out of range (design has {} nets)",
                        self.timer.netlist().num_nets()
                    ));
                }
                self.timer.set_net_cap(*net, *cap_ff);
                self.net_cap_journal.push((*net, cap_ff.to_bits()));
            }
            Edit::SetInputDelay { port, delay_ps } => {
                if !delay_ps.is_finite() {
                    return bad(format!("input delay {delay_ps} must be finite"));
                }
                let p = resolve_name(port, self.timer.netlist().input_names(), "input port")?;
                self.timer.set_input_delay(p, *delay_ps);
            }
            Edit::SetOutputDelay { port, delay_ps } => {
                if !delay_ps.is_finite() {
                    return bad(format!("output delay {delay_ps} must be finite"));
                }
                let p = resolve_name(port, self.timer.netlist().output_names(), "output port")?;
                self.timer.set_output_delay(p, *delay_ps);
            }
            Edit::SetClockPeriod { period_ps } => {
                if !period_ps.is_finite() || *period_ps <= 0.0 {
                    return bad(format!(
                        "clock period {period_ps} must be positive and finite"
                    ));
                }
                self.timer.set_clock_period(*period_ps);
            }
        }
        Ok(())
    }

    fn resolve_gate(&self, gate: &str) -> Result<GateId, SessionError> {
        let gates = self.timer.netlist().gates();
        if let Some(i) = gates.iter().position(|g| g.name == gate) {
            return Ok(GateId(i as u32));
        }
        if let Ok(i) = gate.parse::<u32>() {
            if (i as usize) < gates.len() {
                return Ok(GateId(i));
            }
        }
        Err(SessionError::BadEdit(format!(
            "no gate named `{gate}` (and it is not a valid index below {})",
            gates.len()
        )))
    }

    /// Bring timing up to date under `budget`: build the incremental
    /// update TDG, repair the cached partition inside the dirty cone,
    /// and execute the partitioned update through the bounded
    /// recovering executor.
    ///
    /// On an early stop ([`StopCause::DeadlineExpired`] /
    /// [`StopCause::Cancelled`]) the unfinished region's endpoints are
    /// marked *unknown* (NaN) — never stale-but-plausible — and the
    /// whole design is re-marked dirty so a later update (with a fresh
    /// budget) converges to the exact answer.
    ///
    /// # Errors
    ///
    /// [`SessionError::Partition`] if the dirty-cone repair fails,
    /// [`SessionError::Quotient`] if the repaired partition has no
    /// valid quotient.
    pub fn update_timing(&mut self, budget: &RunBudget) -> Result<UpdateOutcome, SessionError> {
        let update = self.timer.update_timing();
        let tasks = update.tdg().num_tasks();
        if tasks == 0 {
            drop(update);
            self.updates_done += 1;
            return Ok(UpdateOutcome {
                stop: StopCause::Completed,
                tasks: 0,
                repair_moved: 0,
                repair_fresh: 0,
                epoch: self.inc.epoch(),
                unknown_endpoints: 0,
            });
        }
        let ids = update.full_space_ids();
        let (stats, sub) = self.inc.repair_and_project(&ids)?;
        Self::chaos_point(self.chaos.as_ref(), &self.name, self.updates_done);
        let quotient = QuotientTdg::build_in(update.tdg(), &sub, &mut self.quotient_arena)
            .map_err(SessionError::Quotient)?;
        let rec = update.run_partitioned_recovering_bounded(
            &self.exec,
            &quotient,
            &FaultPlan::none(),
            &self.policy,
            budget,
        );
        self.quotient_arena.recycle(quotient);
        let unknown_endpoints = if rec.outcome.stop == StopCause::Completed {
            0
        } else {
            // Degrade explicitly: everything the stopped run left stale
            // reads unknown, and the design is re-marked dirty so the
            // next (fresh-budget) update recomputes it.
            update.mark_unknown(&rec);
            (rec.unfinished_endpoints.len() + rec.poisoned_endpoints.len()) as u32
        };
        let stop = rec.outcome.stop;
        drop(update);
        if stop != StopCause::Completed {
            self.timer.invalidate_all();
        }
        self.updates_done += 1;
        Ok(UpdateOutcome {
            stop,
            tasks,
            repair_moved: stats.moved,
            repair_fresh: stats.fresh_partitions,
            epoch: self.inc.epoch(),
            unknown_endpoints,
        })
    }

    /// Setup (late-mode) WNS/TNS and the `k` worst endpoints.
    pub fn report(&self, k: usize) -> TimingReport {
        self.timer.report(k)
    }

    /// Hold (early-mode) WNS/TNS and the `k` worst endpoints.
    pub fn report_hold(&self, k: usize) -> TimingReport {
        self.timer.report_hold(k)
    }

    /// The `k` worst paths through the most critical endpoint, worst
    /// first; empty when the design has no endpoints.
    pub fn worst_paths(&self, k: usize) -> Vec<TimingPath> {
        let report = self.timer.report(1);
        match report.worst.first() {
            Some(endpoint) => k_worst_paths(
                self.timer.graph(),
                self.timer.netlist(),
                self.timer.data(),
                endpoint.node,
                k,
            ),
            None => Vec::new(),
        }
    }

    /// Persist the session through the `GPCKPT01` checkpoint format and
    /// return the [`DormantSession`] residue to restore from. Pending
    /// edits are flushed (one unbounded update) first — the snapshot
    /// stores values, not the dirty set — which preserves bit-identity
    /// with a session that was never evicted: propagation is
    /// deterministic, so updating now or at the next request reaches
    /// the same bits.
    ///
    /// The session itself is left usable; the caller decides whether to
    /// drop it (true eviction) or keep both.
    ///
    /// # Errors
    ///
    /// [`SessionError::Checkpoint`] if the file cannot be written, or
    /// any [`update_timing`](Session::update_timing) error from the
    /// pending-edit flush.
    pub fn evict_to(&mut self, path: &Path) -> Result<DormantSession, SessionError> {
        if self.timer.has_pending_changes() {
            self.update_timing(&RunBudget::unbounded())?;
        }
        let ckpt = UpdateCheckpoint {
            circuit: self.name.clone(),
            scale_bits: self.sources.netlist_bits(),
            seed: self.sources.constraint_bits(),
            iterations_done: self.updates_done,
            shape: DesignShape::of(&self.timer),
            snapshot: self.timer.snapshot(),
            cache: self.inc.export_cache().ok(),
        };
        write_checkpoint(path, &ckpt)?;
        Ok(DormantSession {
            name: self.name.clone(),
            sources: self.sources.clone(),
            net_cap_journal: self.net_cap_journal.clone(),
            checkpoint: path.to_path_buf(),
        })
    }

    /// The cell library the session analyses against.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Direct read access to the timer (report details, graph, data).
    pub fn timer(&self) -> &Timer {
        &self.timer
    }
}

fn resolve_name(name: &str, names: &[String], what: &str) -> Result<PortId, SessionError> {
    if let Some(i) = names.iter().position(|n| n == name) {
        return Ok(PortId(i as u32));
    }
    if let Ok(i) = name.parse::<u32>() {
        if (i as usize) < names.len() {
            return Ok(PortId(i));
        }
    }
    Err(SessionError::BadEdit(format!(
        "no {what} named `{name}` (and it is not a valid index below {})",
        names.len()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    const FIXTURE: &str = "\
module fixture (a, b, y);
  input a, b;
  output y;
  wire n0, n1, n2;

  NAND2 u0 (.a(a), .b(b), .y(n0));
  INV u1 (.a(n0), .y(n1));
  NAND2 u2 (.a(n1), .b(b), .y(n2));
  INV u3 (.a(n2), .y(y));
endmodule
";

    fn tmp_ckpt(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "gpasta-session-test-{}-{tag}-{n}.ckpt",
            std::process::id()
        ))
    }

    fn fixture_session(name: &str) -> Session {
        Session::create(name, DesignSources::verilog_only(FIXTURE), 2).expect("fixture parses")
    }

    #[test]
    fn create_runs_the_initial_full_analysis() {
        let s = fixture_session("t0");
        let report = s.report(2);
        assert!(report.wns_ps.is_finite());
        assert_eq!(s.updates_done(), 0);
        assert_eq!(s.shape().gates, 4);
    }

    #[test]
    fn edits_by_name_and_by_index_agree() {
        let mut by_name = fixture_session("by-name");
        let mut by_index = fixture_session("by-index");
        for (s, gate) in [(&mut by_name, "u2"), (&mut by_index, "2")] {
            s.apply_edit(&Edit::Repower {
                gate: gate.into(),
                drive: 2.0,
            })
            .expect("valid edit");
            s.update_timing(&RunBudget::unbounded()).expect("update");
        }
        assert_eq!(
            by_name.report(1).wns_ps.to_bits(),
            by_index.report(1).wns_ps.to_bits()
        );
    }

    #[test]
    fn bad_edits_are_typed_and_leave_state_unchanged() {
        let mut s = fixture_session("bad-edit");
        let before = s.report(1);
        for edit in [
            Edit::Repower {
                gate: "nope".into(),
                drive: 2.0,
            },
            Edit::Repower {
                gate: "u0".into(),
                drive: -1.0,
            },
            Edit::Repower {
                gate: "u0".into(),
                drive: f32::NAN,
            },
            Edit::SetNetCap {
                net: 999,
                cap_ff: 1.0,
            },
            Edit::SetNetCap {
                net: 0,
                cap_ff: f32::INFINITY,
            },
            Edit::SetInputDelay {
                port: "zz".into(),
                delay_ps: 5.0,
            },
            Edit::SetClockPeriod { period_ps: 0.0 },
        ] {
            let err = s.apply_edit(&edit).expect_err("must be rejected");
            assert!(matches!(err, SessionError::BadEdit(_)), "{edit:?}: {err}");
        }
        assert!(!s.has_pending_changes());
        assert_eq!(s.report(1), before);
    }

    #[test]
    fn zero_deadline_degrades_and_recovers() {
        let mut s = fixture_session("deadline");
        s.apply_edit(&Edit::Repower {
            gate: "u1".into(),
            drive: 4.0,
        })
        .expect("valid");
        let out = s
            .update_timing(&RunBudget::unbounded().with_deadline(Duration::ZERO))
            .expect("bounded update");
        assert_eq!(out.stop, StopCause::DeadlineExpired);
        assert!(out.unknown_endpoints > 0);
        assert!(s.report(1).wns_ps.is_nan(), "degraded endpoints read NaN");

        // A fresh unbounded update converges to the exact answer.
        let out = s.update_timing(&RunBudget::unbounded()).expect("update");
        assert_eq!(out.stop, StopCause::Completed);
        let healed = s.report(1).wns_ps;
        assert!(healed.is_finite());

        // Reference: the same edit, never interrupted.
        let mut reference = fixture_session("deadline-ref");
        reference
            .apply_edit(&Edit::Repower {
                gate: "u1".into(),
                drive: 4.0,
            })
            .expect("valid");
        reference
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        assert_eq!(healed.to_bits(), reference.report(1).wns_ps.to_bits());
    }

    #[test]
    fn evict_restore_is_bit_identical_including_net_caps() {
        let edits = [
            Edit::Repower {
                gate: "u1".into(),
                drive: 2.0,
            },
            Edit::SetNetCap {
                net: 1,
                cap_ff: 7.5,
            },
        ];
        let late_edit = Edit::Repower {
            gate: "u3".into(),
            drive: 0.5,
        };

        // Reference: everything in one uninterrupted session.
        let mut reference = fixture_session("ref");
        for e in &edits {
            reference.apply_edit(e).expect("valid");
        }
        reference
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        reference.apply_edit(&late_edit).expect("valid");
        reference
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        let want = reference.report(4);

        // Same flow, evicted and restored in the middle.
        let path = tmp_ckpt("bitident");
        let mut s = fixture_session("ref");
        for e in &edits {
            s.apply_edit(e).expect("valid");
        }
        s.update_timing(&RunBudget::unbounded()).expect("update");
        let dormant = s.evict_to(&path).expect("evict");
        drop(s);
        let mut restored = dormant.restore(2).expect("restore");
        assert_eq!(restored.updates_done(), 1);
        restored.apply_edit(&late_edit).expect("valid");
        restored
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        let got = restored.report(4);

        assert_eq!(got.wns_ps.to_bits(), want.wns_ps.to_bits());
        assert_eq!(got.tns_ps.to_bits(), want.tns_ps.to_bits());
        assert_eq!(restored.epoch(), reference.epoch());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evict_flushes_pending_edits() {
        let path = tmp_ckpt("flush");
        let mut s = fixture_session("flush");
        s.apply_edit(&Edit::Repower {
            gate: "u0".into(),
            drive: 3.0,
        })
        .expect("valid");
        assert!(s.has_pending_changes());
        let dormant = s.evict_to(&path).expect("evict");
        assert!(!s.has_pending_changes(), "eviction flushed the edit");
        let restored = dormant.restore(2).expect("restore");
        assert_eq!(
            restored.report(1).wns_ps.to_bits(),
            s.report(1).wns_ps.to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_rejects_edited_sources() {
        let path = tmp_ckpt("tamper");
        let mut s = fixture_session("tamper");
        s.update_timing(&RunBudget::unbounded()).expect("update");
        let dormant = s.evict_to(&path).expect("evict");

        let mut tampered = dormant.clone();
        tampered.sources.verilog.push('\n');
        match tampered.restore(2) {
            Err(SessionError::Checkpoint(CheckpointError::Mismatch(why))) => {
                assert!(why.contains("netlist"), "{why}")
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }

        let mut reclocked = dormant.clone();
        reclocked.sources.clock_period_ps = 500.0;
        assert!(matches!(
            reclocked.restore(2),
            Err(SessionError::Checkpoint(CheckpointError::Mismatch(_)))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn worst_paths_trace_the_critical_endpoint() {
        let mut s = fixture_session("paths");
        s.update_timing(&RunBudget::unbounded()).expect("update");
        let paths = s.worst_paths(2);
        assert!(!paths.is_empty());
        assert_eq!(
            paths[0].slack_ps.to_bits(),
            s.report(1).wns_ps.to_bits(),
            "worst path slack equals WNS"
        );
    }
}
