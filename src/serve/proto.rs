//! The wire protocol shared by the HTTP and JSON-RPC stdio frontends.
//!
//! Both frontends funnel into [`dispatch`]: a method name plus a JSON
//! params object in, a JSON result (or an [`ApiError`] with an HTTP
//! status) out. Requests are hand-parsed from [`Value`] trees — absent
//! fields produce targeted `bad_request` errors, never panics — and
//! responses are built as `Value` trees so both frontends serialize the
//! same bytes.
//!
//! Timing values cross the wire twice: as plain JSON numbers
//! (`wns_ps`), for humans, and as zero-padded hex strings of the
//! underlying `f32` bit pattern (`wns_bits`), for bit-identity checks —
//! JSON numbers cannot carry NaN (it serializes as `null`), and the
//! differential tests compare bits, not decimals.

use std::time::Duration;

use serde_json::Value;

use crate::sched::{RunBudget, StopCause};
use crate::session::{DesignSources, Edit, SessionError, UpdateOutcome};
use crate::sta::{TimingPath, TimingReport};

use super::registry::{Registry, RegistryError, SessionState};

/// A request failed; carries the HTTP status the error maps to, a
/// stable machine-readable kind, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (the stdio frontend forwards it verbatim).
    pub status: u16,
    /// Stable machine-readable error tag.
    pub kind: String,
    /// Human-readable description.
    pub message: String,
    /// Seconds the client should wait before retrying; set on shed
    /// (503) responses. The HTTP frontend emits it as a `Retry-After`
    /// header, the stdio frontend as a `retry_after_s` field.
    pub retry_after: Option<u64>,
}

impl ApiError {
    /// A 400 with the given kind.
    pub fn bad_request(kind: &str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            kind: kind.to_string(),
            message: message.into(),
            retry_after: None,
        }
    }

    /// The `{"error": {...}}` body both frontends send.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("kind", Value::String(self.kind.clone())),
            ("message", Value::String(self.message.clone())),
            ("status", Value::Number(f64::from(self.status))),
        ];
        if let Some(secs) = self.retry_after {
            fields.push(("retry_after_s", num(secs as f64)));
        }
        obj(vec![("error", obj(fields))])
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.status, self.kind, self.message)
    }
}

impl From<RegistryError> for ApiError {
    fn from(e: RegistryError) -> Self {
        let (status, kind, retry_after) = match &e {
            RegistryError::NotFound(_) => (404, "not_found", None),
            RegistryError::NotLive(_) => (409, "not_live", None),
            RegistryError::Duplicate(_) => (409, "duplicate", None),
            RegistryError::Full { .. } => (503, "capacity", Some(2)),
            RegistryError::BadName(_) => (400, "bad_name", None),
            RegistryError::Session(s) => {
                (if s.is_client_error() { 400 } else { 500 }, s.kind(), None)
            }
            // A recovered crash is immediately retryable; an
            // unrecovered one quarantined the slot.
            RegistryError::Crashed { recovered, .. } => (
                500,
                "session_crashed",
                if *recovered { Some(0) } else { None },
            ),
            RegistryError::Quarantined { .. } => (503, "session_quarantined", None),
            RegistryError::Overloaded { .. } => (503, "overloaded", Some(1)),
        };
        ApiError {
            status,
            kind: kind.to_string(),
            message: e.to_string(),
            retry_after,
        }
    }
}

impl From<SessionError> for ApiError {
    fn from(e: SessionError) -> Self {
        ApiError::from(RegistryError::Session(e))
    }
}

// ---- Value construction helpers -----------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn string(s: impl Into<String>) -> Value {
    Value::String(s.into())
}

fn f32_bits(v: f32) -> Value {
    string(format!("{:08x}", v.to_bits()))
}

// ---- request parsing helpers --------------------------------------------

fn req_str<'a>(params: &'a Value, key: &str) -> Result<&'a str, ApiError> {
    params.get(key).and_then(Value::as_str).ok_or_else(|| {
        ApiError::bad_request("missing_field", format!("`{key}` (string) is required"))
    })
}

fn opt_str<'a>(params: &'a Value, key: &str) -> Option<&'a str> {
    params.get(key).and_then(Value::as_str)
}

fn req_f64(params: &Value, key: &str) -> Result<f64, ApiError> {
    params.get(key).and_then(Value::as_f64).ok_or_else(|| {
        ApiError::bad_request("missing_field", format!("`{key}` (number) is required"))
    })
}

fn opt_f64(params: &Value, key: &str) -> Result<Option<f64>, ApiError> {
    match params.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ApiError::bad_request("bad_field", format!("`{key}` must be a number"))),
    }
}

fn opt_usize(params: &Value, key: &str, default: usize) -> Result<usize, ApiError> {
    match opt_f64(params, key)? {
        None => Ok(default),
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= 1e9 => Ok(n as usize),
        Some(n) => Err(ApiError::bad_request(
            "bad_field",
            format!("`{key}` must be a small non-negative integer, got {n}"),
        )),
    }
}

// ---- response builders ---------------------------------------------------

fn stop_str(stop: &StopCause) -> &'static str {
    match stop {
        StopCause::Completed => "completed",
        StopCause::DeadlineExpired => "deadline_expired",
        StopCause::Cancelled => "cancelled",
    }
}

fn report_value(rep: &TimingReport) -> Value {
    obj(vec![
        ("wns_ps", num(f64::from(rep.wns_ps))),
        ("wns_bits", f32_bits(rep.wns_ps)),
        ("tns_ps", num(f64::from(rep.tns_ps))),
        ("tns_bits", f32_bits(rep.tns_ps)),
        ("num_endpoints", num(rep.num_endpoints as f64)),
        (
            "worst",
            Value::Array(
                rep.worst
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("node", num(f64::from(e.node.0))),
                            ("name", string(&e.name)),
                            ("slack_ps", num(f64::from(e.slack_ps))),
                            ("slack_bits", f32_bits(e.slack_ps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn path_value(path: &TimingPath) -> Value {
    obj(vec![
        ("slack_ps", num(f64::from(path.slack_ps))),
        ("slack_bits", f32_bits(path.slack_ps)),
        (
            "steps",
            Value::Array(
                path.steps
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("node", num(f64::from(s.node.0))),
                            ("location", string(&s.location)),
                            ("rise", Value::Bool(s.rise)),
                            ("arrival_ps", num(f64::from(s.arrival_ps))),
                            ("incr_ps", num(f64::from(s.incr_ps))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn outcome_value(out: &UpdateOutcome) -> Value {
    obj(vec![
        ("stop", string(stop_str(&out.stop))),
        ("tasks", num(out.tasks as f64)),
        ("repair_moved", num(out.repair_moved as f64)),
        ("repair_fresh", num(out.repair_fresh as f64)),
        ("epoch", num(out.epoch as f64)),
        ("unknown_endpoints", num(f64::from(out.unknown_endpoints))),
    ])
}

// ---- edits ---------------------------------------------------------------

fn parse_edit(v: &Value) -> Result<Edit, ApiError> {
    let op = req_str(v, "op")?;
    match op {
        "repower" => Ok(Edit::Repower {
            gate: req_str(v, "gate")?.to_string(),
            drive: req_f64(v, "drive")? as f32,
        }),
        "set_net_cap" => {
            let net = req_f64(v, "net")?;
            if net < 0.0 || net.fract() != 0.0 || net > f64::from(u32::MAX) {
                return Err(ApiError::bad_request(
                    "bad_field",
                    format!("`net` must be a non-negative integer, got {net}"),
                ));
            }
            Ok(Edit::SetNetCap {
                net: net as u32,
                cap_ff: req_f64(v, "cap_ff")? as f32,
            })
        }
        "set_input_delay" => Ok(Edit::SetInputDelay {
            port: req_str(v, "port")?.to_string(),
            delay_ps: req_f64(v, "delay_ps")? as f32,
        }),
        "set_output_delay" => Ok(Edit::SetOutputDelay {
            port: req_str(v, "port")?.to_string(),
            delay_ps: req_f64(v, "delay_ps")? as f32,
        }),
        "set_clock_period" => Ok(Edit::SetClockPeriod {
            period_ps: req_f64(v, "period_ps")? as f32,
        }),
        other => Err(ApiError::bad_request(
            "bad_op",
            format!(
                "unknown edit op `{other}`; expected repower, set_net_cap, \
                 set_input_delay, set_output_delay, or set_clock_period"
            ),
        )),
    }
}

// ---- dispatch ------------------------------------------------------------

/// Execute one request against the registry. `method` is the wire
/// method name (the HTTP router and the JSON-RPC loop both map onto
/// these); `params` is the request's JSON object.
///
/// Session-touching methods are admission-controlled: past the
/// in-flight budget they shed with `503 overloaded` + `Retry-After`
/// instead of queueing. Probes (`status`, `healthz`, `readyz`) and
/// `shutdown` bypass admission so an overloaded daemon still answers
/// its operators.
///
/// # Errors
///
/// [`ApiError`] carrying the HTTP status, a stable error kind, and a
/// message; both frontends render it as `{"error": {...}}`.
pub fn dispatch(registry: &Registry, method: &str, params: &Value) -> Result<Value, ApiError> {
    registry.count_request();
    let _admission = match method {
        "status" | "healthz" | "readyz" | "shutdown" => None,
        _ => Some(registry.try_admit()?),
    };
    match method {
        "healthz" => Ok(obj(vec![("ok", Value::Bool(true))])),
        "readyz" => {
            if registry.is_shutting_down() {
                return Err(ApiError {
                    status: 503,
                    kind: "shutting_down".to_string(),
                    message: "daemon is shutting down".to_string(),
                    retry_after: None,
                });
            }
            if !registry.spool_writable() {
                return Err(ApiError {
                    status: 503,
                    kind: "spool_unwritable".to_string(),
                    message: format!(
                        "spool directory `{}` is not writable; checkpoints cannot be taken",
                        registry.spool().display()
                    ),
                    retry_after: Some(5),
                });
            }
            let rows = registry.list();
            Ok(obj(vec![
                ("ready", Value::Bool(true)),
                ("sessions", num(rows.len() as f64)),
                ("max_sessions", num(registry.max_sessions() as f64)),
                ("inflight", num(registry.inflight() as f64)),
                ("max_inflight", num(registry.max_inflight() as f64)),
            ]))
        }
        "status" => {
            let rows = registry.list();
            let live = rows
                .iter()
                .filter(|r| r.state == SessionState::Live)
                .count();
            let quarantined = rows
                .iter()
                .filter(|r| r.state == SessionState::Quarantined)
                .count();
            Ok(obj(vec![
                ("ok", Value::Bool(true)),
                ("sessions", num(rows.len() as f64)),
                ("live", num(live as f64)),
                ("dormant", num((rows.len() - live - quarantined) as f64)),
                ("quarantined", num(quarantined as f64)),
                ("requests", num(registry.requests_served() as f64)),
                ("inflight", num(registry.inflight() as f64)),
                ("crashes", num(registry.crashes_total() as f64)),
                ("recoveries", num(registry.recoveries_total() as f64)),
                ("checkpoints", num(registry.checkpoints_total() as f64)),
                ("workers", num(registry.workers() as f64)),
                ("max_sessions", num(registry.max_sessions() as f64)),
                ("shutting_down", Value::Bool(registry.is_shutting_down())),
            ]))
        }
        "list_sessions" => Ok(obj(vec![(
            "sessions",
            Value::Array(
                registry
                    .list()
                    .into_iter()
                    .map(|row| {
                        obj(vec![
                            ("name", string(&row.name)),
                            ("state", string(row.state.as_str())),
                            ("recoveries", num(f64::from(row.recoveries))),
                            (
                                "checkpoint",
                                match row.checkpoint {
                                    Some(p) => string(p.display().to_string()),
                                    None => Value::Null,
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])),
        "create_session" => {
            let name = req_str(params, "name")?;
            let verilog = req_str(params, "verilog")?;
            let sources = DesignSources {
                verilog: verilog.to_string(),
                liberty: opt_str(params, "liberty").map(str::to_string),
                sdc: opt_str(params, "sdc").map(str::to_string),
                clock_period_ps: match opt_f64(params, "clock_ps")? {
                    Some(ps) if ps.is_finite() && ps > 0.0 => ps as f32,
                    Some(ps) => {
                        return Err(ApiError::bad_request(
                            "bad_field",
                            format!("`clock_ps` must be positive and finite, got {ps}"),
                        ))
                    }
                    None => 1_000.0,
                },
            };
            let arc = registry.create(name, sources)?;
            let session = arc.lock();
            let shape = session.shape();
            Ok(obj(vec![
                ("name", string(name)),
                (
                    "shape",
                    obj(vec![
                        ("gates", num(f64::from(shape.gates))),
                        ("nets", num(f64::from(shape.nets))),
                        ("inputs", num(f64::from(shape.inputs))),
                        ("outputs", num(f64::from(shape.outputs))),
                        ("nodes", num(f64::from(shape.nodes))),
                    ]),
                ),
                ("workers", num(session.workers() as f64)),
                ("report", report_value(&session.report(0))),
            ]))
        }
        "evict_session" => {
            let name = req_str(params, "name")?;
            let dormant = registry.evict(name)?;
            Ok(obj(vec![
                ("name", string(name)),
                ("state", string("dormant")),
                (
                    "checkpoint",
                    string(dormant.checkpoint_path().display().to_string()),
                ),
            ]))
        }
        "restore_session" => {
            let name = req_str(params, "name")?;
            let arc = registry.restore(name)?;
            let session = arc.lock();
            Ok(obj(vec![
                ("name", string(name)),
                ("state", string("live")),
                ("updates_done", num(f64::from(session.updates_done()))),
                ("epoch", num(session.epoch() as f64)),
            ]))
        }
        "edit_session" => {
            let name = req_str(params, "name")?;
            let edits_value = params.get("edits").ok_or_else(|| {
                ApiError::bad_request("missing_field", "`edits` (array) is required")
            })?;
            let items = edits_value
                .as_array()
                .ok_or_else(|| ApiError::bad_request("bad_field", "`edits` must be an array"))?;
            let mut edits = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                edits.push(parse_edit(item).map_err(|mut e| {
                    e.message = format!("edits[{i}]: {}", e.message);
                    e
                })?);
            }
            // Edits apply in order; on a rejected edit the earlier ones
            // stay applied (and pending), and the error names the
            // offending index so the client can resubmit from there.
            // Supervised: the edits are journaled for crash replay.
            let receipt = registry.apply_edits(name, &edits)?;
            if let Some((i, e)) = receipt.rejected {
                let mut api = ApiError::from(e);
                api.message = format!("edits[{i}]: {}", api.message);
                return Err(api);
            }
            Ok(obj(vec![
                ("name", string(name)),
                ("applied", num(receipt.applied as f64)),
                ("pending", Value::Bool(receipt.pending)),
            ]))
        }
        "update_timing" => {
            let name = req_str(params, "name")?;
            let budget = match opt_f64(params, "deadline_ms")? {
                Some(ms) if ms.is_finite() && ms >= 0.0 => {
                    RunBudget::unbounded().with_deadline(Duration::from_secs_f64(ms / 1_000.0))
                }
                Some(ms) => {
                    return Err(ApiError::bad_request(
                        "bad_field",
                        format!("`deadline_ms` must be a non-negative number, got {ms}"),
                    ))
                }
                None => RunBudget::unbounded(),
            };
            // Supervised: a panic mid-update (the long pole for crash
            // exposure) is caught and the session auto-restored.
            let (out, report) = registry.with_live(name, |session| {
                session
                    .update_timing(&budget)
                    .map(|out| (out, session.report(0)))
            })??;
            Ok(obj(vec![
                ("name", string(name)),
                ("outcome", outcome_value(&out)),
                ("report", report_value(&report)),
            ]))
        }
        "report" => {
            let name = req_str(params, "name")?;
            let k = opt_usize(params, "k", 5)?;
            let mode = opt_str(params, "mode").unwrap_or("late");
            let hold = match mode {
                "late" | "setup" => false,
                "early" | "hold" => true,
                other => {
                    return Err(ApiError::bad_request(
                        "bad_field",
                        format!("`mode` must be late/setup or early/hold, got `{other}`"),
                    ))
                }
            };
            let rep = registry.with_live(name, |session| {
                if hold {
                    session.report_hold(k)
                } else {
                    session.report(k)
                }
            })?;
            Ok(obj(vec![
                ("name", string(name)),
                ("mode", string(mode)),
                ("report", report_value(&rep)),
            ]))
        }
        "paths" => {
            let name = req_str(params, "name")?;
            let k = opt_usize(params, "k", 1)?;
            let paths = registry.with_live(name, |session| {
                Value::Array(session.worst_paths(k).iter().map(path_value).collect())
            })?;
            Ok(obj(vec![("name", string(name)), ("paths", paths)]))
        }
        "remove_session" => {
            let name = req_str(params, "name")?;
            registry.remove(name)?;
            Ok(obj(vec![
                ("name", string(name)),
                ("state", string("removed")),
            ]))
        }
        "shutdown" => {
            registry.request_shutdown();
            Ok(obj(vec![("ok", Value::Bool(true))]))
        }
        other => Err(ApiError {
            status: 404,
            kind: "no_such_method".to_string(),
            message: format!("unknown method `{other}`"),
            retry_after: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const FIXTURE: &str = "\
module proto_fixture (a, b, y);
  input a, b;
  output y;
  wire n0, n1;
  NAND2 u0 (.a(a), .b(b), .y(n0));
  INV u1 (.a(n0), .y(n1));
  INV u2 (.a(n1), .y(y));
endmodule
";

    fn params(pairs: Vec<(&str, Value)>) -> Value {
        obj(pairs)
    }

    fn registry(tag: &str) -> (Registry, PathBuf) {
        let spool =
            std::env::temp_dir().join(format!("gpasta-proto-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&spool).expect("spool");
        (Registry::new(spool.clone(), 2, 8), spool)
    }

    #[test]
    fn create_edit_update_report_round_trip() {
        let (reg, spool) = registry("round");
        let created = dispatch(
            &reg,
            "create_session",
            &params(vec![("name", string("s1")), ("verilog", string(FIXTURE))]),
        )
        .expect("create");
        assert_eq!(created["shape"]["gates"], 3u32);

        dispatch(
            &reg,
            "edit_session",
            &params(vec![
                ("name", string("s1")),
                (
                    "edits",
                    Value::Array(vec![obj(vec![
                        ("op", string("repower")),
                        ("gate", string("u1")),
                        ("drive", num(2.0)),
                    ])]),
                ),
            ]),
        )
        .expect("edit");

        let updated =
            dispatch(&reg, "update_timing", &params(vec![("name", string("s1"))])).expect("update");
        assert_eq!(updated["outcome"]["stop"], "completed");

        let report = dispatch(
            &reg,
            "report",
            &params(vec![("name", string("s1")), ("k", num(2.0))]),
        )
        .expect("report");
        assert_eq!(
            report["report"]["wns_bits"], updated["report"]["wns_bits"],
            "report and update agree bit-for-bit"
        );
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn errors_carry_status_and_kind() {
        let (reg, spool) = registry("errors");
        let missing = dispatch(&reg, "report", &params(vec![("name", string("nope"))]))
            .expect_err("unknown session");
        assert_eq!(missing.status, 404);
        assert_eq!(missing.kind, "not_found");

        let bad = dispatch(&reg, "create_session", &params(vec![("name", string("x"))]))
            .expect_err("missing verilog");
        assert_eq!(bad.status, 400);

        let nomethod = dispatch(&reg, "frobnicate", &params(vec![])).expect_err("unknown method");
        assert_eq!(nomethod.kind, "no_such_method");

        dispatch(
            &reg,
            "create_session",
            &params(vec![("name", string("x")), ("verilog", string(FIXTURE))]),
        )
        .expect("create");
        let bad_edit = dispatch(
            &reg,
            "edit_session",
            &params(vec![
                ("name", string("x")),
                (
                    "edits",
                    Value::Array(vec![obj(vec![
                        ("op", string("repower")),
                        ("gate", string("ghost")),
                        ("drive", num(2.0)),
                    ])]),
                ),
            ]),
        )
        .expect_err("bad gate");
        assert_eq!(bad_edit.status, 400);
        assert!(bad_edit.message.contains("edits[0]"), "{bad_edit}");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn evict_and_restore_over_the_wire() {
        let (reg, spool) = registry("evict");
        dispatch(
            &reg,
            "create_session",
            &params(vec![("name", string("e1")), ("verilog", string(FIXTURE))]),
        )
        .expect("create");
        let before =
            dispatch(&reg, "report", &params(vec![("name", string("e1"))])).expect("report");

        let evicted =
            dispatch(&reg, "evict_session", &params(vec![("name", string("e1"))])).expect("evict");
        assert_eq!(evicted["state"], "dormant");
        let denied =
            dispatch(&reg, "report", &params(vec![("name", string("e1"))])).expect_err("dormant");
        assert_eq!(denied.status, 409);

        let restored = dispatch(
            &reg,
            "restore_session",
            &params(vec![("name", string("e1"))]),
        )
        .expect("restore");
        assert_eq!(restored["state"], "live");
        let after =
            dispatch(&reg, "report", &params(vec![("name", string("e1"))])).expect("report");
        assert_eq!(
            before["report"]["wns_bits"], after["report"]["wns_bits"],
            "restore is bit-identical"
        );
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn probes_answer_and_admission_sheds_with_retry_after() {
        let (reg, spool) = registry("probes");
        let reg = reg.with_admission(1);
        let health = dispatch(&reg, "healthz", &params(vec![])).expect("healthz");
        assert_eq!(health["ok"], Value::Bool(true));
        let ready = dispatch(&reg, "readyz", &params(vec![])).expect("readyz");
        assert_eq!(ready["ready"], Value::Bool(true));

        // Hold the whole in-flight budget: session methods shed, probes
        // still answer.
        let _held = reg.try_admit().expect("hold the budget");
        let shed = dispatch(&reg, "list_sessions", &params(vec![])).expect_err("shed");
        assert_eq!(shed.status, 503);
        assert_eq!(shed.kind, "overloaded");
        assert_eq!(shed.retry_after, Some(1));
        assert!(shed.to_value()["error"]["retry_after_s"].as_f64().is_some());
        dispatch(&reg, "healthz", &params(vec![])).expect("probe bypasses admission");
        dispatch(&reg, "status", &params(vec![])).expect("status bypasses admission");

        reg.request_shutdown();
        let draining = dispatch(&reg, "readyz", &params(vec![])).expect_err("not ready");
        assert_eq!(draining.kind, "shutting_down");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn crashed_session_error_is_typed_and_the_retry_succeeds() {
        let (reg, spool) = registry("crash-wire");
        dispatch(
            &reg,
            "create_session",
            &params(vec![("name", string("c1")), ("verilog", string(FIXTURE))]),
        )
        .expect("create");
        let err = reg
            .with_live("c1", |_s| panic!("wire-level injected panic"))
            .map(|_: ()| ())
            .expect_err("crash");
        let api = ApiError::from(err);
        assert_eq!(api.status, 500);
        assert_eq!(api.kind, "session_crashed");
        assert_eq!(api.retry_after, Some(0), "recovered crash is retryable now");

        // The slot healed: the wire path serves the retry and rows show
        // the recovery count.
        let report =
            dispatch(&reg, "report", &params(vec![("name", string("c1"))])).expect("retry");
        assert!(report["report"]["wns_bits"].as_str().is_some());
        let listed = dispatch(&reg, "list_sessions", &params(vec![])).expect("list");
        assert_eq!(listed["sessions"][0]["state"], "live");
        assert_eq!(listed["sessions"][0]["recoveries"], 1u32);
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn deadline_zero_returns_structured_degradation() {
        let (reg, spool) = registry("deadline");
        dispatch(
            &reg,
            "create_session",
            &params(vec![("name", string("d1")), ("verilog", string(FIXTURE))]),
        )
        .expect("create");
        dispatch(
            &reg,
            "edit_session",
            &params(vec![
                ("name", string("d1")),
                (
                    "edits",
                    Value::Array(vec![obj(vec![
                        ("op", string("repower")),
                        ("gate", string("u0")),
                        ("drive", num(3.0)),
                    ])]),
                ),
            ]),
        )
        .expect("edit");
        let out = dispatch(
            &reg,
            "update_timing",
            &params(vec![("name", string("d1")), ("deadline_ms", num(0.0))]),
        )
        .expect("bounded update is a 2xx, not an error");
        assert_eq!(out["outcome"]["stop"], "deadline_expired");
        // Degraded WNS is NaN in the tree (the serializer renders it as
        // JSON null); the bits field still carries the exact pattern.
        assert!(out["report"]["wns_ps"].as_f64().is_some_and(f64::is_nan));
        std::fs::remove_dir_all(&spool).ok();
    }
}
