//! The HTTP/1.1 frontend of `gpasta serve`.
//!
//! A deliberately small server — no external dependencies exist in this
//! workspace, so it is hand-rolled on [`std::net::TcpListener`]: one
//! thread per connection, bodies bounded by `Content-Length`. A client
//! that sends `Connection: keep-alive` may reuse its connection for up
//! to [`HttpLimits::keep_alive_requests`] requests, idling at most
//! [`HttpLimits::idle_timeout`] between them; anything else (including
//! any parse error) is answered `Connection: close` and the connection
//! ends after one response. Every route maps onto a
//! [`super::proto::dispatch`] method, with path segments and query
//! parameters merged into the request's JSON params:
//!
//! | Route | Method |
//! |---|---|
//! | `GET /healthz` | `healthz` |
//! | `GET /readyz` | `readyz` |
//! | `GET /status` | `status` |
//! | `GET /sessions` | `list_sessions` |
//! | `POST /sessions` | `create_session` |
//! | `DELETE /sessions/{name}` | `evict_session` |
//! | `POST /sessions/{name}/restore` | `restore_session` |
//! | `POST /sessions/{name}/edit` | `edit_session` |
//! | `POST /sessions/{name}/update` | `update_timing` |
//! | `GET /sessions/{name}/report?k=N&mode=late` | `report` |
//! | `GET /sessions/{name}/paths?k=N` | `paths` |
//! | `POST /shutdown` | `shutdown` |
//!
//! The parser ([`parse_request`]) treats every byte off the socket as
//! adversarial: lines are read through a fixed head budget (never an
//! unbounded `read_line`), `Content-Length` must be present at most
//! once, non-UTF-8 anywhere is a clean 400, and a socket that trickles
//! slower than the read deadline gets 408 — malformed input produces a
//! status code, never a worker-thread death.
//!
//! Overload: past `max_connections` the accept loop sheds immediately
//! with `503` + `Retry-After` (never queues); past the in-flight budget
//! [`super::proto::dispatch`] sheds the same way.
//!
//! Shutdown: the handler thread that serves `POST /shutdown` sets the
//! registry flag, then opens a throwaway connection to the listener to
//! wake the blocked `accept`; the accept loop observes the flag, drains
//! its worker threads, and runs the registry's persist pass.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use gpasta_check::sync::{AtomicU64, Ordering};
use serde_json::Value;

use super::proto::{dispatch, ApiError};
use super::registry::Registry;
use super::ServeError;

/// Byte and time bounds the request parser enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Largest accepted request head (request line + headers).
    pub max_head_bytes: usize,
    /// Largest accepted request body (design uploads).
    pub max_body_bytes: usize,
    /// Socket read deadline; a body trickling in slower than this gets
    /// 408 instead of parking the worker thread forever. `None`
    /// disables the deadline.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline for the response.
    pub write_timeout: Option<Duration>,
    /// Most requests served over one `Connection: keep-alive`
    /// connection before the server answers `Connection: close`; `0`
    /// disables keep-alive entirely (every response closes).
    pub keep_alive_requests: u64,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server closes it. Unlike a mid-request stall (408),
    /// idling between requests is legal, so the close is silent. `None`
    /// falls back to `read_timeout`.
    pub idle_timeout: Option<Duration>,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 64 * 1024,
            max_body_bytes: 16 * 1024 * 1024,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            keep_alive_requests: 32,
            idle_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Run the HTTP frontend until a `POST /shutdown` arrives, then spool
/// every live session and return. Prints the bound address on stdout
/// before accepting (tests bind port 0 and parse the line).
/// `max_connections` bounds concurrent connection threads (`0` =
/// unlimited); excess connections are shed with 503.
///
/// # Errors
///
/// [`ServeError::Bind`] when the address cannot be bound; I/O errors on
/// individual connections are per-request (the connection is dropped,
/// the server keeps running).
pub fn run_http(
    registry: Arc<Registry>,
    addr: &str,
    limits: HttpLimits,
    max_connections: usize,
) -> Result<(), ServeError> {
    let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
        addr: addr.to_string(),
        source,
    })?;
    let local = listener.local_addr().map_err(|source| ServeError::Bind {
        addr: addr.to_string(),
        source,
    })?;
    println!("gpasta serve listening on http://{local}");
    let _ = std::io::stdout().flush();

    let active = Arc::new(AtomicU64::new(0));
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if registry.is_shutting_down() {
            break;
        }
        let mut stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let now = active.fetch_add(1, Ordering::Relaxed) + 1;
        if max_connections > 0 && now > max_connections as u64 {
            active.fetch_sub(1, Ordering::Relaxed);
            // Off the accept thread: a shed client that never reads
            // must not stall accepts for up to the write timeout.
            let write_timeout = limits.write_timeout;
            thread::spawn(move || shed_connection(&mut stream, max_connections, write_timeout));
            continue;
        }
        let reg = registry.clone();
        let act = active.clone();
        workers.push(thread::spawn(move || {
            handle_connection(&reg, stream, local, &limits);
            act.fetch_sub(1, Ordering::Relaxed);
        }));
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
    for (name, outcome) in registry.persist_all() {
        match outcome {
            Ok(path) => println!("gpasta serve: spooled `{name}` to {}", path.display()),
            Err(e) => eprintln!("gpasta serve: failed to spool `{name}`: {e}"),
        }
    }
    Ok(())
}

/// Refuse one over-cap connection: answer `503` + `Retry-After`, then
/// drain whatever request bytes the client already sent before closing.
/// Closing with unread data in the receive buffer makes the kernel send
/// RST, which can destroy the in-flight 503 before the client reads it.
fn shed_connection(
    stream: &mut TcpStream,
    max_connections: usize,
    write_timeout: Option<Duration>,
) {
    let _ = stream.set_write_timeout(write_timeout);
    let shed = ApiError {
        status: 503,
        kind: "overloaded".to_string(),
        message: format!("server is at its connection cap ({max_connections}); retry later"),
        retry_after: Some(1),
    };
    write_response(
        stream,
        shed.status,
        shed.retry_after,
        false,
        &shed.to_value(),
    );
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 1024];
    while let Ok(n) = std::io::Read::read(stream, &mut scratch) {
        if n == 0 {
            break;
        }
    }
}

fn handle_connection(
    registry: &Registry,
    stream: TcpStream,
    local: SocketAddr,
    limits: &HttpLimits,
) {
    let _ = stream.set_read_timeout(limits.read_timeout);
    let _ = stream.set_write_timeout(limits.write_timeout);
    // `&TcpStream` implements both `Read` and `Write`, so the buffered
    // reader can hold its borrow across requests while responses go out
    // through a second shared borrow of the raw stream.
    let mut reader = BufReader::new(&stream);
    let mut served: u64 = 0;
    loop {
        if served > 0 {
            // Between keep-alive requests: wait for the first byte of
            // the next request under the idle deadline. A client that
            // stays quiet past it — or closes — ends the connection
            // silently; idling here is legal, so no 408.
            let _ = stream.set_read_timeout(limits.idle_timeout.or(limits.read_timeout));
            match reader.fill_buf() {
                Ok(buf) if !buf.is_empty() => {}
                _ => break,
            }
            let _ = stream.set_read_timeout(limits.read_timeout);
        }
        served += 1;
        match parse_request(&mut reader, limits) {
            Ok(req) => {
                let was_shutdown = req.method == "POST" && req.path == "/shutdown";
                let keep = req.keep_alive
                    && !was_shutdown
                    && !registry.is_shutting_down()
                    && served < limits.keep_alive_requests;
                match route(registry, &req) {
                    Ok(value) => write_response(&mut (&stream), 200, None, keep, &value),
                    Err(e) => {
                        write_response(&mut (&stream), e.status, e.retry_after, keep, &e.to_value())
                    }
                }
                if was_shutdown {
                    // Wake the accept loop so it observes the shutdown
                    // flag.
                    let _ = TcpStream::connect(local);
                }
                if !keep {
                    break;
                }
            }
            Err(e) => {
                // After a malformed request the stream position is
                // unknowable, so the connection cannot be reused.
                write_response(
                    &mut (&stream),
                    e.status,
                    e.retry_after,
                    false,
                    &e.to_value(),
                );
                break;
            }
        }
    }
}

/// One parsed HTTP request. Public so the proptest adversary can drive
/// [`parse_request`] with raw byte soup.
#[derive(Debug)]
pub struct Request {
    /// HTTP method token.
    pub method: String,
    /// Path component of the target (no query string).
    pub path: String,
    /// Decoded query pairs, in order.
    pub query: Vec<(String, String)>,
    /// Parsed JSON body, when a `Content-Length` was present.
    pub body: Option<Value>,
    /// The client sent `Connection: keep-alive` and may reuse the
    /// connection (subject to the server's request cap and idle
    /// deadline).
    pub keep_alive: bool,
}

/// Map a connection-level I/O failure to a wire error: a tripped read
/// deadline is the client's slow trickle (408), anything else is a bad
/// request.
fn io_api(e: &std::io::Error) -> ApiError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ApiError {
            status: 408,
            kind: "timeout".to_string(),
            message: "connection idle past the read deadline".to_string(),
            retry_after: None,
        },
        _ => ApiError::bad_request("bad_request", format!("connection error: {e}")),
    }
}

/// Read one `\n`-terminated line without ever buffering more than the
/// remaining head budget (deducted on success). EOF mid-line is a
/// truncated request, not a panic or a hang.
fn read_line_limited(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ApiError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let used = {
            let buf = reader.fill_buf().map_err(|e| io_api(&e))?;
            if buf.is_empty() {
                return Err(ApiError::bad_request(
                    "bad_request",
                    "truncated request: connection closed mid-line",
                ));
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&buf[..=i]);
                    i + 1
                }
                None => {
                    line.extend_from_slice(buf);
                    buf.len()
                }
            }
        };
        reader.consume(used);
        if line.len() > *budget {
            return Err(ApiError {
                status: 431,
                kind: "headers_too_large".to_string(),
                message: "request head exceeds the head-size limit".to_string(),
                retry_after: None,
            });
        }
        if line.last() == Some(&b'\n') {
            *budget -= line.len();
            return String::from_utf8(line)
                .map_err(|_| ApiError::bad_request("bad_request", "request head is not UTF-8"));
        }
    }
}

/// Parse one HTTP/1.1 request off `reader` under `limits`. Every
/// malformed input — truncated lines, oversized or duplicate headers,
/// bodies shorter than their `Content-Length`, non-UTF-8 anywhere —
/// maps to a 4xx [`ApiError`]; the function never panics on input
/// bytes.
///
/// # Errors
///
/// 400 for malformed requests, 408 when the socket's read deadline
/// trips, 413 for oversized bodies, 431 for oversized heads.
pub fn parse_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, ApiError> {
    let mut head_budget = limits.max_head_bytes;
    let request_line = read_line_limited(reader, &mut head_budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("bad_request", "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ApiError::bad_request("bad_request", "request line has no target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = false;
    loop {
        let line = read_line_limited(reader, &mut head_budget)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Err(ApiError::bad_request(
                "bad_request",
                "malformed header line (no colon)",
            ));
        };
        if key.trim().eq_ignore_ascii_case("connection") {
            // Only an explicit keep-alive opts in; `close`, anything
            // unrecognized, or no header at all stays one-shot.
            keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
        }
        if key.trim().eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| ApiError::bad_request("bad_request", "invalid Content-Length"))?;
            // Duplicates are a classic smuggling vector; reject even
            // when the copies agree.
            if content_length.replace(parsed).is_some() {
                return Err(ApiError::bad_request(
                    "bad_request",
                    "duplicate Content-Length header",
                ));
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(ApiError {
            status: 413,
            kind: "body_too_large".to_string(),
            message: format!("request body exceeds {} bytes", limits.max_body_bytes),
            retry_after: None,
        });
    }

    let body = if content_length > 0 {
        let mut buf = vec![0u8; content_length];
        reader.read_exact(&mut buf).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                io_api(&e)
            } else {
                ApiError::bad_request("bad_request", "body shorter than Content-Length")
            }
        })?;
        let text = String::from_utf8(buf)
            .map_err(|_| ApiError::bad_request("bad_request", "request body is not UTF-8"))?;
        Some(serde_json::from_str::<Value>(&text).map_err(|e| {
            ApiError::bad_request("bad_request", format!("request body is not JSON: {e}"))
        })?)
    } else {
        None
    };

    Ok(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    })
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Map the request onto a protocol method and merged params, then
/// dispatch it.
fn route(registry: &Registry, req: &Request) -> Result<Value, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (method, name): (&str, Option<&str>) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => ("healthz", None),
        ("GET", ["readyz"]) => ("readyz", None),
        ("GET", ["status"]) => ("status", None),
        ("GET", ["sessions"]) => ("list_sessions", None),
        ("POST", ["sessions"]) => ("create_session", None),
        ("DELETE", ["sessions", name]) => ("evict_session", Some(name)),
        ("POST", ["sessions", name, "restore"]) => ("restore_session", Some(name)),
        ("POST", ["sessions", name, "edit"]) => ("edit_session", Some(name)),
        ("POST", ["sessions", name, "update"]) => ("update_timing", Some(name)),
        ("GET", ["sessions", name, "report"]) => ("report", Some(name)),
        ("GET", ["sessions", name, "paths"]) => ("paths", Some(name)),
        ("POST", ["shutdown"]) => ("shutdown", None),
        _ => {
            return Err(ApiError {
                status: 404,
                kind: "no_such_route".to_string(),
                message: format!("no route for {} {}", req.method, req.path),
                retry_after: None,
            })
        }
    };

    let mut pairs: Vec<(String, Value)> = match &req.body {
        Some(Value::Object(body)) => body.clone(),
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad_request",
                "request body must be a JSON object",
            ))
        }
        None => Vec::new(),
    };
    if let Some(name) = name {
        pairs.retain(|(k, _)| k != "name");
        pairs.push(("name".to_string(), Value::String(name.to_string())));
    }
    for (key, raw) in &req.query {
        pairs.retain(|(k, _)| k != key);
        let value = match raw.parse::<f64>() {
            Ok(n) => Value::Number(n),
            Err(_) => Value::String(raw.clone()),
        };
        pairs.push((key.clone(), value));
    }
    dispatch(registry, method, &Value::Object(pairs))
}

fn write_response(
    stream: &mut impl Write,
    status: u16,
    retry_after: Option<u64>,
    keep_alive: bool,
    body: &Value,
) {
    let text = match serde_json::to_string(body) {
        Ok(text) => text,
        Err(_) => String::from("{\"error\":{\"kind\":\"serialize\"}}"),
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let retry = match retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry}Connection: {conn}\r\n\r\n",
        text.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(text.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_bytes(bytes: &[u8]) -> Result<Request, ApiError> {
        parse_request(&mut Cursor::new(bytes), &HttpLimits::default())
    }

    #[test]
    fn query_strings_parse_into_pairs() {
        assert_eq!(
            parse_query("k=5&mode=late"),
            vec![
                ("k".to_string(), "5".to_string()),
                ("mode".to_string(), "late".to_string())
            ]
        );
        assert_eq!(parse_query(""), Vec::new());
        assert_eq!(
            parse_query("flag"),
            vec![("flag".to_string(), String::new())]
        );
    }

    #[test]
    fn well_formed_request_parses() {
        let req = parse_bytes(
            b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 13\r\n\r\n{\"name\":\"s1\"}",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert!(req.body.is_some());
    }

    #[test]
    fn truncated_requests_are_clean_400s() {
        for bytes in [
            &b""[..],
            &b"GET"[..],
            &b"GET /status HTTP/1.1\r\nHost: x"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"[..],
        ] {
            let err = parse_bytes(bytes).expect_err("truncated input rejected");
            assert_eq!(err.status, 400, "{err}");
        }
    }

    #[test]
    fn only_an_explicit_keep_alive_opts_in() {
        let req =
            parse_bytes(b"GET /status HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").expect("parses");
        assert!(req.keep_alive, "explicit keep-alive is honored");
        let req =
            parse_bytes(b"GET /status HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!req.keep_alive, "close stays one-shot");
        let req = parse_bytes(b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert!(!req.keep_alive, "no Connection header stays one-shot");
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let err =
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}")
                .expect_err("duplicate rejected");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("duplicate Content-Length"), "{err}");
    }

    #[test]
    fn oversized_heads_and_bodies_are_bounded() {
        let mut huge_header = Vec::from(&b"GET /status HTTP/1.1\r\nX-Junk: "[..]);
        huge_header.extend(vec![b'a'; 128 * 1024]);
        huge_header.extend(b"\r\n\r\n");
        let err = parse_bytes(&huge_header).expect_err("oversized head rejected");
        assert_eq!(err.status, 431);

        // A single unterminated line larger than the budget must also be
        // bounded (no newline ever arrives).
        let unterminated = vec![b'a'; 128 * 1024];
        let err = parse_bytes(&unterminated).expect_err("unterminated line bounded");
        assert_eq!(err.status, 431);

        let err = parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .expect_err("oversized body rejected");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn non_utf8_input_is_a_clean_400() {
        let err =
            parse_bytes(b"GET /\xff\xfe HTTP/1.1\r\nHo\xffst: x\r\n\r\n").expect_err("head bytes");
        assert_eq!(err.status, 400);
        let err = parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xff\xfe")
            .expect_err("body bytes");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("not UTF-8"), "{err}");
    }
}
