//! The HTTP/1.1 frontend of `gpasta serve`.
//!
//! A deliberately small server — no external dependencies exist in this
//! workspace, so it is hand-rolled on [`std::net::TcpListener`]: one
//! thread per connection, one request per connection (`Connection:
//! close`), bodies bounded by `Content-Length`. Every route maps onto a
//! [`super::proto::dispatch`] method, with path segments and query
//! parameters merged into the request's JSON params:
//!
//! | Route | Method |
//! |---|---|
//! | `GET /status` | `status` |
//! | `GET /sessions` | `list_sessions` |
//! | `POST /sessions` | `create_session` |
//! | `DELETE /sessions/{name}` | `evict_session` |
//! | `POST /sessions/{name}/restore` | `restore_session` |
//! | `POST /sessions/{name}/edit` | `edit_session` |
//! | `POST /sessions/{name}/update` | `update_timing` |
//! | `GET /sessions/{name}/report?k=N&mode=late` | `report` |
//! | `GET /sessions/{name}/paths?k=N` | `paths` |
//! | `POST /shutdown` | `shutdown` |
//!
//! Shutdown: the handler thread that serves `POST /shutdown` sets the
//! registry flag, then opens a throwaway connection to the listener to
//! wake the blocked `accept`; the accept loop observes the flag, drains
//! its worker threads, and runs the registry's persist pass.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use serde_json::Value;

use super::proto::{dispatch, ApiError};
use super::registry::Registry;
use super::ServeError;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Largest accepted request body (design uploads).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Run the HTTP frontend until a `POST /shutdown` arrives, then spool
/// every live session and return. Prints the bound address on stdout
/// before accepting (tests bind port 0 and parse the line).
///
/// # Errors
///
/// [`ServeError::Bind`] when the address cannot be bound; I/O errors on
/// individual connections are per-request (the connection is dropped,
/// the server keeps running).
pub fn run_http(registry: Arc<Registry>, addr: &str) -> Result<(), ServeError> {
    let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
        addr: addr.to_string(),
        source,
    })?;
    let local = listener.local_addr().map_err(|source| ServeError::Bind {
        addr: addr.to_string(),
        source,
    })?;
    println!("gpasta serve listening on http://{local}");
    let _ = std::io::stdout().flush();

    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if registry.is_shutting_down() {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let reg = registry.clone();
        workers.push(thread::spawn(move || {
            handle_connection(&reg, stream, local);
        }));
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
    for (name, outcome) in registry.persist_all() {
        match outcome {
            Ok(path) => println!("gpasta serve: spooled `{name}` to {}", path.display()),
            Err(e) => eprintln!("gpasta serve: failed to spool `{name}`: {e}"),
        }
    }
    Ok(())
}

fn handle_connection(registry: &Registry, stream: TcpStream, local: SocketAddr) {
    let mut was_shutdown = false;
    let mut stream = stream;
    match read_request(&mut stream) {
        Ok(req) => {
            was_shutdown = req.method == "POST" && req.path == "/shutdown";
            let (status, body) = match route(registry, &req) {
                Ok(value) => (200, value),
                Err(e) => (e.status, e.to_value()),
            };
            write_response(&mut stream, status, &body);
        }
        Err(e) => {
            write_response(&mut stream, e.status, &e.to_value());
        }
    }
    if was_shutdown {
        // Wake the accept loop so it observes the shutdown flag.
        let _ = TcpStream::connect(local);
    }
}

struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Option<Value>,
}

fn read_request(stream: &mut TcpStream) -> Result<Request, ApiError> {
    let io_err = |what: &str| ApiError::bad_request("bad_request", what.to_string());
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|_| io_err("cannot read request line"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io_err("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| io_err("request line has no target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut content_length = 0usize;
    let mut head_bytes = request_line.len();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|_| io_err("cannot read headers"))?;
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ApiError {
                status: 431,
                kind: "headers_too_large".to_string(),
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            });
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((key, value)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| io_err("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ApiError {
            status: 413,
            kind: "body_too_large".to_string(),
            message: format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        });
    }

    let body = if content_length > 0 {
        let mut buf = vec![0u8; content_length];
        reader
            .read_exact(&mut buf)
            .map_err(|_| io_err("body shorter than Content-Length"))?;
        let text = String::from_utf8(buf).map_err(|_| io_err("request body is not UTF-8"))?;
        Some(
            serde_json::from_str::<Value>(&text)
                .map_err(|e| io_err(&format!("request body is not JSON: {e}")))?,
        )
    } else {
        None
    };

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Map the request onto a protocol method and merged params, then
/// dispatch it.
fn route(registry: &Registry, req: &Request) -> Result<Value, ApiError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (method, name): (&str, Option<&str>) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["status"]) => ("status", None),
        ("GET", ["sessions"]) => ("list_sessions", None),
        ("POST", ["sessions"]) => ("create_session", None),
        ("DELETE", ["sessions", name]) => ("evict_session", Some(name)),
        ("POST", ["sessions", name, "restore"]) => ("restore_session", Some(name)),
        ("POST", ["sessions", name, "edit"]) => ("edit_session", Some(name)),
        ("POST", ["sessions", name, "update"]) => ("update_timing", Some(name)),
        ("GET", ["sessions", name, "report"]) => ("report", Some(name)),
        ("GET", ["sessions", name, "paths"]) => ("paths", Some(name)),
        ("POST", ["shutdown"]) => ("shutdown", None),
        _ => {
            return Err(ApiError {
                status: 404,
                kind: "no_such_route".to_string(),
                message: format!("no route for {} {}", req.method, req.path),
            })
        }
    };

    let mut pairs: Vec<(String, Value)> = match &req.body {
        Some(Value::Object(body)) => body.clone(),
        Some(_) => {
            return Err(ApiError::bad_request(
                "bad_request",
                "request body must be a JSON object",
            ))
        }
        None => Vec::new(),
    };
    if let Some(name) = name {
        pairs.retain(|(k, _)| k != "name");
        pairs.push(("name".to_string(), Value::String(name.to_string())));
    }
    for (key, raw) in &req.query {
        pairs.retain(|(k, _)| k != key);
        let value = match raw.parse::<f64>() {
            Ok(n) => Value::Number(n),
            Err(_) => Value::String(raw.clone()),
        };
        pairs.push((key.clone(), value));
    }
    dispatch(registry, method, &Value::Object(pairs))
}

fn write_response(stream: &mut TcpStream, status: u16, body: &Value) {
    let text = match serde_json::to_string(body) {
        Ok(text) => text,
        Err(_) => String::from("{\"error\":{\"kind\":\"serialize\"}}"),
    };
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        text.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(text.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_parse_into_pairs() {
        assert_eq!(
            parse_query("k=5&mode=late"),
            vec![
                ("k".to_string(), "5".to_string()),
                ("mode".to_string(), "late".to_string())
            ]
        );
        assert_eq!(parse_query(""), Vec::new());
        assert_eq!(
            parse_query("flag"),
            vec![("flag".to_string(), String::new())]
        );
    }
}
