//! The session registry: named [`Session`]s shared across request
//! threads, *supervised* so a panic inside one session never takes the
//! daemon (or even the session) down with it.
//!
//! # Slots
//!
//! Each slot is one of three states:
//!
//! * **live** — an `Arc<Mutex<Session>>` (warm timer, warm partition
//!   cache) plus its [`Supervisor`]: the crash-recovery bookkeeping that
//!   outlives any particular `Session` value;
//! * **dormant** — a [`DormantSession`] (source text plus a `GPCKPT01`
//!   checkpoint in the spool directory), produced by eviction;
//! * **quarantined** — the session crashed repeatedly inside the crash
//!   window (or could not be rebuilt); only an explicit restore or
//!   remove moves it out.
//!
//! Request handlers go through [`Registry::with_live`] /
//! [`Registry::apply_edits`], which clone the `Arc` under the registry
//! lock, release it, and run the operation inside `catch_unwind` with
//! the *session* lock held — one slow `update_timing` never blocks
//! requests against other sessions, and one panicking one never poisons
//! anything (the mutex is parking_lot-flavoured and lock-only).
//!
//! # Crash-only recovery
//!
//! A caught panic discards the crashed `Session` value entirely — no
//! attempt is made to repair it — and rebuilds a replacement from the
//! supervisor's *residue* (the last background checkpoint, taken by
//! [`Registry::checkpoint_all`]) or, before any checkpoint exists, from
//! the design sources; either way the post-checkpoint edit journal is
//! replayed on top. Every [`Edit`] is an absolute-value set and timing
//! propagation is deterministic, so the recovered session converges to
//! bits identical to a session that never crashed. Repeated crashes
//! within [`Registry::with_crash_policy`]'s window quarantine the slot
//! instead of looping.
//!
//! # Lock order
//!
//! `session mutex` → `supervisor state` → `registry slots`, strictly.
//! Edits journal under the session lock (so journal order *is*
//! application order); crash handling holds the supervisor lock across
//! the rebuild (serialising concurrent recoveries of one session) and
//! takes the slots lock only for the final swap; nothing locks a
//! session or supervisor while holding the slots lock. The supervisor's
//! generation counter is read and written only under the slots lock
//! (plain `Relaxed` atomics — the lock provides the ordering), and every
//! slot swap bumps it, so a request that cloned the `Arc` just before a
//! swap mutates a detached session: its crash is recognised as stale and
//! does not trigger a second recovery — the same "race the client signed
//! up for" semantics eviction always had.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpasta_check::sync::{AtomicBool, AtomicU64, Mutex, Ordering};

use crate::checkpoint::fnv1a64;
use crate::sched::{FaultKind, FaultPlan};
use crate::session::{DesignSources, DormantSession, Edit, Session, SessionError};

/// A live slot as one consistent read: the shared session, its
/// supervisor, and the generation the pair was observed at (all under
/// one slots-lock hold).
type LiveSlotRef = (Arc<Mutex<Session>>, Arc<Supervisor>, u64);

/// One [`LiveSlotRef`] tagged with its session name, for bulk
/// snapshots (checkpointer, persist pass).
type NamedLiveSlot = (String, Arc<Mutex<Session>>, Arc<Supervisor>, u64);

/// Why a registry operation failed. The wire layer maps each variant to
/// an HTTP status in [`super::proto`].
#[derive(Debug)]
pub enum RegistryError {
    /// No session with this name exists.
    NotFound(String),
    /// The session exists but is dormant; restore it first.
    NotLive(String),
    /// A session with this name already exists.
    Duplicate(String),
    /// The registry is at its live-session capacity.
    Full {
        /// The configured capacity.
        max: usize,
    },
    /// The session name contains characters the spool cannot host.
    BadName(String),
    /// The underlying session operation failed.
    Session(SessionError),
    /// The session panicked mid-operation. `recovered` says whether the
    /// slot is live again (auto-restored from checkpoint + journal — the
    /// client can simply retry); when `false` the slot was quarantined
    /// because recovery itself failed.
    Crashed {
        /// Session name.
        name: String,
        /// Whether the slot is live again.
        recovered: bool,
        /// The panic payload, for the error message and the logs.
        panic: String,
    },
    /// The session crashed repeatedly inside the crash window and is
    /// quarantined; an explicit restore heals it, remove discards it.
    Quarantined {
        /// Session name.
        name: String,
        /// Crashes inside the window at quarantine time.
        crashes: usize,
    },
    /// The daemon is at its in-flight request budget; retry later.
    Overloaded {
        /// The configured in-flight budget.
        max: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(name) => write!(f, "no session named `{name}`"),
            RegistryError::NotLive(name) => {
                write!(f, "session `{name}` is dormant; restore it first")
            }
            RegistryError::Duplicate(name) => write!(f, "session `{name}` already exists"),
            RegistryError::Full { max } => {
                write!(f, "registry is full ({max} sessions); evict one first")
            }
            RegistryError::BadName(name) => write!(
                f,
                "invalid session name `{name}`: use 1-64 characters from [A-Za-z0-9_-], \
                 starting with a letter or digit"
            ),
            RegistryError::Session(e) => write!(f, "{e}"),
            RegistryError::Crashed {
                name,
                recovered,
                panic,
            } => {
                if *recovered {
                    write!(
                        f,
                        "session `{name}` crashed ({panic}); it was restored from its \
                         last checkpoint and edit journal — retry the request"
                    )
                } else {
                    write!(
                        f,
                        "session `{name}` crashed ({panic}) and recovery failed; \
                         the slot is quarantined"
                    )
                }
            }
            RegistryError::Quarantined { name, crashes } => write!(
                f,
                "session `{name}` is quarantined after {crashes} crashes in the crash \
                 window; restore it explicitly or remove it"
            ),
            RegistryError::Overloaded { max } => write!(
                f,
                "server is at its in-flight request budget ({max}); retry later"
            ),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for RegistryError {
    fn from(e: SessionError) -> Self {
        RegistryError::Session(e)
    }
}

/// Deterministic chaos injected into live sessions — the serve-layer
/// face of [`FaultPlan`]. Intended for the chaos tier and CI smoke, not
/// production; the default (inactive) config costs one `Option` check
/// per update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the per-session random rule (each session derives its own
    /// stream: `seed ^ fnv1a64(name)`).
    pub seed: u64,
    /// Fire probability per `(update, attempt)` key, in [0, 1].
    pub rate: f64,
    /// Kinds the random rule chooses among (only `Panic` and `Delay` are
    /// meaningful at session granularity).
    pub kinds: Vec<FaultKind>,
    /// Targeted hits: `(session name, update index, recovery attempt,
    /// kind)`.
    pub targeted: Vec<(String, u32, u32, FaultKind)>,
}

impl ChaosConfig {
    /// Whether any rule can ever fire.
    pub fn is_active(&self) -> bool {
        (self.rate > 0.0 && !self.kinds.is_empty()) || !self.targeted.is_empty()
    }
}

/// Per-session crash-recovery bookkeeping. Lives behind its own mutex
/// (not the session's) and survives slot swaps: the recovered `Session`
/// is a fresh value, the `Supervisor` is the continuity.
#[derive(Debug)]
struct Supervisor {
    state: Mutex<SupState>,
    /// Slot-swap counter; read and written only under the registry slots
    /// lock (which provides the ordering — hence `Relaxed` everywhere).
    /// A crash whose captured generation is stale belongs to a detached
    /// `Arc` and must not trigger another recovery.
    generation: AtomicU64,
}

#[derive(Debug)]
struct SupState {
    /// For rebuild-from-scratch before any checkpoint exists.
    sources: DesignSources,
    /// The last background checkpoint (or eviction residue a restore
    /// seeded); recovery starts here when present.
    residue: Option<DormantSession>,
    /// Edits applied since `residue` was taken, in application order
    /// (appended under the session lock).
    journal: Vec<Edit>,
    /// Crash instants inside the sliding window.
    crashes: VecDeque<Instant>,
    /// Completed recoveries; doubles as the chaos `attempt` coordinate.
    recoveries: u32,
}

impl Supervisor {
    fn new(sources: DesignSources, residue: Option<DormantSession>) -> Arc<Supervisor> {
        Arc::new(Supervisor {
            state: Mutex::new(SupState {
                sources,
                residue,
                journal: Vec::new(),
                crashes: VecDeque::new(),
                recoveries: 0,
            }),
            generation: AtomicU64::new(0),
        })
    }
}

/// One registry slot.
#[derive(Debug, Clone)]
enum SessionSlot {
    Live {
        arc: Arc<Mutex<Session>>,
        sup: Arc<Supervisor>,
    },
    Dormant(DormantSession),
    Quarantined {
        sup: Arc<Supervisor>,
    },
}

/// Where a session currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// In memory, accepting requests.
    Live,
    /// Spooled to a checkpoint; restore re-admits it.
    Dormant,
    /// Crashed out of the crash window; restore heals it.
    Quarantined,
}

impl SessionState {
    /// The wire-protocol name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Live => "live",
            SessionState::Dormant => "dormant",
            SessionState::Quarantined => "quarantined",
        }
    }
}

/// A row of [`Registry::list`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// Live, dormant, or quarantined.
    pub state: SessionState,
    /// The checkpoint path, for dormant slots.
    pub checkpoint: Option<PathBuf>,
    /// Crash recoveries performed on this slot so far.
    pub recoveries: u32,
}

impl SessionInfo {
    /// Whether the slot is live.
    pub fn is_live(&self) -> bool {
        self.state == SessionState::Live
    }
}

/// What [`Registry::apply_edits`] did. Edits apply (and journal) in
/// order; on a rejected edit the earlier ones stay applied and
/// `rejected` names the offending index, so the client can resubmit
/// from there.
#[derive(Debug)]
pub struct EditReceipt {
    /// Edits applied (and journaled).
    pub applied: usize,
    /// Whether the session now has pending changes.
    pub pending: bool,
    /// The first rejected edit, when validation failed.
    pub rejected: Option<(usize, SessionError)>,
}

/// Holds one unit of the in-flight request budget; dropping it releases
/// the slot. Obtained from [`Registry::try_admit`].
#[derive(Debug)]
pub struct AdmissionGuard<'a> {
    registry: &'a Registry,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.registry.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The shared state of a `gpasta serve` process. `Send + Sync`; request
/// threads hold it behind an `Arc`.
#[derive(Debug)]
pub struct Registry {
    slots: Mutex<HashMap<String, SessionSlot>>,
    spool: PathBuf,
    workers: usize,
    max_sessions: usize,
    shutdown: AtomicBool,
    requests: AtomicU64,
    inflight: AtomicU64,
    max_inflight: u64,
    crash_window: Duration,
    max_crashes: usize,
    chaos: ChaosConfig,
    crashes_total: AtomicU64,
    recoveries_total: AtomicU64,
    checkpoints_total: AtomicU64,
}

impl Registry {
    /// An empty registry spooling checkpoints under `spool`, giving each
    /// session `workers` executor threads and hosting at most
    /// `max_sessions` sessions (live or dormant). Default policies: 256
    /// in-flight requests, quarantine after 3 crashes in 60 s, no chaos.
    pub fn new(spool: PathBuf, workers: usize, max_sessions: usize) -> Registry {
        Registry {
            slots: Mutex::new(HashMap::new()),
            spool,
            workers: workers.max(1),
            max_sessions: max_sessions.max(1),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            max_inflight: 256,
            crash_window: Duration::from_secs(60),
            max_crashes: 3,
            chaos: ChaosConfig::default(),
            crashes_total: AtomicU64::new(0),
            recoveries_total: AtomicU64::new(0),
            checkpoints_total: AtomicU64::new(0),
        }
    }

    /// Set the in-flight request budget (`0` disables shedding).
    pub fn with_admission(mut self, max_inflight: u64) -> Registry {
        self.max_inflight = max_inflight;
        self
    }

    /// Set the quarantine policy: `max_crashes` crashes within `window`
    /// quarantine the session.
    pub fn with_crash_policy(mut self, window: Duration, max_crashes: usize) -> Registry {
        self.crash_window = window;
        self.max_crashes = max_crashes.max(1);
        self
    }

    /// Install a chaos schedule, injected into every session at create,
    /// restore, and recovery.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Registry {
        self.chaos = chaos;
        self
    }

    /// Executor threads per session.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured session capacity.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// The spool directory checkpoints are written into.
    pub fn spool(&self) -> &Path {
        &self.spool
    }

    /// Count one served request (monotonic statistics counter).
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Session crashes caught so far.
    pub fn crashes_total(&self) -> u64 {
        self.crashes_total.load(Ordering::Relaxed)
    }

    /// Crash recoveries completed so far.
    pub fn recoveries_total(&self) -> u64 {
        self.recoveries_total.load(Ordering::Relaxed)
    }

    /// Background checkpoints taken so far.
    pub fn checkpoints_total(&self) -> u64 {
        self.checkpoints_total.load(Ordering::Relaxed)
    }

    /// Requests currently being served under [`try_admit`](Self::try_admit).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// The configured in-flight budget (`0` = unlimited).
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight
    }

    /// Admit one request into the in-flight budget, or shed it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Overloaded`] when the budget is exhausted (the
    /// wire layer turns it into `503` + `Retry-After`).
    pub fn try_admit(&self) -> Result<AdmissionGuard<'_>, RegistryError> {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if self.max_inflight > 0 && now > self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            return Err(RegistryError::Overloaded {
                max: self.max_inflight,
            });
        }
        Ok(AdmissionGuard { registry: self })
    }

    /// Flag the process for shutdown. The accept/read loop observes the
    /// flag and stops taking new requests; the final persist pass then
    /// spools every live session.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release); // hb: serve-shutdown
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) // hb: serve-shutdown
    }

    /// Whether the spool directory accepts writes (the readiness probe:
    /// a daemon that cannot checkpoint cannot keep its durability
    /// promise).
    pub fn spool_writable(&self) -> bool {
        if std::fs::create_dir_all(&self.spool).is_err() {
            return false;
        }
        let probe = self
            .spool
            .join(format!(".readyz-probe-{}", std::process::id()));
        let ok = std::fs::write(&probe, b"ok").is_ok();
        std::fs::remove_file(&probe).ok();
        ok
    }

    fn ckpt_path(&self, name: &str) -> PathBuf {
        self.spool.join(format!("{name}.ckpt"))
    }

    fn validate_name(name: &str) -> Result<(), RegistryError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && name.starts_with(|c: char| c.is_ascii_alphanumeric())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if ok {
            Ok(())
        } else {
            Err(RegistryError::BadName(name.to_string()))
        }
    }

    /// The chaos plan a session named `name` runs under, if any.
    fn chaos_plan_for(&self, name: &str) -> Option<FaultPlan> {
        if !self.chaos.is_active() {
            return None;
        }
        let plan = FaultPlan::random(
            self.chaos.seed ^ fnv1a64(name.as_bytes()),
            self.chaos.rate,
            &self.chaos.kinds,
        )
        .with_targets(
            self.chaos
                .targeted
                .iter()
                .filter(|(n, _, _, _)| n == name)
                .map(|&(_, update, attempt, kind)| (update, attempt, kind)),
        );
        Some(plan)
    }

    /// Swap `name`'s slot to `slot` iff `sup`'s generation is still
    /// `expected`; bumps the generation on success. Atomic with respect
    /// to every other swap (all go through the slots lock).
    fn swap_slot_if(
        &self,
        name: &str,
        sup: &Arc<Supervisor>,
        expected: u64,
        slot: SessionSlot,
    ) -> bool {
        let mut slots = self.slots.lock();
        if sup.generation.load(Ordering::Relaxed) != expected {
            return false;
        }
        sup.generation.fetch_add(1, Ordering::Relaxed);
        slots.insert(name.to_string(), slot);
        true
    }

    /// Create a session: parse the sources, run the initial full
    /// analysis, install the partition cache, and register the result
    /// live. The analysis runs outside the registry lock, so concurrent
    /// creates (of different names) proceed in parallel.
    ///
    /// # Errors
    ///
    /// [`RegistryError::BadName`] / [`RegistryError::Duplicate`] /
    /// [`RegistryError::Full`] for registry constraints,
    /// [`RegistryError::Session`] when the sources fail to build.
    pub fn create(
        &self,
        name: &str,
        sources: DesignSources,
    ) -> Result<Arc<Mutex<Session>>, RegistryError> {
        Self::validate_name(name)?;
        {
            let slots = self.slots.lock();
            if slots.contains_key(name) {
                return Err(RegistryError::Duplicate(name.to_string()));
            }
            if slots.len() >= self.max_sessions {
                return Err(RegistryError::Full {
                    max: self.max_sessions,
                });
            }
        }
        let mut session = Session::create(name, sources.clone(), self.workers)?;
        session.set_chaos(self.chaos_plan_for(name), 0);
        let arc = Arc::new(Mutex::new(session));
        let sup = Supervisor::new(sources, None);
        let mut slots = self.slots.lock();
        // Re-check: another create may have won the race while we were
        // analysing.
        if slots.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        if slots.len() >= self.max_sessions {
            return Err(RegistryError::Full {
                max: self.max_sessions,
            });
        }
        slots.insert(
            name.to_string(),
            SessionSlot::Live {
                arc: arc.clone(),
                sup,
            },
        );
        Ok(arc)
    }

    /// The live slot for `name` plus the generation the `Arc` was read
    /// at (consistent: both read under the one slots lock).
    fn live_slot(&self, name: &str) -> Result<LiveSlotRef, RegistryError> {
        let quarantined_sup = {
            let slots = self.slots.lock();
            match slots.get(name) {
                Some(SessionSlot::Live { arc, sup }) => {
                    let generation = sup.generation.load(Ordering::Relaxed);
                    return Ok((arc.clone(), sup.clone(), generation));
                }
                Some(SessionSlot::Dormant(_)) => {
                    return Err(RegistryError::NotLive(name.to_string()))
                }
                Some(SessionSlot::Quarantined { sup }) => sup.clone(),
                None => return Err(RegistryError::NotFound(name.to_string())),
            }
        };
        // Slots lock released before touching the supervisor lock (lock
        // order: supervisor < slots holds only in that direction).
        let crashes = quarantined_sup.state.lock().crashes.len();
        Err(RegistryError::Quarantined {
            name: name.to_string(),
            crashes,
        })
    }

    /// The live session named `name`, for callers that manage their own
    /// locking (tests, benches). Supervised request paths should prefer
    /// [`with_live`](Self::with_live).
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] / [`RegistryError::NotLive`] /
    /// [`RegistryError::Quarantined`].
    pub fn live(&self, name: &str) -> Result<Arc<Mutex<Session>>, RegistryError> {
        self.live_slot(name).map(|(arc, _, _)| arc)
    }

    /// Run `f` against the live session named `name`, supervised: the
    /// session lock is taken here, `f` runs inside `catch_unwind`, and a
    /// panic triggers crash-only recovery (discard the session, rebuild
    /// from the last checkpoint, replay the edit journal) or quarantine.
    ///
    /// # Errors
    ///
    /// Slot lookup errors as in [`live`](Self::live);
    /// [`RegistryError::Crashed`] / [`RegistryError::Quarantined`] when
    /// `f` panicked (the operation did *not* complete — `recovered`
    /// says whether an immediate retry can succeed).
    pub fn with_live<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Session) -> T,
    ) -> Result<T, RegistryError> {
        let (arc, sup, generation) = self.live_slot(name)?;
        let mut session = arc.lock();
        match catch_unwind(AssertUnwindSafe(|| f(&mut session))) {
            Ok(value) => Ok(value),
            Err(payload) => {
                drop(session);
                Err(self.handle_crash(name, &sup, generation, panic_message(payload)))
            }
        }
    }

    /// Apply `edits` in order to the live session named `name`,
    /// journaling each applied edit (under the session lock, so journal
    /// order is application order) for crash replay.
    ///
    /// # Errors
    ///
    /// Slot lookup and crash errors as in [`with_live`](Self::with_live).
    /// A *rejected* edit (client error) is not an `Err`: it is reported
    /// in [`EditReceipt::rejected`] with earlier edits applied.
    pub fn apply_edits(&self, name: &str, edits: &[Edit]) -> Result<EditReceipt, RegistryError> {
        let (arc, sup, generation) = self.live_slot(name)?;
        let mut session = arc.lock();
        let mut applied = 0usize;
        let mut rejected = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for (i, edit) in edits.iter().enumerate() {
                match session.apply_edit(edit) {
                    Ok(()) => {
                        sup.state.lock().journal.push(edit.clone());
                        applied += 1;
                    }
                    Err(e) => {
                        rejected = Some((i, e));
                        break;
                    }
                }
            }
        }));
        match outcome {
            Ok(()) => Ok(EditReceipt {
                applied,
                pending: session.has_pending_changes(),
                rejected,
            }),
            Err(payload) => {
                drop(session);
                Err(self.handle_crash(name, &sup, generation, panic_message(payload)))
            }
        }
    }

    /// Contain one caught panic: count it against the crash window, then
    /// either quarantine or rebuild-and-swap. Returns the error the
    /// failed request reports. Holds the supervisor lock across the
    /// rebuild so concurrent crashes of one session recover once.
    fn handle_crash(
        &self,
        name: &str,
        sup: &Arc<Supervisor>,
        generation: u64,
        panic: String,
    ) -> RegistryError {
        self.crashes_total.fetch_add(1, Ordering::Relaxed);
        let mut st = sup.state.lock();
        if sup.generation.load(Ordering::Relaxed) != generation {
            // The slot moved on (concurrent recovery, eviction, removal)
            // while this request ran against a detached Arc; whatever is
            // registered now is healthy — nothing to repair.
            return RegistryError::Crashed {
                name: name.to_string(),
                recovered: true,
                panic,
            };
        }
        let now = Instant::now();
        st.crashes.push_back(now);
        while let Some(front) = st.crashes.front() {
            if now.duration_since(*front) > self.crash_window {
                st.crashes.pop_front();
            } else {
                break;
            }
        }
        if st.crashes.len() >= self.max_crashes {
            let crashes = st.crashes.len();
            self.swap_slot_if(
                name,
                sup,
                generation,
                SessionSlot::Quarantined { sup: sup.clone() },
            );
            return RegistryError::Quarantined {
                name: name.to_string(),
                crashes,
            };
        }
        st.recoveries += 1;
        let attempt = st.recoveries;
        // The rebuild itself runs under catch_unwind too: a panic during
        // restore or journal replay must quarantine, not kill the
        // handler thread.
        let rebuilt = catch_unwind(AssertUnwindSafe(|| self.rebuild(name, &st)));
        let mut session = match rebuilt {
            Ok(Ok(session)) => session,
            Ok(Err(e)) => {
                self.swap_slot_if(
                    name,
                    sup,
                    generation,
                    SessionSlot::Quarantined { sup: sup.clone() },
                );
                return RegistryError::Crashed {
                    name: name.to_string(),
                    recovered: false,
                    panic: format!("{panic}; recovery failed: {e}"),
                };
            }
            Err(payload) => {
                let why = panic_message(payload);
                self.swap_slot_if(
                    name,
                    sup,
                    generation,
                    SessionSlot::Quarantined { sup: sup.clone() },
                );
                return RegistryError::Crashed {
                    name: name.to_string(),
                    recovered: false,
                    panic: format!("{panic}; recovery panicked: {why}"),
                };
            }
        };
        session.set_chaos(self.chaos_plan_for(name), attempt);
        let arc = Arc::new(Mutex::new(session));
        let swapped = self.swap_slot_if(
            name,
            sup,
            generation,
            SessionSlot::Live {
                arc,
                sup: sup.clone(),
            },
        );
        if swapped {
            self.recoveries_total.fetch_add(1, Ordering::Relaxed);
        }
        RegistryError::Crashed {
            name: name.to_string(),
            recovered: true,
            panic,
        }
    }

    /// Rebuild a replacement session from the supervisor's residue (last
    /// checkpoint) or, before any checkpoint exists, from the sources —
    /// then replay the post-checkpoint edit journal. Deterministic: the
    /// result converges to the same bits as the crashed session would
    /// have.
    fn rebuild(&self, name: &str, st: &SupState) -> Result<Session, SessionError> {
        let mut session = match &st.residue {
            Some(dormant) => dormant.restore(self.workers)?,
            None => Session::create(name, st.sources.clone(), self.workers)?,
        };
        for edit in &st.journal {
            session.apply_edit(edit)?;
        }
        Ok(session)
    }

    /// Every slot, sorted by name.
    pub fn list(&self) -> Vec<SessionInfo> {
        // Snapshot under the slots lock; supervisor locks only after it
        // is released (lock order: supervisor < slots).
        #[allow(clippy::type_complexity)]
        let snapshot: Vec<(
            String,
            SessionState,
            Option<PathBuf>,
            Option<Arc<Supervisor>>,
        )> = {
            let slots = self.slots.lock();
            slots
                .iter()
                .map(|(name, slot)| match slot {
                    SessionSlot::Live { sup, .. } => {
                        (name.clone(), SessionState::Live, None, Some(sup.clone()))
                    }
                    SessionSlot::Dormant(d) => (
                        name.clone(),
                        SessionState::Dormant,
                        Some(d.checkpoint_path().to_path_buf()),
                        None,
                    ),
                    SessionSlot::Quarantined { sup } => (
                        name.clone(),
                        SessionState::Quarantined,
                        None,
                        Some(sup.clone()),
                    ),
                })
                .collect()
        };
        let mut rows: Vec<SessionInfo> = snapshot
            .into_iter()
            .map(|(name, state, checkpoint, sup)| SessionInfo {
                name,
                state,
                checkpoint,
                recoveries: sup.map_or(0, |s| s.state.lock().recoveries),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Evict a session: flush pending edits, write the `GPCKPT01`
    /// checkpoint into the spool, and swap the slot to dormant.
    /// Idempotent — evicting a dormant session returns its existing
    /// residue. The flush runs supervised: a panic during it is handled
    /// like any other crash.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] / [`RegistryError::Quarantined`], or
    /// [`RegistryError::Session`] when the checkpoint cannot be written.
    pub fn evict(&self, name: &str) -> Result<DormantSession, RegistryError> {
        // The generation check-and-swap can lose to a concurrent crash
        // recovery; retry the whole eviction a couple of times before
        // settling for checkpoint-written-but-slot-still-live.
        let mut last = None;
        for _ in 0..3 {
            let (arc, sup, generation) = match self.live_slot(name) {
                Ok(found) => found,
                Err(RegistryError::NotLive(_)) => {
                    let slots = self.slots.lock();
                    return match slots.get(name) {
                        Some(SessionSlot::Dormant(d)) => Ok(d.clone()),
                        _ => Err(RegistryError::NotFound(name.to_string())),
                    };
                }
                Err(e) => return Err(e),
            };
            let path = self.ckpt_path(name);
            // Waits for in-flight requests against this session to
            // drain; no registry lock is held across the checkpoint I/O.
            let mut session = arc.lock();
            let dormant = match catch_unwind(AssertUnwindSafe(|| session.evict_to(&path))) {
                Ok(Ok(dormant)) => dormant,
                Ok(Err(e)) => return Err(RegistryError::Session(e)),
                Err(payload) => {
                    drop(session);
                    return Err(self.handle_crash(name, &sup, generation, panic_message(payload)));
                }
            };
            // The checkpoint captures every journaled edit (appends need
            // the session lock we hold), so the journal restarts empty.
            {
                let mut st = sup.state.lock();
                st.residue = Some(dormant.clone());
                st.journal.clear();
            }
            drop(session);
            if self.swap_slot_if(
                name,
                &sup,
                generation,
                SessionSlot::Dormant(dormant.clone()),
            ) {
                return Ok(dormant);
            }
            last = Some(dormant);
        }
        match last {
            // Three straight swap races: give up swapping, but the
            // checkpoint on disk is valid and current.
            Some(dormant) => Ok(dormant),
            None => Err(RegistryError::NotFound(name.to_string())),
        }
    }

    /// Re-admit a dormant session from its checkpoint, or heal a
    /// quarantined one (rebuild from residue + journal, clearing its
    /// crash history). Idempotent — restoring a live session returns it
    /// as-is.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`], or [`RegistryError::Session`] when
    /// the checkpoint is unreadable, no longer matches the sources, or
    /// the quarantined rebuild fails (the slot stays quarantined).
    pub fn restore(&self, name: &str) -> Result<Arc<Mutex<Session>>, RegistryError> {
        enum Found {
            Dormant(DormantSession),
            Quarantined(Arc<Supervisor>, u64),
        }
        let found = {
            let slots = self.slots.lock();
            match slots.get(name) {
                Some(SessionSlot::Live { arc, .. }) => return Ok(arc.clone()),
                Some(SessionSlot::Dormant(d)) => Found::Dormant(d.clone()),
                Some(SessionSlot::Quarantined { sup }) => {
                    Found::Quarantined(sup.clone(), sup.generation.load(Ordering::Relaxed))
                }
                None => return Err(RegistryError::NotFound(name.to_string())),
            }
        };
        match found {
            Found::Dormant(dormant) => {
                let mut session = dormant.restore(self.workers)?;
                session.set_chaos(self.chaos_plan_for(name), 0);
                let sources = session.sources().clone();
                let arc = Arc::new(Mutex::new(session));
                let sup = Supervisor::new(sources, Some(dormant));
                let mut slots = self.slots.lock();
                match slots.get(name) {
                    // A concurrent restore won the race; use its session
                    // so both callers observe the same object.
                    Some(SessionSlot::Live { arc: existing, .. }) => Ok(existing.clone()),
                    _ => {
                        slots.insert(
                            name.to_string(),
                            SessionSlot::Live {
                                arc: arc.clone(),
                                sup,
                            },
                        );
                        Ok(arc)
                    }
                }
            }
            Found::Quarantined(sup, generation) => {
                let mut st = sup.state.lock();
                st.recoveries += 1;
                let attempt = st.recoveries;
                let mut session = self.rebuild(name, &st)?;
                session.set_chaos(self.chaos_plan_for(name), attempt);
                // An explicit heal wipes the crash history: the operator
                // (or test harness) asked for a fresh start.
                st.crashes.clear();
                let arc = Arc::new(Mutex::new(session));
                if self.swap_slot_if(
                    name,
                    &sup,
                    generation,
                    SessionSlot::Live {
                        arc: arc.clone(),
                        sup: sup.clone(),
                    },
                ) {
                    self.recoveries_total.fetch_add(1, Ordering::Relaxed);
                    Ok(arc)
                } else {
                    // Swapped under us (e.g. removed); report the current
                    // state instead of installing a zombie.
                    drop(st);
                    self.live(name)
                }
            }
        }
    }

    /// Drop a session entirely (live, dormant, or quarantined). The
    /// spooled checkpoint, if any, is left on disk.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`].
    pub fn remove(&self, name: &str) -> Result<(), RegistryError> {
        let mut slots = self.slots.lock();
        match slots.remove(name) {
            Some(SessionSlot::Live { sup, .. }) | Some(SessionSlot::Quarantined { sup }) => {
                // Invalidate outstanding Arcs so a late crash on one is
                // recognised as stale.
                sup.generation.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(SessionSlot::Dormant(_)) => Ok(()),
            None => Err(RegistryError::NotFound(name.to_string())),
        }
    }

    /// Background-checkpoint every live session: write each to its spool
    /// path via the eviction serializer *without* evicting, then reset
    /// its supervisor residue/journal. Sessions with nothing new since
    /// their last checkpoint are skipped. Returns how many checkpoints
    /// were written.
    ///
    /// The live list is snapshotted under the registry lock; checkpoint
    /// I/O runs with only the per-session lock held, so a slow disk
    /// cannot stall unrelated requests. A panic during the flush (e.g.
    /// injected chaos) is handled like any other crash.
    pub fn checkpoint_all(&self) -> usize {
        let live: Vec<NamedLiveSlot> = {
            let slots = self.slots.lock();
            slots
                .iter()
                .filter_map(|(name, slot)| match slot {
                    SessionSlot::Live { arc, sup } => Some((
                        name.clone(),
                        arc.clone(),
                        sup.clone(),
                        sup.generation.load(Ordering::Relaxed),
                    )),
                    _ => None,
                })
                .collect()
        };
        let mut written = 0usize;
        for (name, arc, sup, generation) in live {
            if self.is_shutting_down() {
                break;
            }
            let mut session = arc.lock();
            {
                let st = sup.state.lock();
                let fresh = st.residue.is_some() && st.journal.is_empty();
                if fresh && !session.has_pending_changes() {
                    continue;
                }
            }
            let path = self.ckpt_path(&name);
            match catch_unwind(AssertUnwindSafe(|| session.evict_to(&path))) {
                Ok(Ok(dormant)) => {
                    // Still holding the session lock: no edit can have
                    // been journaled since the snapshot, so the journal
                    // restarts empty.
                    let mut st = sup.state.lock();
                    st.residue = Some(dormant);
                    st.journal.clear();
                    drop(st);
                    written += 1;
                    self.checkpoints_total.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Err(_)) => {
                    // Disk trouble: keep the old residue + journal; the
                    // next tick retries.
                }
                Err(payload) => {
                    drop(session);
                    let _ = self.handle_crash(&name, &sup, generation, panic_message(payload));
                }
            }
        }
        written
    }

    /// The shutdown persist pass: evict every live session to the
    /// spool. Returns `(name, result)` per live session, sorted by
    /// name. Quarantined sessions are skipped (their last good
    /// checkpoint is already on disk).
    pub fn persist_all(&self) -> Vec<(String, Result<PathBuf, SessionError>)> {
        let live: Vec<NamedLiveSlot> = {
            let slots = self.slots.lock();
            slots
                .iter()
                .filter_map(|(name, slot)| match slot {
                    SessionSlot::Live { arc, sup } => Some((
                        name.clone(),
                        arc.clone(),
                        sup.clone(),
                        sup.generation.load(Ordering::Relaxed),
                    )),
                    _ => None,
                })
                .collect()
        };
        let mut results = Vec::with_capacity(live.len());
        for (name, arc, sup, generation) in live {
            let path = self.ckpt_path(&name);
            // The session guard lives in this inner scope only: it is
            // dropped before the slots lock is touched, so checkpoint
            // I/O never overlaps the registry lock.
            let outcome = {
                let mut session = arc.lock();
                match catch_unwind(AssertUnwindSafe(|| session.evict_to(&path))) {
                    Ok(result) => result,
                    Err(payload) => Err(SessionError::BadEdit(format!(
                        "session panicked during the persist flush: {}",
                        panic_message(payload)
                    ))),
                }
            };
            let outcome = match outcome {
                Ok(dormant) => {
                    self.swap_slot_if(&name, &sup, generation, SessionSlot::Dormant(dormant));
                    Ok(path)
                }
                Err(e) => Err(e),
            };
            results.push((name, outcome));
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        results
    }
}

/// Render a `catch_unwind` payload as text for the wire error and logs.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::RunBudget;

    const FIXTURE: &str = "\
module reg_fixture (a, b, y);
  input a, b;
  output y;
  wire n0;
  NAND2 u0 (.a(a), .b(b), .y(n0));
  INV u1 (.a(n0), .y(y));
endmodule
";

    fn tmp_spool(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpasta-registry-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create spool");
        dir
    }

    fn sources() -> DesignSources {
        DesignSources::verilog_only(FIXTURE)
    }

    fn repower(gate: &str, drive: f32) -> Edit {
        Edit::Repower {
            gate: gate.to_string(),
            drive,
        }
    }

    #[test]
    fn create_list_evict_restore_cycle() {
        let spool = tmp_spool("cycle");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("alpha", sources()).expect("create");
        assert_eq!(reg.list().len(), 1);
        assert!(reg.list()[0].is_live());

        let dormant = reg.evict("alpha").expect("evict");
        assert!(dormant.checkpoint_path().exists());
        assert_eq!(reg.list()[0].state, SessionState::Dormant);
        assert!(matches!(reg.live("alpha"), Err(RegistryError::NotLive(_))));
        // Idempotent eviction.
        reg.evict("alpha").expect("evict twice");

        reg.restore("alpha").expect("restore");
        assert!(reg.list()[0].is_live());
        reg.live("alpha").expect("live again");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn capacity_duplicates_and_names_are_enforced() {
        let spool = tmp_spool("caps");
        let reg = Registry::new(spool.clone(), 1, 1);
        reg.create("only", sources()).expect("create");
        assert!(matches!(
            reg.create("only", sources()),
            Err(RegistryError::Duplicate(_))
        ));
        assert!(matches!(
            reg.create("more", sources()),
            Err(RegistryError::Full { max: 1 })
        ));
        assert!(matches!(
            reg.create("../escape", sources()),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(reg.live("ghost"), Err(RegistryError::NotFound(_))));
        reg.remove("only").expect("remove");
        assert!(reg.list().is_empty());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn persist_all_spools_every_live_session() {
        let spool = tmp_spool("persist");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("a", sources()).expect("create");
        reg.create("b", sources()).expect("create");
        let results = reg.persist_all();
        assert_eq!(results.len(), 2);
        for (name, outcome) in &results {
            let path = outcome.as_ref().expect("persisted");
            assert!(path.exists(), "{name} checkpoint written");
        }
        assert!(reg.list().iter().all(|row| !row.is_live()));
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn shutdown_flag_and_request_counter() {
        let reg = Registry::new(PathBuf::from("unused"), 1, 1);
        assert!(!reg.is_shutting_down());
        reg.count_request();
        reg.count_request();
        assert_eq!(reg.requests_served(), 2);
        reg.request_shutdown();
        assert!(reg.is_shutting_down());
    }

    #[test]
    fn admission_budget_sheds_and_releases() {
        let reg = Registry::new(PathBuf::from("unused"), 1, 1).with_admission(2);
        let g1 = reg.try_admit().expect("first");
        let _g2 = reg.try_admit().expect("second");
        assert_eq!(reg.inflight(), 2);
        assert!(matches!(
            reg.try_admit(),
            Err(RegistryError::Overloaded { max: 2 })
        ));
        drop(g1);
        assert_eq!(reg.inflight(), 1);
        reg.try_admit().expect("slot freed");
    }

    #[test]
    fn crash_recovers_from_journal_before_any_checkpoint() {
        let spool = tmp_spool("crash-journal");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("s", sources()).expect("create");
        reg.apply_edits("s", &[repower("u1", 2.0), repower("u0", 3.0)])
            .expect("edits");
        let err = reg
            .with_live("s", |_s| panic!("injected test panic"))
            .expect_err("panic surfaces as Crashed");
        match err {
            RegistryError::Crashed {
                recovered, panic, ..
            } => {
                assert!(recovered, "single crash auto-restores");
                assert!(panic.contains("injected test panic"));
            }
            other => panic!("expected Crashed, got {other:?}"),
        }
        assert_eq!(reg.crashes_total(), 1);
        assert_eq!(reg.recoveries_total(), 1);
        assert!(reg.list()[0].is_live());
        assert_eq!(reg.list()[0].recoveries, 1);

        // The recovered session replays the journal and converges to the
        // same bits as an uninterrupted session.
        let bits = reg
            .with_live("s", |s| {
                s.update_timing(&RunBudget::unbounded()).expect("update");
                s.report(1).wns_ps.to_bits()
            })
            .expect("recovered session serves");
        let mut oracle = Session::create("oracle", sources(), 2).expect("oracle");
        oracle.apply_edit(&repower("u1", 2.0)).expect("edit");
        oracle.apply_edit(&repower("u0", 3.0)).expect("edit");
        oracle
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        assert_eq!(bits, oracle.report(1).wns_ps.to_bits());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn crash_recovers_from_checkpoint_plus_journal() {
        let spool = tmp_spool("crash-ckpt");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("s", sources()).expect("create");
        reg.apply_edits("s", &[repower("u1", 2.0)]).expect("edit");
        reg.with_live("s", |s| {
            s.update_timing(&RunBudget::unbounded()).expect("update")
        })
        .expect("update");
        assert_eq!(reg.checkpoint_all(), 1, "dirty session checkpoints");
        assert_eq!(reg.checkpoint_all(), 0, "clean session skipped");

        // Post-checkpoint edit lands in the journal, then the crash.
        reg.apply_edits("s", &[repower("u0", 0.5)]).expect("edit");
        let err = reg
            .with_live("s", |_s| panic!("boom after checkpoint"))
            .expect_err("crash");
        assert!(matches!(
            err,
            RegistryError::Crashed {
                recovered: true,
                ..
            }
        ));

        let bits = reg
            .with_live("s", |s| {
                s.update_timing(&RunBudget::unbounded()).expect("update");
                s.report(1).wns_ps.to_bits()
            })
            .expect("serves after heal");
        let mut oracle = Session::create("oracle", sources(), 2).expect("oracle");
        oracle.apply_edit(&repower("u1", 2.0)).expect("edit");
        oracle
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        oracle.apply_edit(&repower("u0", 0.5)).expect("edit");
        oracle
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        assert_eq!(bits, oracle.report(1).wns_ps.to_bits());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn repeated_crashes_quarantine_and_restore_heals() {
        let spool = tmp_spool("quarantine");
        let reg = Registry::new(spool.clone(), 2, 4).with_crash_policy(Duration::from_secs(600), 2);
        reg.create("s", sources()).expect("create");
        reg.apply_edits("s", &[repower("u1", 2.0)]).expect("edit");

        let first = reg
            .with_live("s", |_s| panic!("crash 1"))
            .expect_err("crash 1");
        assert!(matches!(
            first,
            RegistryError::Crashed {
                recovered: true,
                ..
            }
        ));
        let second = reg
            .with_live("s", |_s| panic!("crash 2"))
            .expect_err("crash 2");
        assert!(matches!(
            second,
            RegistryError::Quarantined { crashes: 2, .. }
        ));
        assert_eq!(reg.list()[0].state, SessionState::Quarantined);
        assert!(matches!(
            reg.with_live("s", |_s| ()),
            Err(RegistryError::Quarantined { .. })
        ));
        assert!(matches!(
            reg.evict("s"),
            Err(RegistryError::Quarantined { .. })
        ));

        // Explicit restore heals the quarantined slot and clears its
        // crash history.
        reg.restore("s").expect("heal");
        assert!(reg.list()[0].is_live());
        let bits = reg
            .with_live("s", |s| {
                s.update_timing(&RunBudget::unbounded()).expect("update");
                s.report(1).wns_ps.to_bits()
            })
            .expect("healed session serves");
        let mut oracle = Session::create("oracle", sources(), 2).expect("oracle");
        oracle.apply_edit(&repower("u1", 2.0)).expect("edit");
        oracle
            .update_timing(&RunBudget::unbounded())
            .expect("update");
        assert_eq!(bits, oracle.report(1).wns_ps.to_bits());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn targeted_chaos_fires_once_and_heals() {
        let spool = tmp_spool("chaos");
        let chaos = ChaosConfig {
            targeted: vec![("s".to_string(), 1, 0, FaultKind::Panic)],
            ..ChaosConfig::default()
        };
        let reg = Registry::new(spool.clone(), 2, 4).with_chaos(chaos);
        reg.create("s", sources()).expect("create");
        reg.apply_edits("s", &[repower("u1", 2.0)]).expect("edit");
        reg.with_live("s", |s| {
            s.update_timing(&RunBudget::unbounded()).expect("update 0")
        })
        .expect("update 0 clean");

        // Update index 1 at attempt 0 panics mid-operation.
        reg.apply_edits("s", &[repower("u0", 3.0)]).expect("edit");
        let err = reg
            .with_live("s", |s| {
                let _ = s.update_timing(&RunBudget::unbounded());
            })
            .expect_err("chaos fires");
        match &err {
            RegistryError::Crashed {
                recovered, panic, ..
            } => {
                assert!(recovered);
                assert!(panic.contains("injected chaos"), "{panic}");
            }
            other => panic!("expected Crashed, got {other:?}"),
        }

        // The recovered session runs at attempt 1: the same key no
        // longer fires, the retry completes, bits match the oracle.
        let bits = reg
            .with_live("s", |s| {
                s.update_timing(&RunBudget::unbounded()).expect("retry");
                s.report(1).wns_ps.to_bits()
            })
            .expect("heals");
        let mut oracle = Session::create("oracle", sources(), 2).expect("oracle");
        for e in [repower("u1", 2.0), repower("u0", 3.0)] {
            oracle.apply_edit(&e).expect("edit");
            oracle
                .update_timing(&RunBudget::unbounded())
                .expect("update");
        }
        assert_eq!(bits, oracle.report(1).wns_ps.to_bits());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn rejected_edit_reports_index_and_keeps_prefix() {
        let spool = tmp_spool("reject");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("s", sources()).expect("create");
        let receipt = reg
            .apply_edits("s", &[repower("u1", 2.0), repower("ghost", 1.0)])
            .expect("registry-level ok");
        assert_eq!(receipt.applied, 1);
        assert!(receipt.pending);
        let (idx, err) = receipt.rejected.expect("second edit rejected");
        assert_eq!(idx, 1);
        assert!(matches!(err, SessionError::BadEdit(_)));
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn registry_stays_responsive_while_one_session_is_busy() {
        let spool = tmp_spool("responsive");
        let reg = Arc::new(Registry::new(spool.clone(), 2, 4));
        reg.create("busy", sources()).expect("create");
        reg.create("calm", sources()).expect("create");

        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let busy_reg = reg.clone();
        let busy = std::thread::spawn(move || {
            busy_reg
                .with_live("busy", move |_s| {
                    started_tx.send(()).expect("signal");
                    release_rx.recv().expect("release");
                })
                .expect("busy op");
        });
        started_rx.recv().expect("busy op started");

        // With `busy`'s session mutex held, unrelated registry paths —
        // lookup, listing, another session's op — must not block.
        reg.list();
        reg.live("calm").expect("lookup");
        reg.with_live("calm", |s| s.report(1))
            .expect("other session");

        release_tx.send(()).expect("release busy");
        busy.join().expect("join");
        std::fs::remove_dir_all(&spool).ok();
    }
}
