//! The session registry: named [`Session`]s shared across request
//! threads.
//!
//! Each slot is either *live* (an `Arc<Mutex<Session>>` — warm timer,
//! warm partition cache) or *dormant* (a [`DormantSession`] — source
//! text plus a `GPCKPT01` checkpoint in the spool directory). Request
//! handlers clone the `Arc` under the registry lock and release it
//! before locking the session itself, so one slow `update_timing` never
//! blocks requests against other sessions.
//!
//! Eviction takes the session mutex (waiting out in-flight requests),
//! writes the checkpoint, and swaps the slot to dormant; re-admission
//! restores from the checkpoint and swaps back. A request that cloned
//! the `Arc` just before an eviction swaps the slot mutates a detached
//! session and its edit is lost with it — the same outcome as sending
//! the edit after the eviction, which is the race the client signed up
//! for.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use gpasta_check::sync::{AtomicBool, AtomicU64, Mutex, Ordering};

use crate::session::{DesignSources, DormantSession, Session, SessionError};

/// Why a registry operation failed. The wire layer maps each variant to
/// an HTTP status in [`super::proto`].
#[derive(Debug)]
pub enum RegistryError {
    /// No session with this name exists.
    NotFound(String),
    /// The session exists but is dormant; restore it first.
    NotLive(String),
    /// A session with this name already exists.
    Duplicate(String),
    /// The registry is at its live-session capacity.
    Full {
        /// The configured capacity.
        max: usize,
    },
    /// The session name contains characters the spool cannot host.
    BadName(String),
    /// The underlying session operation failed.
    Session(SessionError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(name) => write!(f, "no session named `{name}`"),
            RegistryError::NotLive(name) => {
                write!(f, "session `{name}` is dormant; restore it first")
            }
            RegistryError::Duplicate(name) => write!(f, "session `{name}` already exists"),
            RegistryError::Full { max } => {
                write!(f, "registry is full ({max} sessions); evict one first")
            }
            RegistryError::BadName(name) => write!(
                f,
                "invalid session name `{name}`: use 1-64 characters from [A-Za-z0-9_-], \
                 starting with a letter or digit"
            ),
            RegistryError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for RegistryError {
    fn from(e: SessionError) -> Self {
        RegistryError::Session(e)
    }
}

/// One registry slot.
#[derive(Debug, Clone)]
enum SessionSlot {
    Live(Arc<Mutex<Session>>),
    Dormant(DormantSession),
}

/// A row of [`Registry::list`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfo {
    /// Session name.
    pub name: String,
    /// Whether the slot is live (in memory) or dormant (spooled).
    pub live: bool,
    /// The checkpoint path, for dormant slots.
    pub checkpoint: Option<PathBuf>,
}

/// The shared state of a `gpasta serve` process. `Send + Sync`; request
/// threads hold it behind an `Arc`.
#[derive(Debug)]
pub struct Registry {
    slots: Mutex<HashMap<String, SessionSlot>>,
    spool: PathBuf,
    workers: usize,
    max_sessions: usize,
    shutdown: AtomicBool,
    requests: AtomicU64,
}

impl Registry {
    /// An empty registry spooling eviction checkpoints under `spool`,
    /// giving each session `workers` executor threads and hosting at
    /// most `max_sessions` sessions (live or dormant).
    pub fn new(spool: PathBuf, workers: usize, max_sessions: usize) -> Registry {
        Registry {
            slots: Mutex::new(HashMap::new()),
            spool,
            workers: workers.max(1),
            max_sessions: max_sessions.max(1),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
        }
    }

    /// Executor threads per session.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured session capacity.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Count one served request (monotonic statistics counter).
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Flag the process for shutdown. The accept/read loop observes the
    /// flag and stops taking new requests; the final persist pass then
    /// spools every live session.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release); // hb: serve-shutdown
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) // hb: serve-shutdown
    }

    fn ckpt_path(&self, name: &str) -> PathBuf {
        self.spool.join(format!("{name}.ckpt"))
    }

    fn validate_name(name: &str) -> Result<(), RegistryError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && name.starts_with(|c: char| c.is_ascii_alphanumeric())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if ok {
            Ok(())
        } else {
            Err(RegistryError::BadName(name.to_string()))
        }
    }

    /// Create a session: parse the sources, run the initial full
    /// analysis, install the partition cache, and register the result
    /// live. The analysis runs outside the registry lock, so concurrent
    /// creates (of different names) proceed in parallel.
    ///
    /// # Errors
    ///
    /// [`RegistryError::BadName`] / [`RegistryError::Duplicate`] /
    /// [`RegistryError::Full`] for registry constraints,
    /// [`RegistryError::Session`] when the sources fail to build.
    pub fn create(
        &self,
        name: &str,
        sources: DesignSources,
    ) -> Result<Arc<Mutex<Session>>, RegistryError> {
        Self::validate_name(name)?;
        {
            let slots = self.slots.lock();
            if slots.contains_key(name) {
                return Err(RegistryError::Duplicate(name.to_string()));
            }
            if slots.len() >= self.max_sessions {
                return Err(RegistryError::Full {
                    max: self.max_sessions,
                });
            }
        }
        let session = Session::create(name, sources, self.workers)?;
        let arc = Arc::new(Mutex::new(session));
        let mut slots = self.slots.lock();
        // Re-check: another create may have won the race while we were
        // analysing.
        if slots.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        if slots.len() >= self.max_sessions {
            return Err(RegistryError::Full {
                max: self.max_sessions,
            });
        }
        slots.insert(name.to_string(), SessionSlot::Live(arc.clone()));
        Ok(arc)
    }

    /// The live session named `name`, for request handlers. Clones the
    /// `Arc` under the registry lock; the caller locks the session
    /// itself afterwards.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] / [`RegistryError::NotLive`].
    pub fn live(&self, name: &str) -> Result<Arc<Mutex<Session>>, RegistryError> {
        let slots = self.slots.lock();
        match slots.get(name) {
            Some(SessionSlot::Live(arc)) => Ok(arc.clone()),
            Some(SessionSlot::Dormant(_)) => Err(RegistryError::NotLive(name.to_string())),
            None => Err(RegistryError::NotFound(name.to_string())),
        }
    }

    /// Every slot, sorted by name.
    pub fn list(&self) -> Vec<SessionInfo> {
        let slots = self.slots.lock();
        let mut rows: Vec<SessionInfo> = slots
            .iter()
            .map(|(name, slot)| match slot {
                SessionSlot::Live(_) => SessionInfo {
                    name: name.clone(),
                    live: true,
                    checkpoint: None,
                },
                SessionSlot::Dormant(d) => SessionInfo {
                    name: name.clone(),
                    live: false,
                    checkpoint: Some(d.checkpoint_path().to_path_buf()),
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Evict a session: flush pending edits, write the `GPCKPT01`
    /// checkpoint into the spool, and swap the slot to dormant.
    /// Idempotent — evicting a dormant session returns its existing
    /// residue.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`], or [`RegistryError::Session`] when
    /// the checkpoint cannot be written.
    pub fn evict(&self, name: &str) -> Result<DormantSession, RegistryError> {
        let arc = {
            let slots = self.slots.lock();
            match slots.get(name) {
                Some(SessionSlot::Live(arc)) => arc.clone(),
                Some(SessionSlot::Dormant(d)) => return Ok(d.clone()),
                None => return Err(RegistryError::NotFound(name.to_string())),
            }
        };
        // Waits for in-flight requests against this session to drain.
        let dormant = arc.lock().evict_to(&self.ckpt_path(name))?;
        let mut slots = self.slots.lock();
        slots.insert(name.to_string(), SessionSlot::Dormant(dormant.clone()));
        Ok(dormant)
    }

    /// Re-admit a dormant session from its checkpoint. Idempotent —
    /// restoring a live session returns it as-is.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`], or [`RegistryError::Session`] when
    /// the checkpoint is unreadable or no longer matches the sources.
    pub fn restore(&self, name: &str) -> Result<Arc<Mutex<Session>>, RegistryError> {
        let dormant = {
            let slots = self.slots.lock();
            match slots.get(name) {
                Some(SessionSlot::Live(arc)) => return Ok(arc.clone()),
                Some(SessionSlot::Dormant(d)) => d.clone(),
                None => return Err(RegistryError::NotFound(name.to_string())),
            }
        };
        let session = dormant.restore(self.workers)?;
        let arc = Arc::new(Mutex::new(session));
        let mut slots = self.slots.lock();
        match slots.get(name) {
            // A concurrent restore won the race; use its session so
            // both callers observe the same object.
            Some(SessionSlot::Live(existing)) => Ok(existing.clone()),
            _ => {
                slots.insert(name.to_string(), SessionSlot::Live(arc.clone()));
                Ok(arc)
            }
        }
    }

    /// Drop a session entirely (live or dormant). The spooled
    /// checkpoint, if any, is left on disk.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`].
    pub fn remove(&self, name: &str) -> Result<(), RegistryError> {
        let mut slots = self.slots.lock();
        match slots.remove(name) {
            Some(_) => Ok(()),
            None => Err(RegistryError::NotFound(name.to_string())),
        }
    }

    /// The shutdown persist pass: evict every live session to the
    /// spool. Returns `(name, result)` per live session, sorted by
    /// name.
    pub fn persist_all(&self) -> Vec<(String, Result<PathBuf, SessionError>)> {
        let live: Vec<(String, Arc<Mutex<Session>>)> = {
            let slots = self.slots.lock();
            slots
                .iter()
                .filter_map(|(name, slot)| match slot {
                    SessionSlot::Live(arc) => Some((name.clone(), arc.clone())),
                    SessionSlot::Dormant(_) => None,
                })
                .collect()
        };
        let mut results = Vec::with_capacity(live.len());
        for (name, arc) in live {
            let path = self.ckpt_path(&name);
            let outcome = match arc.lock().evict_to(&path) {
                Ok(dormant) => {
                    let mut slots = self.slots.lock();
                    slots.insert(name.clone(), SessionSlot::Dormant(dormant));
                    Ok(path)
                }
                Err(e) => Err(e),
            };
            results.push((name, outcome));
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "\
module reg_fixture (a, b, y);
  input a, b;
  output y;
  wire n0;
  NAND2 u0 (.a(a), .b(b), .y(n0));
  INV u1 (.a(n0), .y(y));
endmodule
";

    fn tmp_spool(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpasta-registry-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create spool");
        dir
    }

    fn sources() -> DesignSources {
        DesignSources::verilog_only(FIXTURE)
    }

    #[test]
    fn create_list_evict_restore_cycle() {
        let spool = tmp_spool("cycle");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("alpha", sources()).expect("create");
        assert_eq!(reg.list().len(), 1);
        assert!(reg.list()[0].live);

        let dormant = reg.evict("alpha").expect("evict");
        assert!(dormant.checkpoint_path().exists());
        assert!(!reg.list()[0].live);
        assert!(matches!(reg.live("alpha"), Err(RegistryError::NotLive(_))));
        // Idempotent eviction.
        reg.evict("alpha").expect("evict twice");

        reg.restore("alpha").expect("restore");
        assert!(reg.list()[0].live);
        reg.live("alpha").expect("live again");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn capacity_duplicates_and_names_are_enforced() {
        let spool = tmp_spool("caps");
        let reg = Registry::new(spool.clone(), 1, 1);
        reg.create("only", sources()).expect("create");
        assert!(matches!(
            reg.create("only", sources()),
            Err(RegistryError::Duplicate(_))
        ));
        assert!(matches!(
            reg.create("more", sources()),
            Err(RegistryError::Full { max: 1 })
        ));
        assert!(matches!(
            reg.create("../escape", sources()),
            Err(RegistryError::BadName(_))
        ));
        assert!(matches!(reg.live("ghost"), Err(RegistryError::NotFound(_))));
        reg.remove("only").expect("remove");
        assert!(reg.list().is_empty());
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn persist_all_spools_every_live_session() {
        let spool = tmp_spool("persist");
        let reg = Registry::new(spool.clone(), 2, 4);
        reg.create("a", sources()).expect("create");
        reg.create("b", sources()).expect("create");
        let results = reg.persist_all();
        assert_eq!(results.len(), 2);
        for (name, outcome) in &results {
            let path = outcome.as_ref().expect("persisted");
            assert!(path.exists(), "{name} checkpoint written");
        }
        assert!(reg.list().iter().all(|row| !row.live));
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn shutdown_flag_and_request_counter() {
        let reg = Registry::new(PathBuf::from("unused"), 1, 1);
        assert!(!reg.is_shutting_down());
        reg.count_request();
        reg.count_request();
        assert_eq!(reg.requests_served(), 2);
        reg.request_shutdown();
        assert!(reg.is_shutting_down());
    }
}
