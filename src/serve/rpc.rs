//! The JSON-RPC stdio frontend of `gpasta serve --stdio`.
//!
//! Line-delimited JSON: one request object per line on stdin, one
//! response object per line on stdout. Requests are
//! `{"id": ..., "method": "...", "params": {...}}` (the same method
//! names as the HTTP routes — see [`super::proto::dispatch`]);
//! responses echo the `id` with either `"result"` or `"error"`:
//!
//! ```text
//! {"id":1,"method":"status","params":{}}
//! {"id":1,"result":{"ok":true,...}}
//! {"id":2,"method":"update_timing","params":{"name":"s1","deadline_ms":50}}
//! {"id":2,"result":{"name":"s1","outcome":{"stop":"completed",...},...}}
//! ```
//!
//! The loop ends on EOF or after serving a `shutdown` request; either
//! way every live session is spooled before returning.

use std::io::{BufRead, Write};
use std::sync::Arc;

use serde_json::Value;

use super::proto::{dispatch, ApiError};
use super::registry::Registry;
use super::ServeError;

/// Run the stdio frontend until EOF or `shutdown`, then spool every
/// live session and return.
///
/// # Errors
///
/// [`ServeError::Io`] when stdin/stdout themselves fail; malformed
/// request lines produce `{"error": ...}` responses and the loop
/// continues.
pub fn run_stdio(registry: Arc<Registry>) -> Result<(), ServeError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    for line in stdin.lock().lines() {
        let line = line.map_err(ServeError::Io)?;
        if line.trim().is_empty() {
            continue;
        }
        let response = respond_to_line(&registry, &line);
        let text = match serde_json::to_string(&response) {
            Ok(text) => text,
            Err(_) => String::from("{\"error\":{\"kind\":\"serialize\"}}"),
        };
        writeln!(out, "{text}").map_err(ServeError::Io)?;
        out.flush().map_err(ServeError::Io)?;
        if registry.is_shutting_down() {
            break;
        }
    }
    for (name, outcome) in registry.persist_all() {
        match outcome {
            Ok(path) => eprintln!("gpasta serve: spooled `{name}` to {}", path.display()),
            Err(e) => eprintln!("gpasta serve: failed to spool `{name}`: {e}"),
        }
    }
    Ok(())
}

/// Build the one-line response for one request line.
fn respond_to_line(registry: &Registry, line: &str) -> Value {
    let (id, result) = match serde_json::from_str::<Value>(line) {
        Ok(req) => {
            let id = req.get("id").cloned().unwrap_or(Value::Null);
            let result = match req.get("method").and_then(Value::as_str) {
                Some(method) => {
                    let empty = Value::Object(Vec::new());
                    let params = req.get("params").unwrap_or(&empty);
                    dispatch(registry, method, params)
                }
                None => Err(ApiError::bad_request(
                    "missing_field",
                    "`method` (string) is required",
                )),
            };
            (id, result)
        }
        Err(e) => (
            Value::Null,
            Err(ApiError::bad_request(
                "bad_request",
                format!("request line is not JSON: {e}"),
            )),
        ),
    };
    let payload = match result {
        Ok(value) => ("result", value),
        Err(e) => match e.to_value() {
            // `to_value` wraps as {"error": {...}}; unwrap one level so
            // the response is {"id":..,"error":{...}}.
            Value::Object(pairs) => match pairs.into_iter().next() {
                Some((_, inner)) => ("error", inner),
                None => ("error", Value::Null),
            },
            other => ("error", other),
        },
    };
    Value::Object(vec![
        ("id".to_string(), id),
        (payload.0.to_string(), payload.1),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn registry(tag: &str) -> (Arc<Registry>, PathBuf) {
        let spool =
            std::env::temp_dir().join(format!("gpasta-rpc-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&spool).expect("spool");
        (Arc::new(Registry::new(spool.clone(), 2, 4)), spool)
    }

    #[test]
    fn responses_echo_the_request_id() {
        let (reg, spool) = registry("id");
        let ok = respond_to_line(&reg, r#"{"id":7,"method":"status","params":{}}"#);
        assert_eq!(ok["id"], 7u32);
        assert_eq!(ok["result"]["ok"], true);

        let err = respond_to_line(&reg, r#"{"id":"abc","method":"nope"}"#);
        assert_eq!(err["id"], "abc");
        assert_eq!(err["error"]["kind"], "no_such_method");

        let garbage = respond_to_line(&reg, "not json");
        assert_eq!(garbage["id"], Value::Null);
        assert_eq!(garbage["error"]["kind"], "bad_request");
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn shutdown_method_flips_the_registry_flag() {
        let (reg, spool) = registry("shutdown");
        assert!(!reg.is_shutting_down());
        let resp = respond_to_line(&reg, r#"{"id":1,"method":"shutdown"}"#);
        assert_eq!(resp["result"]["ok"], true);
        assert!(reg.is_shutting_down());
        std::fs::remove_dir_all(&spool).ok();
    }
}
