//! `gpasta serve` — timing analysis as a long-lived service.
//!
//! The CLI flows pay the full price of a design on every invocation:
//! parse, build the timing graph, partition, propagate. This module
//! keeps that state *warm* instead: named [`Session`]s
//! ([`crate::session`]) live in a shared [`Registry`], each owning its
//! timer, incremental-partition cache, and executor, and clients apply
//! edits and re-run `update_timing` over the wire for the incremental
//! price. Two frontends share one protocol layer ([`proto`]):
//!
//! * **HTTP/JSON** ([`http`]) — a thread-per-connection HTTP/1.1
//!   server; concurrent requests against different sessions run in
//!   parallel (each session behind its own mutex);
//! * **JSON-RPC stdio** ([`rpc`]) — line-delimited JSON on
//!   stdin/stdout, for embedding under a supervisor without opening a
//!   port.
//!
//! Capacity is managed by eviction: `DELETE /sessions/{name}` flushes
//! the session to a `GPCKPT01` checkpoint in the spool directory and
//! keeps only the light [`DormantSession`](crate::session::DormantSession)
//! residue; `POST /sessions/{name}/restore` re-admits it bit-identically.
//! Shutdown (via `POST /shutdown`, the `shutdown` RPC, or stdin EOF)
//! runs a persist pass that spools every live session, so a serve
//! process can be stopped and restarted without losing timing state.
//!
//! DESIGN.md §12 documents the session ownership model and the full
//! wire schema.

mod http;
mod proto;
mod registry;
mod rpc;

pub use http::{parse_request, HttpLimits, Request};
pub use proto::{dispatch, ApiError};
pub use registry::{ChaosConfig, EditReceipt, Registry, RegistryError, SessionInfo, SessionState};

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

#[cfg(doc)]
use crate::session::Session;

/// Configuration of one `gpasta serve` process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Listen address for the HTTP frontend (`127.0.0.1:0` picks a free
    /// port and prints it).
    pub addr: String,
    /// Serve JSON-RPC on stdin/stdout instead of HTTP.
    pub stdio: bool,
    /// Directory for eviction checkpoints.
    pub spool: PathBuf,
    /// Executor worker threads per session.
    pub workers: usize,
    /// Maximum number of sessions (live plus dormant).
    pub max_sessions: usize,
    /// Background-checkpoint interval in milliseconds; `0` disables the
    /// checkpointer (crash recovery then replays the whole edit journal
    /// from the sources).
    pub checkpoint_ms: u64,
    /// In-flight request budget; past it, requests shed with `503` +
    /// `Retry-After`. `0` = unlimited.
    pub max_inflight: u64,
    /// Concurrent connection cap for the HTTP frontend; excess
    /// connections are shed with `503`. `0` = unlimited.
    pub max_connections: usize,
    /// Socket read/write deadline in milliseconds (HTTP frontend); a
    /// slow-trickling client gets 408 instead of parking a worker
    /// thread. `0` disables.
    pub read_timeout_ms: u64,
    /// Most requests one `Connection: keep-alive` connection may carry
    /// before the server closes it; `0` disables keep-alive.
    pub keep_alive_requests: u64,
    /// Idle deadline between keep-alive requests in milliseconds; a
    /// connection quiet past it is closed silently. `0` falls back to
    /// the read deadline.
    pub idle_timeout_ms: u64,
    /// Crash-window width: this many milliseconds of history count
    /// toward quarantine.
    pub crash_window_ms: u64,
    /// Crashes within the window that quarantine a session.
    pub max_crashes: usize,
    /// Deterministic fault injection into live sessions (chaos tier
    /// only; inactive by default).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:9480".to_string(),
            stdio: false,
            spool: PathBuf::from("gpasta-spool"),
            workers: 4,
            max_sessions: 16,
            checkpoint_ms: 30_000,
            max_inflight: 256,
            max_connections: 64,
            read_timeout_ms: 10_000,
            keep_alive_requests: 32,
            idle_timeout_ms: 5_000,
            crash_window_ms: 60_000,
            max_crashes: 3,
            chaos: ChaosConfig::default(),
        }
    }
}

/// The serve frontend failed to start or its transport died.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// The address as configured.
        addr: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The spool directory could not be created.
    Spool {
        /// The configured spool path.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// stdin/stdout failed mid-protocol (stdio frontend).
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
            ServeError::Spool { path, source } => {
                write!(
                    f,
                    "cannot create spool directory {}: {source}",
                    path.display()
                )
            }
            ServeError::Io(e) => write!(f, "stdio transport failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } | ServeError::Spool { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
        }
    }
}

/// Run a serve process to completion (shutdown request or stdio EOF).
///
/// # Errors
///
/// [`ServeError`] when the spool cannot be created or the transport
/// fails to start.
pub fn run(config: &ServeConfig) -> Result<(), ServeError> {
    std::fs::create_dir_all(&config.spool).map_err(|source| ServeError::Spool {
        path: config.spool.clone(),
        source,
    })?;
    let registry = Arc::new(
        Registry::new(config.spool.clone(), config.workers, config.max_sessions)
            .with_admission(config.max_inflight)
            .with_crash_policy(
                Duration::from_millis(config.crash_window_ms.max(1)),
                config.max_crashes,
            )
            .with_chaos(config.chaos.clone()),
    );

    // The background checkpointer bounds how much work a crash loses:
    // every interval it spools dirty live sessions via the eviction
    // serializer without evicting them. Short sleep ticks keep shutdown
    // latency low even with long intervals.
    let checkpointer = if config.checkpoint_ms > 0 {
        let reg = registry.clone();
        let interval = Duration::from_millis(config.checkpoint_ms);
        Some(std::thread::spawn(move || {
            let tick = interval.min(Duration::from_millis(25));
            let mut elapsed = Duration::ZERO;
            while !reg.is_shutting_down() {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    reg.checkpoint_all();
                }
            }
        }))
    } else {
        None
    };

    let served = if config.stdio {
        rpc::run_stdio(registry.clone())
    } else {
        let timeout = if config.read_timeout_ms > 0 {
            Some(Duration::from_millis(config.read_timeout_ms))
        } else {
            None
        };
        let idle = if config.idle_timeout_ms > 0 {
            Some(Duration::from_millis(config.idle_timeout_ms))
        } else {
            None
        };
        let limits = HttpLimits {
            read_timeout: timeout,
            write_timeout: timeout,
            keep_alive_requests: config.keep_alive_requests,
            idle_timeout: idle,
            ..HttpLimits::default()
        };
        http::run_http(
            registry.clone(),
            &config.addr,
            limits,
            config.max_connections,
        )
    };
    // The frontend can also end on stdio EOF, where no shutdown request
    // ever set the flag — set it now so the checkpointer exits.
    registry.request_shutdown();
    if let Some(handle) = checkpointer {
        let _ = handle.join();
    }
    served
}
