//! `gpasta serve` — timing analysis as a long-lived service.
//!
//! The CLI flows pay the full price of a design on every invocation:
//! parse, build the timing graph, partition, propagate. This module
//! keeps that state *warm* instead: named [`Session`]s
//! ([`crate::session`]) live in a shared [`Registry`], each owning its
//! timer, incremental-partition cache, and executor, and clients apply
//! edits and re-run `update_timing` over the wire for the incremental
//! price. Two frontends share one protocol layer ([`proto`]):
//!
//! * **HTTP/JSON** ([`http`]) — a thread-per-connection HTTP/1.1
//!   server; concurrent requests against different sessions run in
//!   parallel (each session behind its own mutex);
//! * **JSON-RPC stdio** ([`rpc`]) — line-delimited JSON on
//!   stdin/stdout, for embedding under a supervisor without opening a
//!   port.
//!
//! Capacity is managed by eviction: `DELETE /sessions/{name}` flushes
//! the session to a `GPCKPT01` checkpoint in the spool directory and
//! keeps only the light [`DormantSession`](crate::session::DormantSession)
//! residue; `POST /sessions/{name}/restore` re-admits it bit-identically.
//! Shutdown (via `POST /shutdown`, the `shutdown` RPC, or stdin EOF)
//! runs a persist pass that spools every live session, so a serve
//! process can be stopped and restarted without losing timing state.
//!
//! DESIGN.md §12 documents the session ownership model and the full
//! wire schema.

mod http;
mod proto;
mod registry;
mod rpc;

pub use proto::{dispatch, ApiError};
pub use registry::{Registry, RegistryError, SessionInfo};

use std::path::PathBuf;
use std::sync::Arc;

#[cfg(doc)]
use crate::session::Session;

/// Configuration of one `gpasta serve` process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address for the HTTP frontend (`127.0.0.1:0` picks a free
    /// port and prints it).
    pub addr: String,
    /// Serve JSON-RPC on stdin/stdout instead of HTTP.
    pub stdio: bool,
    /// Directory for eviction checkpoints.
    pub spool: PathBuf,
    /// Executor worker threads per session.
    pub workers: usize,
    /// Maximum number of sessions (live plus dormant).
    pub max_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:9480".to_string(),
            stdio: false,
            spool: PathBuf::from("gpasta-spool"),
            workers: 4,
            max_sessions: 16,
        }
    }
}

/// The serve frontend failed to start or its transport died.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        /// The address as configured.
        addr: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The spool directory could not be created.
    Spool {
        /// The configured spool path.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// stdin/stdout failed mid-protocol (stdio frontend).
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind {addr}: {source}")
            }
            ServeError::Spool { path, source } => {
                write!(
                    f,
                    "cannot create spool directory {}: {source}",
                    path.display()
                )
            }
            ServeError::Io(e) => write!(f, "stdio transport failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } | ServeError::Spool { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
        }
    }
}

/// Run a serve process to completion (shutdown request or stdio EOF).
///
/// # Errors
///
/// [`ServeError`] when the spool cannot be created or the transport
/// fails to start.
pub fn run(config: &ServeConfig) -> Result<(), ServeError> {
    std::fs::create_dir_all(&config.spool).map_err(|source| ServeError::Spool {
        path: config.spool.clone(),
        source,
    })?;
    let registry = Arc::new(Registry::new(
        config.spool.clone(),
        config.workers,
        config.max_sessions,
    ));
    if config.stdio {
        rpc::run_stdio(registry)
    } else {
        http::run_http(registry, &config.addr)
    }
}
