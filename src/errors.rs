//! Shared error plumbing for every `gpasta` process boundary.
//!
//! The workspace grew one error enum per binary family: the bench
//! harness carried [`CliError`] (malformed command lines) and
//! [`OutputError`] (result files), and `src/bin/gpasta.rs` stringified
//! everything. This module is the single home for all of them:
//!
//! * [`CliError`] / [`OutputError`] — promoted from `gpasta-bench`
//!   (which now re-exports them from here);
//! * [`Error`] — the top-level error every `gpasta` subcommand
//!   (`partition`, `sanitize`, `sta`, `faults`, `update`, `serve`)
//!   returns, with [`Error::exit_code`] mapping the class of failure to
//!   the process exit status: usage errors exit 2, runtime failures
//!   exit 1 — the split `BenchConfig::from_args` already established.

use std::error::Error as StdError;
use std::fmt;
use std::path::PathBuf;

use crate::checkpoint::FlowError;
use crate::serve::ServeError;
use crate::session::SessionError;

/// A malformed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag that takes a value appeared last.
    MissingValue(&'static str),
    /// A flag's value failed to parse.
    BadValue {
        /// The flag whose value was rejected.
        flag: &'static str,
        /// The offending value as given.
        value: String,
        /// Why it was rejected.
        why: String,
    },
    /// A flag whose value must be positive was zero or negative.
    NonPositive(&'static str),
    /// An argument no binary understands.
    UnknownFlag(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::BadValue { flag, value, why } => {
                write!(f, "{flag}: invalid value `{value}`: {why}")
            }
            CliError::NonPositive(flag) => write!(f, "{flag} must be positive"),
            CliError::UnknownFlag(arg) => write!(f, "unknown argument {arg}; try --help"),
        }
    }
}

impl StdError for CliError {}

/// Writing a result file failed.
#[derive(Debug)]
pub enum OutputError {
    /// A filesystem operation failed; `op` names it and `path` is the
    /// file (or directory) involved.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// Which operation failed (`create directory`, `write`).
        op: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The rows do not share a column layout, so no single CSV header
    /// can describe them.
    InconsistentColumns {
        /// Label of the first offending row.
        label: String,
        /// Columns that row carries.
        found: usize,
        /// Columns the header (first row) carries.
        expected: usize,
    },
    /// JSON serialization failed.
    Serialize {
        /// Destination the rows were meant for.
        path: PathBuf,
        /// The serializer's error.
        source: serde_json::Error,
    },
    /// A result file exists but does not parse as a row array (the
    /// perf-regression baseline loader reads committed JSON back).
    Parse {
        /// File that failed to parse.
        path: PathBuf,
        /// What was wrong with its contents.
        message: String,
    },
}

impl fmt::Display for OutputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutputError::Io { path, op, source } => {
                write!(f, "cannot {op} {}: {source}", path.display())
            }
            OutputError::InconsistentColumns {
                label,
                found,
                expected,
            } => write!(
                f,
                "row `{label}` has {found} column(s) but the header has {expected}"
            ),
            OutputError::Serialize { path, source } => {
                write!(f, "cannot serialize rows for {}: {source}", path.display())
            }
            OutputError::Parse { path, message } => {
                write!(f, "cannot parse {}: {message}", path.display())
            }
        }
    }
}

impl StdError for OutputError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            OutputError::Io { source, .. } => Some(source),
            OutputError::Serialize { source, .. } => Some(source),
            OutputError::InconsistentColumns { .. } | OutputError::Parse { .. } => None,
        }
    }
}

/// The top-level error of the `gpasta` binary: every subcommand funnels
/// into this one enum so `main` has a single place to render the
/// message and choose the exit status.
#[derive(Debug)]
pub enum Error {
    /// The command line itself is malformed (usage error, exit 2).
    Cli(CliError),
    /// The crash-safe update flow failed (checkpoint or partition
    /// maintenance).
    Flow(FlowError),
    /// A [`Session`](crate::session::Session) operation failed.
    Session(SessionError),
    /// The `serve` daemon failed to start or run.
    Serve(ServeError),
    /// Any other runtime failure, already rendered (file I/O, parse
    /// errors, validation mismatches).
    Runtime(String),
}

impl Error {
    /// The process exit status this error maps to: 2 for usage errors
    /// (the caller got the command line wrong), 1 for runtime failures.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Cli(_) => 2,
            _ => 1,
        }
    }

    /// Whether the usage banner should accompany the message.
    pub fn is_usage(&self) -> bool {
        matches!(self, Error::Cli(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Cli(e) => write!(f, "{e}"),
            Error::Flow(e) => write!(f, "{e}"),
            Error::Session(e) => write!(f, "{e}"),
            Error::Serve(e) => write!(f, "{e}"),
            Error::Runtime(msg) => f.write_str(msg),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Cli(e) => Some(e),
            Error::Flow(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Runtime(_) => None,
        }
    }
}

impl From<CliError> for Error {
    fn from(e: CliError) -> Self {
        Error::Cli(e)
    }
}

impl From<FlowError> for Error {
    fn from(e: FlowError) -> Self {
        Error::Flow(e)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Runtime(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_exit_2_runtime_errors_exit_1() {
        let usage = Error::Cli(CliError::MissingValue("--ps"));
        assert_eq!(usage.exit_code(), 2);
        assert!(usage.is_usage());
        let runtime = Error::Runtime("cannot read edges.txt".into());
        assert_eq!(runtime.exit_code(), 1);
        assert!(!runtime.is_usage());
    }

    #[test]
    fn display_renders_the_inner_error() {
        let e = Error::Cli(CliError::BadValue {
            flag: "--ps",
            value: "many".into(),
            why: "invalid digit".into(),
        });
        let msg = e.to_string();
        assert!(msg.contains("--ps"), "{msg}");
        assert!(msg.contains("many"), "{msg}");
    }
}
