//! # G-PASTA — GPU-Accelerated Partitioning Algorithm for Static Timing Analysis
//!
//! Facade crate for the G-PASTA (DAC 2024) reproduction. Re-exports every
//! workspace crate under one roof so examples and downstream users need a
//! single dependency:
//!
//! * [`tdg`] — task-dependency-graph substrate (CSR DAGs, levels, partitions,
//!   quotient graphs, validation);
//! * [`gpu`] — software GPU-device simulation (bulk-synchronous kernels,
//!   atomics, Thrust-style primitives);
//! * [`sched`] — Taskflow-like work-stealing executor for plain and
//!   partitioned TDGs;
//! * [`sta`] — OpenTimer-like static timing analysis engine that emits the
//!   TDGs the paper partitions;
//! * [`circuits`] — synthetic designs calibrated to the paper's benchmark
//!   suite;
//! * [`core`] — the partitioners themselves: G-PASTA, deter-G-PASTA,
//!   seq-G-PASTA, and the GDCA / Sarkar baselines;
//! * [`checkpoint`] — crash-safe checkpoint/resume for the incremental
//!   timing-update flow (`gpasta update`);
//! * [`session`] — the owned `Session` unit: a loaded design plus its
//!   timer, warm partition cache, and executor, movable across threads
//!   and evictable to a checkpoint;
//! * [`serve`] — `gpasta serve`: an HTTP/JSON daemon (and JSON-RPC
//!   stdio mode) hosting warm concurrent sessions;
//! * [`shard`] — `gpasta shard`: sharded multi-process execution with a
//!   kill-tolerant shard supervisor, boundary-value hand-off, and
//!   checkpointed supervisor recovery;
//! * [`errors`] — shared error types for every process boundary.
//!
//! # Quickstart
//!
//! ```
//! use gpasta::core::{GPasta, Partitioner, PartitionerOptions};
//! use gpasta::tdg::{TdgBuilder, TaskId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small TDG and partition it with G-PASTA defaults
//! // (partition size = TDG size; the algorithm converges on its own).
//! let mut b = TdgBuilder::new(4);
//! b.add_edge(TaskId(0), TaskId(1));
//! b.add_edge(TaskId(0), TaskId(2));
//! b.add_edge(TaskId(1), TaskId(3));
//! b.add_edge(TaskId(2), TaskId(3));
//! let tdg = b.build()?;
//!
//! let partition = GPasta::new().partition(&tdg, &PartitionerOptions::default())?;
//! gpasta::tdg::validate::check_all(&tdg, &partition)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod errors;
pub mod serve;
pub mod session;
pub mod shard;

pub use gpasta_circuits as circuits;
pub use gpasta_core as core;
pub use gpasta_gpu as gpu;
pub use gpasta_sched as sched;
pub use gpasta_sta as sta;
pub use gpasta_tdg as tdg;
