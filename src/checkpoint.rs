//! Crash-safe checkpoint/resume for the incremental timing-update flow.
//!
//! A checkpoint captures everything the `gpasta update` loop needs to
//! continue bit-identically after a crash: the design identity (circuit
//! name, scale, modifier seed), the iteration counter, the complete
//! mutable timing state ([`TimingSnapshot`] — raw `f32` bit patterns, so
//! NaN payloads and signed zeros survive), and the incremental
//! partitioner's cache ([`CacheExport`]). The netlist, timing graph, and
//! cell library are *not* stored: they are deterministic functions of the
//! circuit name and scale, and the flow mutates timing state only through
//! [`Timer::repower_gate`] (whose drive multipliers live in the snapshot),
//! never through netlist-mutating modifiers, so a rebuild plus a snapshot
//! restore reproduces the pre-crash state exactly.
//!
//! The on-disk format is a little-endian binary record:
//!
//! ```text
//! magic "GPCKPT" + version "01"          8 bytes
//! circuit name                           u32 length + UTF-8 bytes
//! scale (f64 bits), modifier seed        2 × u64
//! iterations completed                   u32
//! design shape (gates, nets, inputs,
//!   outputs, graph nodes)                5 × u32   (early mismatch check)
//! timing snapshot                        clock-period bits + 9 u32 arrays
//! partition cache                        present flag + fingerprint, Ps,
//!                                        max pid, epoch, raw assignment
//! FNV-1a 64 checksum of all above        u64
//! ```
//!
//! Writes are crash-safe: the record is serialized to a sibling temporary
//! file, flushed with `File::sync_all`, and atomically renamed over the
//! destination, so a crash at any point leaves either the old checkpoint
//! or the new one — never a torn file. Reads verify the checksum before
//! parsing and every section length before allocating, so truncated or
//! bit-flipped files are rejected with a typed [`CheckpointError`].

use std::error::Error;
use std::fmt;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::circuits::PaperCircuit;
use crate::core::{
    CacheExport, IncrementalError, IncrementalPartitioner, PartitionerOptions, SeqGPasta,
};
use crate::sched::{Executor, FaultPlan, RetryPolicy, RunBudget, StopCause};
use crate::sta::{CellLibrary, GateId, Timer, TimingSnapshot};
use crate::tdg::{QuotientArena, QuotientTdg, ValidatePartitionError};

const MAGIC: &[u8; 6] = b"GPCKPT";
const VERSION: &[u8; 2] = b"01";

/// A checkpoint read from or written to disk failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed; `op` names it (`create`, `write`,
    /// `sync`, `rename`, `read`) and `path` is the file involved.
    Io {
        /// File the operation touched.
        path: PathBuf,
        /// Which operation failed.
        op: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The file does not start with the checkpoint magic — it is not a
    /// gpasta checkpoint at all.
    BadMagic,
    /// The file is a gpasta checkpoint of an unsupported format version.
    BadVersion {
        /// The version bytes found after the magic.
        found: [u8; 2],
    },
    /// The file is structurally damaged: checksum mismatch, truncation,
    /// or a section length pointing past the end of the file.
    Corrupt(String),
    /// The checkpoint is intact but was taken against a different run:
    /// circuit, scale, seed, or design shape disagree with the caller's.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, op, source } => {
                write!(f, "cannot {op} {}: {source}", path.display())
            }
            CheckpointError::BadMagic => write!(f, "not a gpasta checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => write!(
                f,
                "unsupported checkpoint version {:?} (expected {:?})",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(VERSION)
            ),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::Mismatch(why) => write!(f, "checkpoint mismatch: {why}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The design-shape fingerprint stored in a checkpoint: enough to reject
/// a resume against the wrong design with a readable message before the
/// per-array [`TimingSnapshot`] shape checks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignShape {
    /// Gate count of the netlist.
    pub gates: u32,
    /// Net count of the netlist.
    pub nets: u32,
    /// Primary-input count.
    pub inputs: u32,
    /// Primary-output count.
    pub outputs: u32,
    /// Node count of the flattened timing graph.
    pub nodes: u32,
}

impl DesignShape {
    /// The shape of the design a [`Timer`] analyses — the identity check
    /// both the update flow and [`Session`](crate::session::Session)
    /// eviction stamp into their checkpoints.
    pub fn of(timer: &Timer) -> DesignShape {
        let nl = timer.netlist();
        DesignShape {
            gates: nl.num_gates() as u32,
            nets: nl.num_nets() as u32,
            inputs: nl.num_inputs() as u32,
            outputs: nl.num_outputs() as u32,
            nodes: timer.graph().num_nodes() as u32,
        }
    }
}

/// Everything the update flow persists between iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateCheckpoint {
    /// Paper name of the circuit (`vga_lcd`, …).
    pub circuit: String,
    /// Circuit scale as `f64` bits (bit-exact round trip).
    pub scale_bits: u64,
    /// Seed of the deterministic modifier schedule.
    pub seed: u64,
    /// Number of update iterations already completed.
    pub iterations_done: u32,
    /// Shape of the design the snapshot was taken against.
    pub shape: DesignShape,
    /// The complete mutable timing state, bit-exact.
    pub snapshot: TimingSnapshot,
    /// The incremental partitioner's cache, when warm.
    pub cache: Option<CacheExport>,
}

// ---------------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------------

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

fn put_arr(buf: &mut Vec<u8>, arr: &[u32]) {
    put_u32(buf, arr.len() as u32);
    for &v in arr {
        put_u32(buf, v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Corrupt(format!(
                "truncated while reading {what} ({} bytes left, {n} needed)",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self, what: &str) -> Result<&'a [u8], CheckpointError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    fn arr(&mut self, what: &str) -> Result<Vec<u32>, CheckpointError> {
        let len = self.u32(what)? as usize;
        // Length-check before allocating so a corrupt length cannot demand
        // gigabytes; the 4-byte stride bounds it to what is actually there.
        if self.buf.len() - self.pos < len * 4 {
            return Err(CheckpointError::Corrupt(format!(
                "{what} claims {len} entries but only {} bytes remain",
                self.buf.len() - self.pos
            )));
        }
        (0..len).map(|_| self.u32(what)).collect()
    }
}

fn encode(ckpt: &UpdateCheckpoint) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(VERSION);
    put_bytes(&mut buf, ckpt.circuit.as_bytes());
    put_u64(&mut buf, ckpt.scale_bits);
    put_u64(&mut buf, ckpt.seed);
    put_u32(&mut buf, ckpt.iterations_done);
    for v in [
        ckpt.shape.gates,
        ckpt.shape.nets,
        ckpt.shape.inputs,
        ckpt.shape.outputs,
        ckpt.shape.nodes,
    ] {
        put_u32(&mut buf, v);
    }
    let s = &ckpt.snapshot;
    put_u32(&mut buf, s.clock_period_bits);
    for arr in [
        &s.slew,
        &s.arrival,
        &s.required,
        &s.arc_delay,
        &s.drive,
        &s.gate_load,
        &s.net_delay,
        &s.input_delay,
        &s.output_delay,
    ] {
        put_arr(&mut buf, arr);
    }
    match &ckpt.cache {
        None => buf.push(0),
        Some(c) => {
            buf.push(1);
            put_u64(&mut buf, c.fingerprint);
            put_u64(&mut buf, c.ps as u64);
            put_u32(&mut buf, c.max_pid);
            put_u64(&mut buf, c.epoch);
            put_arr(&mut buf, &c.raw);
        }
    }
    let sum = fnv1a64(&buf);
    put_u64(&mut buf, sum);
    buf
}

fn decode(buf: &[u8]) -> Result<UpdateCheckpoint, CheckpointError> {
    if buf.len() < MAGIC.len() + VERSION.len() + 8 {
        return Err(CheckpointError::Corrupt("file shorter than header".into()));
    }
    if &buf[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let found = [buf[6], buf[7]];
    if &found != VERSION {
        return Err(CheckpointError::BadVersion { found });
    }
    let (payload, sum_bytes) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("split_at gave 8 bytes"));
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(CheckpointError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let mut r = Reader {
        buf: payload,
        pos: MAGIC.len() + VERSION.len(),
    };
    let circuit = String::from_utf8(r.bytes("circuit name")?.to_vec())
        .map_err(|_| CheckpointError::Corrupt("circuit name is not UTF-8".into()))?;
    let scale_bits = r.u64("scale")?;
    let seed = r.u64("seed")?;
    let iterations_done = r.u32("iteration counter")?;
    let shape = DesignShape {
        gates: r.u32("shape")?,
        nets: r.u32("shape")?,
        inputs: r.u32("shape")?,
        outputs: r.u32("shape")?,
        nodes: r.u32("shape")?,
    };
    let snapshot = TimingSnapshot {
        clock_period_bits: r.u32("clock period")?,
        slew: r.arr("slew")?,
        arrival: r.arr("arrival")?,
        required: r.arr("required")?,
        arc_delay: r.arr("arc delay")?,
        drive: r.arr("drive")?,
        gate_load: r.arr("gate load")?,
        net_delay: r.arr("net delay")?,
        input_delay: r.arr("input delay")?,
        output_delay: r.arr("output delay")?,
    };
    let cache = match r.take(1, "cache flag")?[0] {
        0 => None,
        1 => Some(CacheExport {
            fingerprint: r.u64("cache fingerprint")?,
            ps: r.u64("cache Ps")? as usize,
            max_pid: r.u32("cache max pid")?,
            epoch: r.u64("cache epoch")?,
            raw: r.arr("cache assignment")?,
        }),
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "cache presence flag is {other}, expected 0 or 1"
            )))
        }
    };
    if r.pos != payload.len() {
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes after the last section",
            payload.len() - r.pos
        )));
    }
    Ok(UpdateCheckpoint {
        circuit,
        scale_bits,
        seed,
        iterations_done,
        shape,
        snapshot,
        cache,
    })
}

fn io_err<'a>(
    path: &'a Path,
    op: &'static str,
) -> impl FnOnce(std::io::Error) -> CheckpointError + 'a {
    move |source| CheckpointError::Io {
        path: path.to_path_buf(),
        op,
        source,
    }
}

/// Write `ckpt` to `path` crash-safely: serialize to `<path>.tmp`, flush
/// with `sync_all`, and atomically rename into place. A crash at any
/// point leaves either the previous checkpoint or the complete new one.
///
/// # Errors
///
/// [`CheckpointError::Io`] naming the failed operation and path.
pub fn write_checkpoint(path: &Path, ckpt: &UpdateCheckpoint) -> Result<(), CheckpointError> {
    let bytes = encode(ckpt);
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = File::create(&tmp).map_err(io_err(&tmp, "create"))?;
    f.write_all(&bytes).map_err(io_err(&tmp, "write"))?;
    f.sync_all().map_err(io_err(&tmp, "sync"))?;
    drop(f);
    fs::rename(&tmp, path).map_err(io_err(path, "rename"))?;
    Ok(())
}

/// Read and fully validate a checkpoint written by [`write_checkpoint`].
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read,
/// [`CheckpointError::BadMagic`] / [`CheckpointError::BadVersion`] for
/// foreign files, and [`CheckpointError::Corrupt`] for checksum or
/// structure damage.
pub fn read_checkpoint(path: &Path) -> Result<UpdateCheckpoint, CheckpointError> {
    let bytes = fs::read(path).map_err(io_err(path, "read"))?;
    decode(&bytes)
}

// ---------------------------------------------------------------------------
// The update flow
// ---------------------------------------------------------------------------

/// An error from [`run_update_flow`].
#[derive(Debug)]
pub enum FlowError {
    /// Reading or writing a checkpoint failed.
    Checkpoint(CheckpointError),
    /// The incremental partitioner rejected an install, repair, or
    /// restored cache.
    Partition(IncrementalError),
    /// A repaired partition failed quotient-graph construction. The
    /// repair contract certifies an acyclic quotient, so this indicates
    /// a library bug — reported as a typed error (rather than a panic)
    /// so long-running callers can fail one request, not the process.
    Quotient(ValidatePartitionError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Checkpoint(e) => write!(f, "{e}"),
            FlowError::Partition(e) => write!(f, "partition maintenance failed: {e}"),
            FlowError::Quotient(e) => write!(
                f,
                "repaired partition has no valid quotient (library bug): {e}"
            ),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Checkpoint(e) => Some(e),
            FlowError::Partition(e) => Some(e),
            FlowError::Quotient(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for FlowError {
    fn from(e: CheckpointError) -> Self {
        FlowError::Checkpoint(e)
    }
}

impl From<IncrementalError> for FlowError {
    fn from(e: IncrementalError) -> Self {
        FlowError::Partition(e)
    }
}

/// Configuration of one `gpasta update` run.
#[derive(Debug, Clone)]
pub struct UpdateFlowConfig {
    /// Which paper circuit to analyze.
    pub circuit: PaperCircuit,
    /// Circuit scale (fraction of the paper-size TDG).
    pub scale: f64,
    /// Total incremental-update iterations the run should reach.
    pub iterations: u32,
    /// Executor worker-thread count.
    pub workers: usize,
    /// Seed of the deterministic gate-repower schedule.
    pub seed: u64,
    /// Write a checkpoint here after every completed iteration.
    pub checkpoint_to: Option<PathBuf>,
    /// Resume from this checkpoint instead of starting at iteration 0.
    pub resume_from: Option<PathBuf>,
    /// Stop (simulating a crash) right after checkpointing iteration `i`.
    pub kill_after: Option<u32>,
    /// Optional wall-clock budget for each iteration's update run.
    pub deadline: Option<Duration>,
}

impl UpdateFlowConfig {
    /// A small, fast default: `aes_core` at 1% scale, 8 iterations, two
    /// workers, no checkpointing.
    pub fn small(circuit: PaperCircuit) -> Self {
        UpdateFlowConfig {
            circuit,
            scale: 0.01,
            iterations: 8,
            workers: 2,
            seed: 0x5EED,
            checkpoint_to: None,
            resume_from: None,
            kill_after: None,
            deadline: None,
        }
    }
}

/// What a (possibly partial) update-flow run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateFlowOutcome {
    /// Iterations completed (including any done before a resume).
    pub iterations_done: u32,
    /// `true` when `kill_after` stopped the run early (simulated crash).
    pub killed: bool,
    /// Why the last update run stopped; [`StopCause::Completed`] unless a
    /// deadline expired mid-iteration.
    pub stop: StopCause,
    /// Setup WNS as `f32` bits (bit-exact comparison across runs).
    pub wns_bits: u32,
    /// Setup TNS as `f32` bits.
    pub tns_bits: u32,
    /// Endpoints whose slack reads *unknown* (NaN) because the last
    /// iteration stopped early; zero for completed runs.
    pub unknown_endpoints: u32,
    /// The incremental partitioner's raw per-task assignment.
    pub assignment: Vec<u32>,
    /// The partitioner's repair epoch.
    pub epoch: u64,
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Apply iteration `i`'s deterministic modifier batch: one to three gate
/// repowers drawn from `splitmix64(seed, i)`. Only [`Timer::repower_gate`]
/// is used — drive multipliers live in the timing snapshot, so a resumed
/// run rebuilds the netlist from the circuit spec and still sees the full
/// modifier history. Netlist-mutating modifiers (`set_net_cap`) would be
/// lost by that rebuild and are deliberately excluded.
pub(crate) fn apply_modifier_schedule(timer: &mut Timer, seed: u64, iteration: u32) {
    const DRIVES: [f32; 4] = [0.5, 1.0, 2.0, 4.0];
    let num_gates = timer.netlist().num_gates() as u64;
    let h = splitmix64(seed ^ splitmix64(u64::from(iteration)));
    let count = 1 + (h % 3);
    for k in 0..count {
        let hk = splitmix64(h ^ splitmix64(0x4B1D ^ k));
        let g = GateId((hk % num_gates) as u32);
        let drive = DRIVES[(hk >> 32) as usize % DRIVES.len()];
        timer.repower_gate(g, drive);
    }
}

/// Run the incremental timing-update flow: build the circuit, install the
/// partition cache on the full update TDG (or restore timer + cache from
/// `resume_from`), then per iteration apply the deterministic modifier
/// schedule, repair the dirty cone, execute the partitioned update through
/// the bounded recovering executor, and checkpoint. The flow is
/// bit-deterministic: the same config reaches the same WNS/TNS bits and
/// partition assignment whether run straight through or killed and
/// resumed at any iteration boundary, at any worker count.
///
/// # Errors
///
/// [`FlowError::Checkpoint`] for unreadable/unwritable or mismatched
/// checkpoints, [`FlowError::Partition`] if partition maintenance fails.
///
/// # Panics
///
/// Panics if `scale` is not positive or `workers` is zero.
pub fn run_update_flow(cfg: &UpdateFlowConfig) -> Result<UpdateFlowOutcome, FlowError> {
    let mut timer = Timer::new(cfg.circuit.build(cfg.scale), CellLibrary::typical());
    let exec = Executor::new(cfg.workers);
    let opts = PartitionerOptions::default();
    let policy = RetryPolicy::default();
    let budget = match cfg.deadline {
        Some(d) => RunBudget::unbounded().with_deadline(d),
        None => RunBudget::unbounded(),
    };
    let mut inc = IncrementalPartitioner::new(SeqGPasta::new());

    let start_iter = match &cfg.resume_from {
        Some(path) => {
            let ckpt = read_checkpoint(path)?;
            let mismatch = |why: String| FlowError::Checkpoint(CheckpointError::Mismatch(why));
            if ckpt.circuit != cfg.circuit.name() {
                return Err(mismatch(format!(
                    "checkpoint is for circuit `{}`, run is for `{}`",
                    ckpt.circuit,
                    cfg.circuit.name()
                )));
            }
            if ckpt.scale_bits != cfg.scale.to_bits() {
                return Err(mismatch(format!(
                    "checkpoint scale {} differs from run scale {}",
                    f64::from_bits(ckpt.scale_bits),
                    cfg.scale
                )));
            }
            if ckpt.seed != cfg.seed {
                return Err(mismatch(format!(
                    "checkpoint modifier seed {:#x} differs from run seed {:#x}",
                    ckpt.seed, cfg.seed
                )));
            }
            let shape = DesignShape::of(&timer);
            if ckpt.shape != shape {
                return Err(mismatch(format!(
                    "design shape {:?} differs from the checkpoint's {:?}",
                    shape, ckpt.shape
                )));
            }
            // The full-space TDG is a pure function of the (rebuilt)
            // design, so it can host the restored cache; building it also
            // clears the fresh timer's full-dirty flag, which the snapshot
            // restore below would do anyway.
            let full_tdg = timer.update_timing().tdg().clone();
            timer
                .restore_snapshot(&ckpt.snapshot)
                .map_err(|e| mismatch(e.to_string()))?;
            match ckpt.cache {
                Some(cache) => inc.restore_cache(&full_tdg, cache)?,
                // A cache-less checkpoint (not produced by this flow, but
                // legal in the format) degrades to a fresh install on the
                // restored timing state.
                None => inc.install(&full_tdg, &opts)?,
            }
            ckpt.iterations_done
        }
        None => {
            let full = timer.update_timing();
            inc.install(full.tdg(), &opts)?;
            full.run_sequential();
            0
        }
    };

    let mut done = start_iter;
    let mut killed = false;
    let mut stop = StopCause::Completed;
    let mut unknown_endpoints = 0u32;
    // Every iteration rebuilds the quotient; the arena keeps the scratch
    // and output buffers warm so steady-state iterations stop touching
    // the allocator (output is bit-identical to the plain build).
    let mut quotient_arena = QuotientArena::new();
    for i in start_iter..cfg.iterations {
        apply_modifier_schedule(&mut timer, cfg.seed, i);
        let update = timer.update_timing();
        let ids = update.full_space_ids();
        let (_stats, sub) = inc.repair_and_project(&ids)?;
        let quotient = QuotientTdg::build_in(update.tdg(), &sub, &mut quotient_arena)
            .map_err(FlowError::Quotient)?;
        let rec = update.run_partitioned_recovering_bounded(
            &exec,
            &quotient,
            &FaultPlan::none(),
            &policy,
            &budget,
        );
        quotient_arena.recycle(quotient);
        if rec.outcome.stop != StopCause::Completed {
            // Budget expired mid-iteration: degrade explicitly (stale
            // values read as NaN) and stop without checkpointing the
            // partial state — the last checkpoint is the resume point.
            update.mark_unknown(&rec);
            stop = rec.outcome.stop;
            unknown_endpoints =
                (rec.unfinished_endpoints.len() + rec.poisoned_endpoints.len()) as u32;
            break;
        }
        drop(update);
        done = i + 1;
        if let Some(path) = &cfg.checkpoint_to {
            write_checkpoint(
                path,
                &UpdateCheckpoint {
                    circuit: cfg.circuit.name().to_string(),
                    scale_bits: cfg.scale.to_bits(),
                    seed: cfg.seed,
                    iterations_done: done,
                    shape: DesignShape::of(&timer),
                    snapshot: timer.snapshot(),
                    cache: inc.export_cache().ok(),
                },
            )?;
        }
        if cfg.kill_after == Some(done) {
            killed = true;
            break;
        }
    }

    let report = timer.report(1);
    Ok(UpdateFlowOutcome {
        iterations_done: done,
        killed,
        stop,
        wns_bits: report.wns_ps.to_bits(),
        tns_bits: report.tns_ps.to_bits(),
        unknown_endpoints,
        assignment: inc
            .raw_assignment()
            .map(<[u32]>::to_vec)
            .unwrap_or_default(),
        epoch: inc.epoch(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "gpasta-ckpt-test-{}-{tag}-{n}.ckpt",
            std::process::id()
        ))
    }

    fn sample_checkpoint() -> UpdateCheckpoint {
        UpdateCheckpoint {
            circuit: "aes_core".into(),
            scale_bits: 0.01f64.to_bits(),
            seed: 0x5EED,
            iterations_done: 3,
            shape: DesignShape {
                gates: 7,
                nets: 9,
                inputs: 2,
                outputs: 1,
                nodes: 31,
            },
            snapshot: TimingSnapshot {
                clock_period_bits: 1000.0f32.to_bits(),
                slew: vec![f32::NAN.to_bits(), (-0.0f32).to_bits(), 7],
                arrival: vec![1, 2, 3],
                required: vec![4, 5, 6],
                arc_delay: vec![8],
                drive: vec![2.0f32.to_bits()],
                gate_load: vec![9],
                net_delay: vec![10, 11],
                input_delay: vec![12],
                output_delay: vec![13],
            },
            cache: Some(CacheExport {
                fingerprint: 0xFEED_BEEF,
                ps: 64,
                raw: vec![0, 0, 1, 2],
                max_pid: 2,
                epoch: 5,
            }),
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        for cache in [true, false] {
            let mut ckpt = sample_checkpoint();
            if !cache {
                ckpt.cache = None;
            }
            let path = tmp_path("roundtrip");
            write_checkpoint(&path, &ckpt).expect("write");
            let back = read_checkpoint(&path).expect("read");
            assert_eq!(back, ckpt);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn write_leaves_no_temp_file_behind() {
        let path = tmp_path("notmp");
        write_checkpoint(&path, &sample_checkpoint()).expect("write");
        let mut tmp_name = path.file_name().expect("file name").to_os_string();
        tmp_name.push(".tmp");
        assert!(!path.with_file_name(tmp_name).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_files_are_rejected_with_typed_errors() {
        let good = encode(&sample_checkpoint());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode(&bad_magic), Err(CheckpointError::BadMagic)));

        let mut bad_version = good.clone();
        bad_version[7] = b'9';
        assert!(matches!(
            decode(&bad_version),
            Err(CheckpointError::BadVersion {
                found: [b'0', b'9']
            })
        ));

        // A bit flip anywhere in the payload trips the checksum.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(decode(&flipped), Err(CheckpointError::Corrupt(_))));

        // Every truncation point is rejected, never a panic or a bogus parse.
        for cut in 0..good.len() {
            let err = decode(&good[..cut]).expect_err("truncated file must fail");
            assert!(
                matches!(
                    err,
                    CheckpointError::Corrupt(_)
                        | CheckpointError::BadMagic
                        | CheckpointError::BadVersion { .. }
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_array_length_is_rejected_without_huge_allocation() {
        let mut bytes = encode(&sample_checkpoint());
        // The first array length (slew) sits right after the fixed-size
        // header sections; stamp an absurd length there and re-checksum.
        let name_len = 4 + "aes_core".len();
        let off = 8 + name_len + 8 + 8 + 4 + 5 * 4 + 4;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        match decode(&bytes) {
            Err(CheckpointError::Corrupt(why)) => assert!(why.contains("slew"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn io_errors_name_the_path_and_operation() {
        let path = Path::new("/definitely/not/a/real/dir/x.ckpt");
        match read_checkpoint(path) {
            Err(CheckpointError::Io {
                op: "read",
                path: p,
                ..
            }) => {
                assert!(p.to_string_lossy().contains("not/a/real"))
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn modifier_schedule_is_deterministic() {
        let mut a = Timer::new(PaperCircuit::AesCore.build(0.002), CellLibrary::typical());
        let mut b = Timer::new(PaperCircuit::AesCore.build(0.002), CellLibrary::typical());
        a.update_timing().run_sequential();
        b.update_timing().run_sequential();
        for i in 0..4 {
            apply_modifier_schedule(&mut a, 0xABCD, i);
            apply_modifier_schedule(&mut b, 0xABCD, i);
        }
        a.update_timing().run_sequential();
        b.update_timing().run_sequential();
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn kill_and_resume_matches_straight_through() {
        let path = tmp_path("resume");
        let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
        cfg.scale = 0.002;
        cfg.iterations = 6;
        let straight = run_update_flow(&cfg).expect("straight run");
        assert_eq!(straight.iterations_done, 6);
        assert_eq!(straight.stop, StopCause::Completed);

        let mut killed_cfg = cfg.clone();
        killed_cfg.checkpoint_to = Some(path.clone());
        killed_cfg.kill_after = Some(3);
        let partial = run_update_flow(&killed_cfg).expect("killed run");
        assert!(partial.killed);
        assert_eq!(partial.iterations_done, 3);

        let mut resume_cfg = cfg.clone();
        resume_cfg.resume_from = Some(path.clone());
        let resumed = run_update_flow(&resume_cfg).expect("resumed run");
        assert_eq!(resumed.iterations_done, 6);
        assert_eq!(resumed.wns_bits, straight.wns_bits);
        assert_eq!(resumed.tns_bits, straight.tns_bits);
        assert_eq!(resumed.assignment, straight.assignment);
        assert_eq!(resumed.epoch, straight.epoch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_mismatched_run() {
        let path = tmp_path("mismatch");
        let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
        cfg.scale = 0.002;
        cfg.iterations = 2;
        cfg.checkpoint_to = Some(path.clone());
        run_update_flow(&cfg).expect("checkpointing run");

        for (tag, tweak) in [
            (
                "circuit",
                Box::new(|c: &mut UpdateFlowConfig| c.circuit = PaperCircuit::DesPerf)
                    as Box<dyn Fn(&mut UpdateFlowConfig)>,
            ),
            (
                "scale",
                Box::new(|c: &mut UpdateFlowConfig| c.scale = 0.004),
            ),
            ("seed", Box::new(|c: &mut UpdateFlowConfig| c.seed ^= 1)),
        ] {
            let mut bad = cfg.clone();
            bad.checkpoint_to = None;
            bad.resume_from = Some(path.clone());
            tweak(&mut bad);
            match run_update_flow(&bad) {
                Err(FlowError::Checkpoint(CheckpointError::Mismatch(_))) => {}
                other => panic!("{tag}: expected Mismatch, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_deadline_stops_early_and_reports_it() {
        let mut cfg = UpdateFlowConfig::small(PaperCircuit::AesCore);
        cfg.scale = 0.002;
        cfg.iterations = 3;
        cfg.deadline = Some(Duration::ZERO);
        let out = run_update_flow(&cfg).expect("bounded run");
        assert_eq!(out.stop, StopCause::DeadlineExpired);
        assert_eq!(out.iterations_done, 0);
        // Every endpoint the stopped iteration would have refreshed reads
        // unknown (NaN), not stale-but-plausible.
        assert!(out.unknown_endpoints > 0);
    }
}
