//! Boundary projection of timing state for multi-process (sharded)
//! execution.
//!
//! A shard worker executes a subset of an update's fprop/bprop tasks in
//! its own process. Before it can start, it needs exactly the timing
//! values its tasks *read* but do not *compute* — the shard's boundary
//! inputs; after it finishes, the supervisor needs exactly the values its
//! tasks *wrote* — the shard's delta. [`ValueSet`] names such a set of
//! storage cells, and [`BoundaryValues`] pairs a set with the raw bit
//! patterns, so a value that crossed a process boundary is bit-identical
//! to one computed locally.
//!
//! # Read/write sets (the projection rules)
//!
//! From the propagation semantics in [`crate::analysis`]:
//!
//! * `fprop(v)` **writes** `arrival[v]`, `slew[v]`, and `arc_delay[a]` for
//!   every fanin arc `a` of `v`; it **reads** `arrival[u]`, `slew[u]` for
//!   every fanin from-node `u` (plus static electrical state that both
//!   processes recompute deterministically from the design).
//! * `bprop(v)` **writes** `required[v]`; it **reads** `required[w]` for
//!   every fanout to-node `w` *and* `arc_delay[a]` for every fanout arc
//!   `a` (cached by `fprop(w)`).
//!
//! The arc-delay read is the subtle one: `fprop(w)` is only a
//! *transitive* TDG predecessor of `bprop(v)` (via `bprop(w)`), so a
//! boundary computed from direct task-graph predecessors alone would
//! miss it. These functions therefore work from the pin-level
//! [`TimingGraph`] read sets, never from TDG adjacency.

use crate::analysis::TimingData;
use crate::graph::{NodeId, TimingGraph};
use crate::timer::{TaskKind, TimingUpdateTdg};
use gpasta_tdg::TaskId;

/// A sorted, deduplicated set of timing-storage cells: forward state
/// (arrival + slew) per node, required times per node, and cached delays
/// per arc.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueSet {
    /// Nodes whose arrival/slew corners are in the set (sorted).
    pub fprop_nodes: Vec<u32>,
    /// Nodes whose required corners are in the set (sorted).
    pub req_nodes: Vec<u32>,
    /// Arcs whose cached delay corners are in the set (sorted).
    pub arcs: Vec<u32>,
}

fn sort_dedup(v: &mut Vec<u32>) {
    v.sort_unstable();
    v.dedup();
}

impl ValueSet {
    /// The cells written by executing `tasks` of `update`.
    pub fn writes_of(update: &TimingUpdateTdg<'_>, tasks: &[u32]) -> Self {
        let graph = update.graph();
        let mut set = ValueSet::default();
        for &t in tasks {
            let t = TaskId(t);
            let v = update.node(t);
            match update.kind(t) {
                TaskKind::Fprop => {
                    set.fprop_nodes.push(v.0);
                    set.arcs.extend_from_slice(graph.fanin(v));
                }
                TaskKind::Bprop => set.req_nodes.push(v.0),
            }
        }
        set.normalise();
        set
    }

    /// The cells read by executing `tasks` of `update` (static electrical
    /// state excluded — both sides recompute it from the design).
    pub fn reads_of(update: &TimingUpdateTdg<'_>, tasks: &[u32]) -> Self {
        let graph = update.graph();
        let mut set = ValueSet::default();
        for &t in tasks {
            let t = TaskId(t);
            let v = update.node(t);
            match update.kind(t) {
                TaskKind::Fprop => {
                    for &a in graph.fanin(v) {
                        set.fprop_nodes.push(graph.arc(a).from.0);
                    }
                }
                TaskKind::Bprop => {
                    for &a in graph.fanout(v) {
                        set.req_nodes.push(graph.arc(a).to.0);
                        set.arcs.push(a);
                    }
                }
            }
        }
        set.normalise();
        set
    }

    /// Set difference `self \ other` (all three components).
    pub fn minus(&self, other: &ValueSet) -> ValueSet {
        fn diff(a: &[u32], b: &[u32]) -> Vec<u32> {
            // Both sides are sorted; a linear merge keeps this O(n).
            let mut out = Vec::new();
            let mut j = 0;
            for &x in a {
                while j < b.len() && b[j] < x {
                    j += 1;
                }
                if j >= b.len() || b[j] != x {
                    out.push(x);
                }
            }
            out
        }
        ValueSet {
            fprop_nodes: diff(&self.fprop_nodes, &other.fprop_nodes),
            req_nodes: diff(&self.req_nodes, &other.req_nodes),
            arcs: diff(&self.arcs, &other.arcs),
        }
    }

    /// Total number of cells named (nodes count once per component).
    pub fn len(&self) -> usize {
        self.fprop_nodes.len() + self.req_nodes.len() + self.arcs.len()
    }

    /// Whether the set names no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn normalise(&mut self) {
        sort_dedup(&mut self.fprop_nodes);
        sort_dedup(&mut self.req_nodes);
        sort_dedup(&mut self.arcs);
    }

    /// Every id must be in range for `graph`.
    pub fn in_range_of(&self, graph: &TimingGraph) -> bool {
        let n = graph.num_nodes() as u32;
        let m = graph.num_arcs() as u32;
        self.fprop_nodes.iter().all(|&v| v < n)
            && self.req_nodes.iter().all(|&v| v < n)
            && self.arcs.iter().all(|&a| a < m)
    }
}

/// A [`ValueSet`] plus the raw bit patterns of every named cell — the
/// payload a shard boundary ships between processes.
///
/// Layout: 8 words per fprop node (four arrival corners then four slew
/// corners), 4 words per required node, 4 words per arc, in the set's
/// sorted id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryValues {
    /// `clock_period_ps` bits — required times depend on it, so both
    /// sides must agree before exchanging values.
    pub clock_period_bits: u32,
    /// The cells these values belong to.
    pub set: ValueSet,
    /// 8 words per `set.fprop_nodes` entry.
    pub fprop_bits: Vec<u32>,
    /// 4 words per `set.req_nodes` entry.
    pub req_bits: Vec<u32>,
    /// 4 words per `set.arcs` entry.
    pub arc_bits: Vec<u32>,
}

impl BoundaryValues {
    /// Capture the bit patterns of every cell in `set` from `data`.
    pub fn export(data: &TimingData, set: ValueSet) -> Self {
        let mut fprop_bits = Vec::with_capacity(set.fprop_nodes.len() * 8);
        for &v in &set.fprop_nodes {
            fprop_bits.extend_from_slice(&data.fprop_bits(NodeId(v)));
        }
        let mut req_bits = Vec::with_capacity(set.req_nodes.len() * 4);
        for &v in &set.req_nodes {
            req_bits.extend_from_slice(&data.required_bits(NodeId(v)));
        }
        let mut arc_bits = Vec::with_capacity(set.arcs.len() * 4);
        for &a in &set.arcs {
            arc_bits.extend_from_slice(&data.arc_delay_bits(a));
        }
        BoundaryValues {
            clock_period_bits: data.clock_period_ps.to_bits(),
            set,
            fprop_bits,
            req_bits,
            arc_bits,
        }
    }

    /// Store every captured bit pattern into `data`.
    ///
    /// # Panics
    ///
    /// Panics if the value arrays disagree with the set's cell counts
    /// (a malformed frame must never half-apply) or if any id is out of
    /// range for `data`.
    pub fn apply(&self, data: &TimingData) {
        assert_eq!(
            self.fprop_bits.len(),
            self.set.fprop_nodes.len() * 8,
            "fprop payload length mismatch"
        );
        assert_eq!(
            self.req_bits.len(),
            self.set.req_nodes.len() * 4,
            "required payload length mismatch"
        );
        assert_eq!(
            self.arc_bits.len(),
            self.set.arcs.len() * 4,
            "arc payload length mismatch"
        );
        for (i, &v) in self.set.fprop_nodes.iter().enumerate() {
            let w: [u32; 8] = self.fprop_bits[i * 8..i * 8 + 8]
                .try_into()
                .expect("chunk of 8");
            data.set_fprop_bits(NodeId(v), w);
        }
        for (i, &v) in self.set.req_nodes.iter().enumerate() {
            let w: [u32; 4] = self.req_bits[i * 4..i * 4 + 4]
                .try_into()
                .expect("chunk of 4");
            data.set_required_bits(NodeId(v), w);
        }
        for (i, &a) in self.set.arcs.iter().enumerate() {
            let w: [u32; 4] = self.arc_bits[i * 4..i * 4 + 4]
                .try_into()
                .expect("chunk of 4");
            data.set_arc_delay_bits(a, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::timer::Timer;
    use crate::CellLibrary;

    fn small_timer() -> Timer {
        // a -> u0 -> u1 -> u2 -> y, an inverter chain.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y = nb.add_primary_output("y");
        let mut prev = None;
        for i in 0..3 {
            let g = nb.add_gate(format!("u{i}"), CellKind::Inv);
            match prev {
                None => nb.connect_to_gate(a, g, 0).expect("valid"),
                Some(p) => nb.connect_gates(p, g, 0).expect("valid"),
            }
            prev = Some(g);
        }
        nb.connect_to_output(prev.expect("nonempty"), y)
            .expect("valid");
        Timer::new(nb.build().expect("well-formed"), CellLibrary::typical())
    }

    #[test]
    fn writes_and_reads_project_the_semantics() {
        let mut timer = small_timer();
        let update = timer.update_timing();
        let all: Vec<u32> = (0..update.tdg().num_tasks() as u32).collect();
        let writes = ValueSet::writes_of(&update, &all);
        let reads = ValueSet::reads_of(&update, &all);
        let graph = update.graph();
        assert!(writes.in_range_of(graph));
        assert!(reads.in_range_of(graph));
        // A full update writes the forward state of every fprop node and
        // the required time of every bprop node; its external reads are
        // empty (a full run is self-contained).
        assert_eq!(writes.fprop_nodes.len(), update.num_fprop_tasks());
        assert!(reads.minus(&writes).is_empty(), "full run needs no inputs");
    }

    #[test]
    fn bprop_reads_include_fanout_arc_delays() {
        let mut timer = small_timer();
        let update = timer.update_timing();
        let tdg = update.tdg();
        // Pick any bprop task of a node with fanout; its read set must
        // name every fanout arc (cached by the far side's fprop).
        let graph = update.graph();
        let t = (0..tdg.num_tasks() as u32)
            .find(|&t| {
                update.kind(TaskId(t)) == TaskKind::Bprop
                    && !graph.fanout(update.node(TaskId(t))).is_empty()
            })
            .expect("some bprop task has fanout");
        let reads = ValueSet::reads_of(&update, &[t]);
        let v = update.node(TaskId(t));
        for &a in graph.fanout(v) {
            assert!(reads.arcs.contains(&a), "fanout arc {a} must be read");
        }
    }

    #[test]
    fn export_apply_round_trips_bit_exactly() {
        let mut timer = small_timer();
        let update = timer.update_timing();
        update.run_sequential();
        let all: Vec<u32> = (0..update.tdg().num_tasks() as u32).collect();
        let writes = ValueSet::writes_of(&update, &all);
        let data = update.data();
        let values = BoundaryValues::export(data, writes.clone());
        drop(update);
        let before = timer.snapshot();

        // Scramble every cell the set names, then apply the export: the
        // snapshot must come back bit-identical.
        for &v in &writes.fprop_nodes {
            timer.data().set_fprop_bits(NodeId(v), [0x7fc0_0001; 8]);
        }
        for &v in &writes.req_nodes {
            timer.data().set_required_bits(NodeId(v), [0x7fc0_0001; 4]);
        }
        for &a in &writes.arcs {
            timer.data().set_arc_delay_bits(a, [0x7fc0_0001; 4]);
        }
        assert_ne!(before, timer.snapshot(), "scramble must change state");
        values.apply(timer.data());
        assert_eq!(before, timer.snapshot(), "apply must restore every bit");
    }

    #[test]
    fn minus_is_a_set_difference() {
        let a = ValueSet {
            fprop_nodes: vec![1, 2, 3, 5],
            req_nodes: vec![0, 4],
            arcs: vec![7, 9],
        };
        let b = ValueSet {
            fprop_nodes: vec![2, 5],
            req_nodes: vec![4],
            arcs: vec![],
        };
        let d = a.minus(&b);
        assert_eq!(d.fprop_nodes, vec![1, 3]);
        assert_eq!(d.req_nodes, vec![0]);
        assert_eq!(d.arcs, vec![7, 9]);
        assert_eq!(d.len(), 5);
    }
}
