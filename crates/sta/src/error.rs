//! Error types for netlist construction.

use std::error::Error;
use std::fmt;

/// Error returned by connection methods on
/// [`NetlistBuilder`](crate::NetlistBuilder).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConnectError {
    /// The referenced gate id does not exist.
    UnknownGate {
        /// The invalid gate id.
        gate: u32,
    },
    /// The referenced input pin index exceeds the cell's input count.
    PinOutOfRange {
        /// The gate whose pin was referenced.
        gate: u32,
        /// The invalid pin index.
        pin: u8,
        /// The cell's actual input count.
        num_inputs: usize,
    },
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConnectError::UnknownGate { gate } => write!(f, "gate g{gate} does not exist"),
            ConnectError::PinOutOfRange {
                gate,
                pin,
                num_inputs,
            } => write!(
                f,
                "pin {pin} out of range for gate g{gate} with {num_inputs} inputs"
            ),
        }
    }
}

impl Error for ConnectError {}

/// Error returned by [`NetlistBuilder::build`](crate::NetlistBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildNetlistError {
    /// A sink pin is driven by more than one driver.
    MultipleDrivers {
        /// Debug rendering of the over-driven sink pin.
        sink: String,
    },
    /// A gate input pin has no driver.
    UnconnectedPin {
        /// The gate instance name.
        gate: String,
        /// The dangling pin index.
        pin: u8,
    },
    /// A primary output has no driver.
    UnconnectedOutput {
        /// The port name.
        name: String,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::MultipleDrivers { sink } => {
                write!(f, "sink pin {sink} has multiple drivers")
            }
            BuildNetlistError::UnconnectedPin { gate, pin } => {
                write!(f, "input pin {pin} of gate {gate} is unconnected")
            }
            BuildNetlistError::UnconnectedOutput { name } => {
                write!(f, "primary output {name} is unconnected")
            }
        }
    }
}

impl Error for BuildNetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ConnectError::UnknownGate { gate: 3 }
            .to_string()
            .contains("g3"));
        let e = BuildNetlistError::UnconnectedPin {
            gate: "u7".into(),
            pin: 1,
        };
        assert!(e.to_string().contains("u7"));
        assert!(e.to_string().contains("pin 1"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConnectError>();
        assert_err::<BuildNetlistError>();
    }
}
