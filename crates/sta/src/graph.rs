//! The flattened pin-level timing graph.
//!
//! Nodes are pins (primary I/Os, gate input pins, gate output pins); edges
//! are timing arcs: *net arcs* from a driver pin to each sink pin, and
//! *cell arcs* from each gate input pin to the gate's output pin. D
//! flip-flops break paths: their `D` pin is a timing endpoint and their
//! output pin launches a fresh path, so there is no `D -> Q` cell arc.

use crate::library::{CellKind, CellLibrary, TimingSense};
use crate::netlist::{GateId, Netlist, PinRef};
use gpasta_tdg::BuildTdgError;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Identifier of a timing-graph node (a pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A primary input port.
    PrimaryInput(u32),
    /// A primary output port.
    PrimaryOutput(u32),
    /// Input pin `1` of gate `0`.
    GateInput(u32, u8),
    /// The output pin of gate `0`.
    GateOutput(u32),
}

/// The flavour of a timing arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArcKind {
    /// Interconnect from a driver pin to one sink pin of net `net`.
    Net {
        /// Index into [`Netlist::nets`].
        net: u32,
    },
    /// A cell arc through gate `gate` (input pin to output pin).
    Cell {
        /// The traversed gate.
        gate: u32,
    },
}

/// One timing arc: endpoints plus flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingArcRef {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Net or cell arc.
    pub kind: ArcKind,
}

/// The pin-level timing graph in CSR form with per-edge arc metadata.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    node_kind: Vec<NodeKind>,
    arcs: Vec<TimingArcRef>,
    fwd_off: Vec<u32>,
    fwd_arc: Vec<u32>,
    rev_off: Vec<u32>,
    rev_arc: Vec<u32>,
    /// Node ids that launch paths (primary inputs, DFF outputs).
    sources: Vec<u32>,
    /// Node ids that terminate paths (primary outputs, DFF `D` pins).
    endpoints: Vec<u32>,
    /// Index of the first gate-input node (see node-numbering scheme).
    gate_in_base: u32,
    /// Per-gate offset of its first input-pin node.
    gate_in_off: Vec<u32>,
    /// Index of the first gate-output node.
    gate_out_base: u32,
    /// Index of the first primary-output node.
    po_base: u32,
    /// Lazily built flat arc view for the propagation hot path.
    soa: OnceLock<ArcSoa>,
}

/// Flat structure-of-arrays view of the timing arcs, column per field.
///
/// Propagation touches every arc of a node's cone per `fprop`/`bprop`
/// call; chasing `TimingArcRef` enums plus `Netlist::gates()` entries
/// (each holding a name `String`) and a linear `CellLibrary::cell` scan
/// per arc dominated the profile. This view pre-resolves everything the
/// inner loops need into dense parallel arrays indexed by arc id, so the
/// hot path is a handful of sequential u32/u8 column loads.
///
/// Derived state: a pure function of the graph and the netlist
/// connectivity (gate cell kinds never change after `NetlistBuilder::
/// build`), cached on [`TimingGraph`] and rebuilt on deserialisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcSoa {
    /// Source node id per arc.
    pub from: Vec<u32>,
    /// Destination node id per arc.
    pub to: Vec<u32>,
    /// Net index for net arcs, gate index for cell arcs.
    pub payload: Vec<u32>,
    /// Library cell index ([`CellLibrary::cell_index`]) for cell arcs;
    /// [`ArcSoa::NET_ARC`] for net arcs.
    pub cell_idx: Vec<u8>,
    /// Encoded [`TimingSense`] of the traversed cell arc (see
    /// [`ArcSoa::sense_of`]); `0` for net arcs.
    pub sense: Vec<u8>,
}

impl ArcSoa {
    /// `cell_idx` sentinel marking a net arc.
    pub const NET_ARC: u8 = 0xFF;

    fn build(graph: &TimingGraph, netlist: &Netlist) -> Self {
        let n = graph.arcs.len();
        let mut soa = ArcSoa {
            from: Vec::with_capacity(n),
            to: Vec::with_capacity(n),
            payload: Vec::with_capacity(n),
            cell_idx: Vec::with_capacity(n),
            sense: Vec::with_capacity(n),
        };
        for a in &graph.arcs {
            soa.from.push(a.from.0);
            soa.to.push(a.to.0);
            match a.kind {
                ArcKind::Net { net } => {
                    soa.payload.push(net);
                    soa.cell_idx.push(Self::NET_ARC);
                    soa.sense.push(0);
                }
                ArcKind::Cell { gate } => {
                    let cell = netlist.gates()[gate as usize].cell;
                    soa.payload.push(gate);
                    soa.cell_idx.push(CellLibrary::cell_index(cell) as u8);
                    soa.sense.push(match cell.sense() {
                        TimingSense::Positive => 0,
                        TimingSense::Negative => 1,
                        TimingSense::NonUnate => 2,
                    });
                }
            }
        }
        soa
    }

    /// Decode the `sense` column entry of arc `a`.
    #[inline]
    pub fn sense_of(&self, a: usize) -> TimingSense {
        match self.sense[a] {
            0 => TimingSense::Positive,
            1 => TimingSense::Negative,
            _ => TimingSense::NonUnate,
        }
    }

    /// Whether arc `a` is a net (interconnect) arc.
    #[inline]
    pub fn is_net(&self, a: usize) -> bool {
        self.cell_idx[a] == Self::NET_ARC
    }
}

// Manual impls: the cached SoA view is derived state and must stay off
// the wire and out of equality (mirrors `Tdg` and its CSR cache).
impl PartialEq for TimingGraph {
    fn eq(&self, other: &Self) -> bool {
        self.node_kind == other.node_kind
            && self.arcs == other.arcs
            && self.fwd_off == other.fwd_off
            && self.fwd_arc == other.fwd_arc
            && self.rev_off == other.rev_off
            && self.rev_arc == other.rev_arc
            && self.sources == other.sources
            && self.endpoints == other.endpoints
            && self.gate_in_base == other.gate_in_base
            && self.gate_in_off == other.gate_in_off
            && self.gate_out_base == other.gate_out_base
            && self.po_base == other.po_base
    }
}

impl Serialize for TimingGraph {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(Vec::from([
            (String::from("node_kind"), self.node_kind.to_value()),
            (String::from("arcs"), self.arcs.to_value()),
            (String::from("fwd_off"), self.fwd_off.to_value()),
            (String::from("fwd_arc"), self.fwd_arc.to_value()),
            (String::from("rev_off"), self.rev_off.to_value()),
            (String::from("rev_arc"), self.rev_arc.to_value()),
            (String::from("sources"), self.sources.to_value()),
            (String::from("endpoints"), self.endpoints.to_value()),
            (String::from("gate_in_base"), self.gate_in_base.to_value()),
            (String::from("gate_in_off"), self.gate_in_off.to_value()),
            (String::from("gate_out_base"), self.gate_out_base.to_value()),
            (String::from("po_base"), self.po_base.to_value()),
        ]))
    }
}

impl Deserialize for TimingGraph {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::FromValueError> {
        Ok(TimingGraph {
            node_kind: Deserialize::from_value(v.expect_field("node_kind")?)?,
            arcs: Deserialize::from_value(v.expect_field("arcs")?)?,
            fwd_off: Deserialize::from_value(v.expect_field("fwd_off")?)?,
            fwd_arc: Deserialize::from_value(v.expect_field("fwd_arc")?)?,
            rev_off: Deserialize::from_value(v.expect_field("rev_off")?)?,
            rev_arc: Deserialize::from_value(v.expect_field("rev_arc")?)?,
            sources: Deserialize::from_value(v.expect_field("sources")?)?,
            endpoints: Deserialize::from_value(v.expect_field("endpoints")?)?,
            gate_in_base: Deserialize::from_value(v.expect_field("gate_in_base")?)?,
            gate_in_off: Deserialize::from_value(v.expect_field("gate_in_off")?)?,
            gate_out_base: Deserialize::from_value(v.expect_field("gate_out_base")?)?,
            po_base: Deserialize::from_value(v.expect_field("po_base")?)?,
            soa: OnceLock::new(),
        })
    }
}

impl TimingGraph {
    /// Build the timing graph of `netlist` under `library`.
    ///
    /// Node numbering: primary inputs first, then all gate input pins (in
    /// gate order), then all gate output pins, then primary outputs.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTdgError::Cycle`] if the combinational logic contains
    /// a loop.
    pub fn build(netlist: &Netlist, library: &CellLibrary) -> Result<Self, BuildTdgError> {
        let _ = library; // connectivity only; electrical state lives in the Timer
        let num_pi = netlist.num_inputs() as u32;
        let mut gate_in_off = Vec::with_capacity(netlist.num_gates() + 1);
        let mut acc = num_pi;
        for g in netlist.gates() {
            gate_in_off.push(acc);
            acc += g.cell.num_inputs() as u32;
        }
        gate_in_off.push(acc);
        let gate_in_base = num_pi;
        let gate_out_base = acc;
        let po_base = gate_out_base + netlist.num_gates() as u32;
        let num_nodes = po_base + netlist.num_outputs() as u32;

        let node_of = |pin: PinRef| -> u32 {
            match pin {
                PinRef::PrimaryInput(p) => p.0,
                PinRef::GateInput(g, pin) => gate_in_off[g.index()] + u32::from(pin),
                PinRef::GateOutput(g) => gate_out_base + g.0,
                PinRef::PrimaryOutput(p) => po_base + p.0,
            }
        };

        let mut node_kind = Vec::with_capacity(num_nodes as usize);
        for p in 0..num_pi {
            node_kind.push(NodeKind::PrimaryInput(p));
        }
        for (g, gate) in netlist.gates().iter().enumerate() {
            for pin in 0..gate.cell.num_inputs() as u8 {
                node_kind.push(NodeKind::GateInput(g as u32, pin));
            }
        }
        for g in 0..netlist.num_gates() as u32 {
            node_kind.push(NodeKind::GateOutput(g));
        }
        for p in 0..netlist.num_outputs() as u32 {
            node_kind.push(NodeKind::PrimaryOutput(p));
        }

        // Arcs: net arcs then cell arcs.
        let mut arcs = Vec::new();
        for (n, net) in netlist.nets().iter().enumerate() {
            let from = NodeId(node_of(net.driver));
            for &sink in &net.sinks {
                arcs.push(TimingArcRef {
                    from,
                    to: NodeId(node_of(sink)),
                    kind: ArcKind::Net { net: n as u32 },
                });
            }
        }
        for (g, gate) in netlist.gates().iter().enumerate() {
            if gate.cell.is_sequential() {
                continue; // no D -> Q combinational arc
            }
            let out = NodeId(gate_out_base + g as u32);
            for pin in 0..gate.cell.num_inputs() as u8 {
                arcs.push(TimingArcRef {
                    from: NodeId(gate_in_off[g] + u32::from(pin)),
                    to: out,
                    kind: ArcKind::Cell { gate: g as u32 },
                });
            }
        }

        // CSR over arcs (forward and reverse).
        let n = num_nodes as usize;
        let mut fwd_off = vec![0u32; n + 1];
        let mut rev_off = vec![0u32; n + 1];
        for a in &arcs {
            fwd_off[a.from.index() + 1] += 1;
            rev_off[a.to.index() + 1] += 1;
        }
        for i in 0..n {
            fwd_off[i + 1] += fwd_off[i];
            rev_off[i + 1] += rev_off[i];
        }
        let mut fwd_arc = vec![0u32; arcs.len()];
        let mut rev_arc = vec![0u32; arcs.len()];
        {
            let mut fc = fwd_off.clone();
            let mut rc = rev_off.clone();
            for (i, a) in arcs.iter().enumerate() {
                let f = &mut fc[a.from.index()];
                fwd_arc[*f as usize] = i as u32;
                *f += 1;
                let r = &mut rc[a.to.index()];
                rev_arc[*r as usize] = i as u32;
                *r += 1;
            }
        }

        // Sources and endpoints.
        let mut sources = Vec::new();
        let mut endpoints = Vec::new();
        for (i, kind) in node_kind.iter().enumerate() {
            match *kind {
                NodeKind::PrimaryInput(_) => sources.push(i as u32),
                NodeKind::PrimaryOutput(_) => endpoints.push(i as u32),
                NodeKind::GateOutput(g) => {
                    if netlist.gates()[g as usize].cell.is_sequential() {
                        sources.push(i as u32);
                    }
                }
                NodeKind::GateInput(g, pin) => {
                    let cell = netlist.gates()[g as usize].cell;
                    if cell.is_sequential() && pin == 0 {
                        endpoints.push(i as u32); // DFF D pin
                    }
                }
            }
        }

        let graph = TimingGraph {
            node_kind,
            arcs,
            fwd_off,
            fwd_arc,
            rev_off,
            rev_arc,
            sources,
            endpoints,
            gate_in_base,
            gate_in_off,
            gate_out_base,
            po_base,
            soa: OnceLock::new(),
        };

        // Acyclicity check (combinational loops).
        let mut indeg: Vec<u32> = (0..n)
            .map(|v| graph.fanin(NodeId(v as u32)).len() as u32)
            .collect();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut visited = 0;
        while let Some(u) = queue.pop() {
            visited += 1;
            for &a in graph.fanout(NodeId(u)) {
                let v = graph.arcs[a as usize].to.0;
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        if visited != n {
            let witness = indeg.iter().position(|&d| d > 0).unwrap_or(0) as u32;
            return Err(BuildTdgError::Cycle { witness });
        }

        Ok(graph)
    }

    /// Number of nodes (pins).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_kind.len()
    }

    /// Number of timing arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// All arcs, indexed by arc id.
    #[inline]
    pub fn arcs(&self) -> &[TimingArcRef] {
        &self.arcs
    }

    /// The arc with id `a`.
    #[inline]
    pub fn arc(&self, a: u32) -> &TimingArcRef {
        &self.arcs[a as usize]
    }

    /// Arc ids leaving `v`.
    #[inline]
    pub fn fanout(&self, v: NodeId) -> &[u32] {
        &self.fwd_arc[self.fwd_off[v.index()] as usize..self.fwd_off[v.index() + 1] as usize]
    }

    /// Arc ids entering `v`.
    #[inline]
    pub fn fanin(&self, v: NodeId) -> &[u32] {
        &self.rev_arc[self.rev_off[v.index()] as usize..self.rev_off[v.index() + 1] as usize]
    }

    /// What node `v` represents.
    #[inline]
    pub fn node_kind(&self, v: NodeId) -> NodeKind {
        self.node_kind[v.index()]
    }

    /// Nodes that launch timing paths (primary inputs and DFF outputs).
    #[inline]
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// Nodes that terminate timing paths (primary outputs and DFF D pins).
    #[inline]
    pub fn endpoints(&self) -> &[u32] {
        &self.endpoints
    }

    /// The node of gate `g`'s output pin.
    #[inline]
    pub fn gate_output_node(&self, g: GateId) -> NodeId {
        NodeId(self.gate_out_base + g.0)
    }

    /// The node of input pin `pin` of gate `g`.
    #[inline]
    pub fn gate_input_node(&self, g: GateId, pin: u8) -> NodeId {
        NodeId(self.gate_in_off[g.index()] + u32::from(pin))
    }

    /// Whether `v` is a path endpoint.
    pub fn is_endpoint(&self, v: NodeId) -> bool {
        match self.node_kind(v) {
            NodeKind::PrimaryOutput(_) => true,
            NodeKind::GateInput(_, 0) => self.endpoints.binary_search(&v.0).is_ok(),
            _ => false,
        }
    }

    /// The flat arc view for the propagation hot path, built on first use.
    ///
    /// `netlist` must be the netlist this graph was built from (only its
    /// immutable connectivity — gate cell kinds — is read).
    #[inline]
    pub fn arc_soa(&self, netlist: &Netlist) -> &ArcSoa {
        self.soa.get_or_init(|| ArcSoa::build(self, netlist))
    }

    /// The cell kind a gate-related node belongs to, if any.
    pub fn cell_of(&self, v: NodeId, netlist: &Netlist) -> Option<CellKind> {
        match self.node_kind(v) {
            NodeKind::GateInput(g, _) | NodeKind::GateOutput(g) => {
                Some(netlist.gates()[g as usize].cell)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    /// a,b -> NAND2 -> INV -> y
    fn nand_inv() -> (Netlist, TimingGraph) {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let g1 = nb.add_gate("u1", CellKind::Nand2);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, g1, 0).expect("valid");
        nb.connect_to_gate(b, g1, 1).expect("valid");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_to_output(g2, y).expect("valid");
        let n = nb.build().expect("well-formed");
        let g = TimingGraph::build(&n, &CellLibrary::typical()).expect("acyclic");
        (n, g)
    }

    #[test]
    fn node_and_arc_counts() {
        let (_n, g) = nand_inv();
        // Nodes: 2 PI + 3 gate inputs (2 + 1) + 2 gate outputs + 1 PO = 8.
        assert_eq!(g.num_nodes(), 8);
        // Arcs: nets a->u1.0, b->u1.1, u1->u2.0, u2->y (4 net arcs)
        //       + cell arcs u1 (2), u2 (1) = 7.
        assert_eq!(g.num_arcs(), 7);
    }

    #[test]
    fn sources_and_endpoints() {
        let (_n, g) = nand_inv();
        assert_eq!(g.sources(), &[0, 1]);
        assert_eq!(g.endpoints().len(), 1);
        let ep = NodeId(g.endpoints()[0]);
        assert!(matches!(g.node_kind(ep), NodeKind::PrimaryOutput(0)));
        assert!(g.is_endpoint(ep));
        assert!(!g.is_endpoint(NodeId(0)));
    }

    #[test]
    fn fanin_fanout_consistency() {
        let (_n, g) = nand_inv();
        for (i, arc) in g.arcs().iter().enumerate() {
            assert!(g.fanout(arc.from).contains(&(i as u32)));
            assert!(g.fanin(arc.to).contains(&(i as u32)));
        }
        let total_out: usize = (0..g.num_nodes())
            .map(|v| g.fanout(NodeId(v as u32)).len())
            .sum();
        assert_eq!(total_out, g.num_arcs());
    }

    #[test]
    fn gate_pin_node_mapping() {
        let (n, g) = nand_inv();
        let u1 = GateId(0);
        let in0 = g.gate_input_node(u1, 0);
        assert!(matches!(g.node_kind(in0), NodeKind::GateInput(0, 0)));
        let out = g.gate_output_node(u1);
        assert!(matches!(g.node_kind(out), NodeKind::GateOutput(0)));
        assert_eq!(g.cell_of(out, &n), Some(CellKind::Nand2));
        assert_eq!(g.cell_of(NodeId(0), &n), None);
    }

    #[test]
    fn dff_breaks_paths() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let ff = nb.add_gate("ff1", CellKind::Dff);
        let g = nb.add_gate("u1", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, ff, 0).expect("valid");
        nb.connect_gates(ff, g, 0).expect("valid");
        nb.connect_to_output(g, y).expect("valid");
        let netlist = nb.build().expect("well-formed");
        let tg = TimingGraph::build(&netlist, &CellLibrary::typical()).expect("acyclic");

        // Sources: PI a and the DFF output. Endpoints: PO y and the DFF D pin.
        assert_eq!(tg.sources().len(), 2);
        assert_eq!(tg.endpoints().len(), 2);
        // No cell arc into the DFF output node.
        let ff_out = tg.gate_output_node(ff);
        assert!(
            tg.fanin(ff_out).is_empty(),
            "DFF output launches a fresh path"
        );
        let d_pin = tg.gate_input_node(ff, 0);
        assert!(tg.fanout(d_pin).is_empty(), "DFF D pin terminates its path");
        assert!(tg.is_endpoint(d_pin));
    }

    #[test]
    fn combinational_loop_detected() {
        // Two inverters in a ring (plus taps to keep the netlist legal).
        let mut nb = NetlistBuilder::new();
        let g1 = nb.add_gate("u1", CellKind::Inv);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_gates(g2, g1, 0).expect("valid");
        nb.connect_to_output(g1, y).expect("valid");
        let netlist = nb.build().expect("structurally complete");
        assert!(matches!(
            TimingGraph::build(&netlist, &CellLibrary::typical()),
            Err(BuildTdgError::Cycle { .. })
        ));
    }

    #[test]
    fn arc_soa_mirrors_arcs() {
        let (n, g) = nand_inv();
        let soa = g.arc_soa(&n);
        assert_eq!(soa.from.len(), g.num_arcs());
        for (i, arc) in g.arcs().iter().enumerate() {
            assert_eq!(soa.from[i], arc.from.0);
            assert_eq!(soa.to[i], arc.to.0);
            match arc.kind {
                ArcKind::Net { net } => {
                    assert!(soa.is_net(i));
                    assert_eq!(soa.payload[i], net);
                    assert_eq!(soa.sense[i], 0);
                }
                ArcKind::Cell { gate } => {
                    assert!(!soa.is_net(i));
                    assert_eq!(soa.payload[i], gate);
                    let cell = n.gates()[gate as usize].cell;
                    assert_eq!(soa.cell_idx[i] as usize, CellLibrary::cell_index(cell));
                    assert_eq!(soa.sense_of(i), cell.sense());
                }
            }
        }
        // Cached: the same reference comes back.
        assert!(std::ptr::eq(soa, g.arc_soa(&n)));
    }

    #[test]
    fn serde_round_trip_skips_soa_cache() {
        let (n, g) = nand_inv();
        let _ = g.arc_soa(&n); // populate the cache before serialising
        let v = g.to_value();
        let back = TimingGraph::from_value(&v).expect("round trip");
        assert_eq!(back, g);
        // The restored graph rebuilds an identical SoA on demand.
        assert_eq!(back.arc_soa(&n), g.arc_soa(&n));
    }

    #[test]
    fn empty_netlist_graph() {
        let netlist = NetlistBuilder::new().build().expect("empty is fine");
        let g = TimingGraph::build(&netlist, &CellLibrary::typical()).expect("trivially acyclic");
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert!(g.sources().is_empty());
    }
}
