//! Timing reports: WNS/TNS and critical endpoints.

use crate::graph::NodeId;
use std::fmt;

/// Slack of a single timing endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSlack {
    /// The endpoint node.
    pub node: NodeId,
    /// Human-readable endpoint name (port name or `instance/D`).
    pub name: String,
    /// Late-mode (setup) slack in ps; negative means a violation.
    pub slack_ps: f32,
}

/// Design-level timing summary produced by
/// [`Timer::report`](crate::Timer::report).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst negative slack (ps) — the minimum endpoint slack. Positive if
    /// the design meets timing; `+inf` if there are no endpoints.
    pub wns_ps: f32,
    /// Total negative slack (ps) — sum of negative endpoint slacks.
    pub tns_ps: f32,
    /// Number of endpoints analysed.
    pub num_endpoints: usize,
    /// The `k` most critical endpoints, worst first.
    pub worst: Vec<EndpointSlack>,
}

impl TimingReport {
    /// Whether every endpoint meets timing.
    pub fn meets_timing(&self) -> bool {
        self.wns_ps >= 0.0
    }

    /// Number of violating endpoints among the reported worst list.
    pub fn violations_in_worst(&self) -> usize {
        self.worst.iter().filter(|e| e.slack_ps < 0.0).count()
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WNS {:.1} ps, TNS {:.1} ps over {} endpoints",
            self.wns_ps, self.tns_ps, self.num_endpoints
        )?;
        for e in &self.worst {
            writeln!(f, "  {:<24} slack {:>10.1} ps", e.name, e.slack_ps)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TimingReport {
        TimingReport {
            wns_ps: -12.5,
            tns_ps: -20.0,
            num_endpoints: 3,
            worst: vec![
                EndpointSlack {
                    node: NodeId(9),
                    name: "y1".into(),
                    slack_ps: -12.5,
                },
                EndpointSlack {
                    node: NodeId(7),
                    name: "y0".into(),
                    slack_ps: 4.0,
                },
            ],
        }
    }

    #[test]
    fn meets_timing_logic() {
        let mut r = report();
        assert!(!r.meets_timing());
        r.wns_ps = 0.0;
        assert!(r.meets_timing());
    }

    #[test]
    fn counts_violations() {
        assert_eq!(report().violations_in_worst(), 1);
    }

    #[test]
    fn display_lists_endpoints() {
        let s = report().to_string();
        assert!(s.contains("WNS -12.5 ps"));
        assert!(s.contains("y1"));
        assert!(s.contains("3 endpoints"));
    }
}
