//! OpenTimer-like static timing analysis engine for the G-PASTA
//! reproduction.
//!
//! The paper evaluates its partitioner on the TDGs that OpenTimer's
//! `update_timing` method generates for *graph-based analysis* (GBA). This
//! crate rebuilds that substrate from scratch:
//!
//! * [`CellLibrary`] — an NLDM-style cell library with 2-D
//!   (input-slew × output-load) delay/slew lookup tables and bilinear
//!   interpolation, generated programmatically ([`CellLibrary::typical`]);
//! * [`Netlist`] / [`NetlistBuilder`] — gate-level netlists with primary
//!   I/Os, combinational cells and D flip-flops, and lumped-capacitance
//!   nets;
//! * [`TimingGraph`] — the flattened pin-level graph whose nodes carry
//!   arrival/required/slew values and whose edges are cell or net timing
//!   arcs;
//! * [`Timer`] — the analysis engine: full and incremental
//!   [`update_timing`](Timer::update_timing) that emits a task dependency
//!   graph ([`TimingUpdateTdg`]) with one forward-propagation and one
//!   backward-propagation task per affected node, plus design modifiers
//!   ([`Timer::repower_gate`], [`Timer::set_net_cap`]) that drive the
//!   incremental-timing experiment (Figure 7);
//! * graceful degradation — [`TimingUpdateTdg::run_recovering`] /
//!   [`TimingUpdateTdg::run_partitioned_recovering`] execute the update
//!   through the fault-tolerant scheduler: values outside the poisoned
//!   cone are salvaged bit-exactly, poisoned endpoints read *unknown*
//!   (NaN) after [`TimingUpdateTdg::mark_unknown`], and
//!   [`TimingUpdateTdg::heal`] re-runs just the quarantined cone to
//!   converge to the fault-free answer ([`RecoveredUpdate`]);
//! * bounded time — [`TimingUpdateTdg::run_recovering_bounded`] accepts a
//!   deadline/cancellation budget and projects an early stop into a
//!   NaN-marked *partial* timing report whose unfinished region heals to
//!   the bit-identical complete answer; [`Timer::snapshot`] /
//!   [`Timer::restore_snapshot`] capture the whole mutable timing state
//!   bit-exactly for crash-safe checkpointing ([`TimingSnapshot`]);
//! * [`TimingReport`] — setup and hold WNS/TNS and per-endpoint slack
//!   reporting, plus [`trace_worst_path`] and [`k_worst_paths`] for path
//!   diagnostics and [`drc`] for electrical design-rule checks;
//! * file interchange: [`verilog`] (structural netlists), [`liberty`]
//!   (NLDM cell libraries), and [`sdc`] (timing constraints) readers and
//!   writers, all round-trip tested.
//!
//! Propagation tasks perform real table-interpolation arithmetic, so task
//! granularity lands in the regime the paper reports (timing tasks
//! comparable to per-task scheduling cost).
//!
//! # Example
//!
//! ```
//! use gpasta_sta::{CellKind, CellLibrary, NetlistBuilder, Timer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = CellLibrary::typical();
//! let mut nb = NetlistBuilder::new();
//! let a = nb.add_primary_input("a");
//! let b = nb.add_primary_input("b");
//! let g = nb.add_gate("u1", CellKind::Nand2);
//! let y = nb.add_primary_output("y");
//! nb.connect_to_gate(a, g, 0)?;
//! nb.connect_to_gate(b, g, 1)?;
//! nb.connect_to_output(g, y)?;
//! let netlist = nb.build()?;
//!
//! let mut timer = Timer::new(netlist, lib);
//! let update = timer.update_timing();
//! // Run it sequentially (the scheduler crate can run it in parallel).
//! update.run_sequential();
//! // Dropping the update returns its buffers to the timer for reuse.
//! drop(update);
//! let report = timer.report(1);
//! assert!(report.wns_ps.is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod atomic_f32;
pub mod boundary;
pub mod drc;
mod error;
mod graph;
pub mod kpaths;
pub mod liberty;
mod library;
mod netlist;
mod path;
mod recover;
mod report;
pub mod sdc;
mod timer;
pub mod verilog;

pub use analysis::{Mode, SnapshotMismatch, TimingData, TimingPropagator, TimingSnapshot, Tr};
pub use atomic_f32::AtomicF32;
pub use boundary::{BoundaryValues, ValueSet};
pub use drc::{check_design_rules, DrcReport, DrcViolation};
pub use error::{BuildNetlistError, ConnectError};
pub use graph::{ArcKind, NodeId, NodeKind, TimingArcRef, TimingGraph};
pub use kpaths::k_worst_paths;
pub use liberty::{parse_liberty, write_liberty, ParseLibertyError};
pub use library::{CellKind, CellLibrary, Lut2D, TimingSense};
pub use netlist::{GateId, Netlist, NetlistBuilder, PinRef, PortId};
pub use path::{trace_worst_path, PathStep, TimingPath};
pub use recover::RecoveredUpdate;
pub use report::{EndpointSlack, TimingReport};
pub use sdc::{apply_sdc, write_sdc, ParseSdcError};
pub use timer::{TaskKind, Timer, TimingUpdateTdg};
pub use verilog::{parse_verilog, write_verilog, ParseVerilogError};
