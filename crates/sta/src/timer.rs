//! The timing engine: full and incremental `update_timing`.
//!
//! `update_timing` mirrors OpenTimer's core method: it determines the
//! affected region of the timing graph, then *builds a task dependency
//! graph* with one forward-propagation task and one backward-propagation
//! task per affected node. Running that TDG (sequentially, through the
//! scheduler crate, or partitioned by G-PASTA) brings all timing values up
//! to date. The TDG is exactly the workload the paper's partitioners
//! consume.

use crate::analysis::{TimingData, TimingPropagator};
use crate::graph::{NodeId, TimingGraph};
use crate::library::CellLibrary;
use crate::netlist::{GateId, Netlist, PinRef};
use crate::report::{EndpointSlack, TimingReport};
use gpasta_check::sync::Mutex;
use gpasta_tdg::{TaskId, Tdg, TdgArena};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a task of the `update_timing` TDG does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Forward propagation (delay calculation, arrival/slew merge).
    Fprop,
    /// Backward propagation (required-arrival-time update).
    Bprop,
}

/// The static timing analysis engine.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct Timer {
    netlist: Netlist,
    library: CellLibrary,
    graph: TimingGraph,
    data: TimingData,
    /// Nodes whose fan-out cone must be re-propagated.
    dirty: Vec<u32>,
    /// When set, the next update re-propagates the whole design.
    full_dirty: bool,
    /// Recycled TDG buffers: steady-state `update_timing` calls build the
    /// task graph into the previous update's allocations.
    arena: TdgArena,
    /// Buffers handed out to in-flight [`TimingUpdateTdg`]s come back here
    /// when they drop (shared so the update can outlive `&mut self`).
    bin: Arc<Mutex<RecycleBin>>,
    /// Cone flags, task maps, and traversal stack reused across updates.
    scratch: UpdateScratch,
}

/// Buffers returned by dropped [`TimingUpdateTdg`]s, awaiting reuse by the
/// next [`Timer::update_timing`] call.
#[derive(Debug, Default)]
struct RecycleBin {
    tdgs: Vec<Tdg>,
    task_nodes: Vec<Vec<u32>>,
}

/// Scratch buffers for `update_timing`; they grow to the design's
/// high-water mark once, after which updates allocate nothing.
#[derive(Debug, Default)]
struct UpdateScratch {
    in_f: Vec<bool>,
    in_b: Vec<bool>,
    f_task: Vec<u32>,
    b_task: Vec<u32>,
    stack: Vec<u32>,
    /// F members in forward-DFS visit order (unsorted); seeds the
    /// backward traversal without an O(n) membership scan.
    f_members: Vec<u32>,
}

impl Timer {
    /// Create a timer over `netlist` with `library`, with the whole design
    /// marked dirty (the first [`update_timing`](Timer::update_timing) is a
    /// full analysis).
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational loop. Use
    /// [`TimingGraph::build`] directly to handle that case gracefully.
    pub fn new(netlist: Netlist, library: CellLibrary) -> Self {
        Timer::try_new(netlist, library).expect("netlist contains a combinational loop")
    }

    /// Fallible constructor: returns the timing-graph build error instead
    /// of panicking on combinational loops.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTdgError::Cycle`](gpasta_tdg::BuildTdgError::Cycle)
    /// when the combinational logic loops.
    pub fn try_new(
        netlist: Netlist,
        library: CellLibrary,
    ) -> Result<Self, gpasta_tdg::BuildTdgError> {
        let graph = TimingGraph::build(&netlist, &library)?;
        let data = TimingData::new(&graph, &netlist, &library);
        Ok(Timer {
            netlist,
            library,
            graph,
            data,
            dirty: Vec::new(),
            full_dirty: true,
            arena: TdgArena::new(),
            bin: Arc::new(Mutex::new(RecycleBin::default())),
            scratch: UpdateScratch::default(),
        })
    }

    /// The pin-level timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The design.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The shared timing state (arrivals, requireds, slews, slacks).
    pub fn data(&self) -> &TimingData {
        &self.data
    }

    /// Set the clock period (ps) used for endpoint constraints and mark the
    /// design dirty (constraints affect every required time).
    pub fn set_clock_period(&mut self, period_ps: f32) {
        self.data.clock_period_ps = period_ps;
        self.full_dirty = true;
    }

    /// Repower gate `g` to drive strength `drive` (a multiplier: 2.0 is a
    /// 2× stronger, faster cell with proportionally larger input pins).
    ///
    /// Marks the affected region dirty: the gate's own delay changes, the
    /// nets feeding it get heavier, and the gates driving those nets see a
    /// larger load.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range or `drive` is not positive.
    pub fn repower_gate(&mut self, g: GateId, drive: f32) {
        assert!(drive > 0.0, "drive strength must be positive");
        assert!(
            g.index() < self.netlist.num_gates(),
            "gate {g} out of range"
        );
        self.data.set_drive(g.0, drive);

        // Recompute electrical state of every net feeding g, and mark the
        // drivers of those nets dirty (their cell delay depends on the
        // load we just changed).
        let num_inputs = self.netlist.gates()[g.index()].cell.num_inputs() as u8;
        for pin in 0..num_inputs {
            let node = self.graph.gate_input_node(g, pin);
            for &a in self.graph.fanin(node) {
                let arc = *self.graph.arc(a);
                if let crate::graph::ArcKind::Net { net } = arc.kind {
                    self.data.recompute_net(net, &self.netlist, &self.library);
                    self.dirty.push(arc.from.0);
                }
            }
        }
        // The gate's own arcs re-evaluate during fprop of its output node.
        self.dirty.push(self.graph.gate_output_node(g).0);
    }

    /// Set the wire capacitance of net `net` to `cap_ff` and mark its
    /// driver dirty.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn set_net_cap(&mut self, net: u32, cap_ff: f32) {
        let n = &mut self.netlist.nets[net as usize];
        n.wire_cap_ff = cap_ff;
        let driver = n.driver;
        self.data.recompute_net(net, &self.netlist, &self.library);
        let node = match driver {
            PinRef::PrimaryInput(p) => p.0,
            PinRef::GateOutput(g) => self.graph.gate_output_node(g).0,
            _ => unreachable!("nets are driven by inputs or gate outputs"),
        };
        self.dirty.push(node);
    }

    /// Constrain primary input `port`: external logic delivers the signal
    /// `delay_ps` after the clock edge (SDC `set_input_delay`).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn set_input_delay(&mut self, port: crate::PortId, delay_ps: f32) {
        assert!(
            port.index() < self.netlist.num_inputs(),
            "input port out of range"
        );
        self.data.set_input_delay(port.0, delay_ps);
        // The PI node is the graph node with the same index as the port.
        self.dirty.push(port.0);
    }

    /// Constrain primary output `port`: external logic needs the signal
    /// `delay_ps` before the clock edge (SDC `set_output_delay`).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn set_output_delay(&mut self, port: crate::PortId, delay_ps: f32) {
        assert!(
            port.index() < self.netlist.num_outputs(),
            "output port out of range"
        );
        self.data.set_output_delay(port.0, delay_ps);
        // Dirtying the PO node regenerates the backward cone's required
        // times (its forward cone is empty).
        let node = self.graph.num_nodes() as u32 - self.netlist.num_outputs() as u32 + port.0;
        self.dirty.push(node);
    }

    /// Whether any modifier is pending.
    pub fn has_pending_changes(&self) -> bool {
        self.full_dirty || !self.dirty.is_empty()
    }

    /// Mark the whole design dirty so the next
    /// [`update_timing`](Timer::update_timing) is a full re-analysis.
    /// Benchmarks use this to measure repeated full updates on one design.
    pub fn invalidate_all(&mut self) {
        self.full_dirty = true;
    }

    /// Capture the complete mutable timing state bit-exactly (see
    /// [`TimingData::snapshot`]). Together with the design identity this is
    /// everything a checkpoint needs: the graph, netlist, and library are
    /// deterministic functions of the design inputs.
    pub fn snapshot(&self) -> crate::analysis::TimingSnapshot {
        self.data.snapshot()
    }

    /// Restore the timing state captured by [`snapshot`](Timer::snapshot)
    /// and clear the dirty set: the restored values are, by the snapshot
    /// contract, exactly the values the design had when the snapshot was
    /// taken, so nothing is pending afterwards.
    ///
    /// # Errors
    ///
    /// [`SnapshotMismatch`](crate::analysis::SnapshotMismatch) when the
    /// snapshot was taken against a differently shaped design; the timer is
    /// unchanged in that case.
    pub fn restore_snapshot(
        &mut self,
        snap: &crate::analysis::TimingSnapshot,
    ) -> Result<(), crate::analysis::SnapshotMismatch> {
        self.data.restore(snap)?;
        self.dirty.clear();
        self.full_dirty = false;
        Ok(())
    }

    /// Build the task dependency graph that brings timing up to date —
    /// OpenTimer's `update_timing`.
    ///
    /// Returns a [`TimingUpdateTdg`]; *the timing values are not updated
    /// until it runs* (sequentially via
    /// [`run_sequential`](TimingUpdateTdg::run_sequential) or through an
    /// executor, optionally after partitioning). Clears the dirty set.
    pub fn update_timing(&mut self) -> TimingUpdateTdg<'_> {
        let build_start = Instant::now();
        let n = self.graph.num_nodes();

        // Reclaim buffers from updates that have since dropped: their TDG
        // storage seeds the arena, their task maps seed `task_node`.
        let mut task_node = {
            let mut bin = self.bin.lock();
            for tdg in bin.tdgs.drain(..) {
                self.arena.recycle(tdg);
            }
            bin.task_nodes.pop().unwrap_or_default()
        };
        task_node.clear();

        // Affected regions: F = forward cone of the dirty set,
        // B = backward cone of F (B ⊇ F).
        let in_f = &mut self.scratch.in_f;
        let in_b = &mut self.scratch.in_b;
        in_f.clear();
        in_b.clear();
        if self.full_dirty {
            in_f.resize(n, true);
            in_b.resize(n, true);
        } else {
            in_f.resize(n, false);
            let stack = &mut self.scratch.stack;
            let f_members = &mut self.scratch.f_members;
            stack.clear();
            f_members.clear();
            stack.extend_from_slice(&self.dirty);
            for &v in stack.iter() {
                in_f[v as usize] = true;
            }
            f_members.extend_from_slice(stack);
            while let Some(u) = stack.pop() {
                for &a in self.graph.fanout(NodeId(u)) {
                    let v = self.graph.arc(a).to.0;
                    if !in_f[v as usize] {
                        in_f[v as usize] = true;
                        stack.push(v);
                        f_members.push(v);
                    }
                }
            }
            in_b.extend_from_slice(in_f);
            // Seed the backward cone from the collected F members — same
            // set the old `(0..n).filter(in_f)` scan produced, without the
            // O(n) membership sweep (seed order does not change the
            // resulting in_b set).
            stack.extend_from_slice(f_members);
            while let Some(u) = stack.pop() {
                for &a in self.graph.fanin(NodeId(u)) {
                    let v = self.graph.arc(a).from.0;
                    if !in_b[v as usize] {
                        in_b[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
        }
        let (in_f, in_b) = (&self.scratch.in_f, &self.scratch.in_b);
        self.dirty.clear();
        self.full_dirty = false;

        // Task numbering: fprop tasks for F, then bprop tasks for B.
        const NONE: u32 = u32::MAX;
        let f_task = &mut self.scratch.f_task;
        f_task.clear();
        f_task.resize(n, NONE);
        for v in 0..n as u32 {
            if in_f[v as usize] {
                f_task[v as usize] = task_node.len() as u32;
                task_node.push(v);
            }
        }
        let num_fprop = task_node.len();
        let b_task = &mut self.scratch.b_task;
        b_task.clear();
        b_task.resize(n, NONE);
        for v in 0..n as u32 {
            if in_b[v as usize] {
                b_task[v as usize] = task_node.len() as u32;
                task_node.push(v);
            }
        }
        let num_tasks = task_node.len();
        let (f_task, b_task) = (&self.scratch.f_task, &self.scratch.b_task);

        let mut builder = self.arena.builder(num_tasks);
        // Cone-local edge discovery: F is forward-closed (a fanout arc of
        // an F node lands in F) and B is backward-closed (a fanin arc of a
        // B node starts in B), so walking only the cone members' own
        // adjacency — `task_node` holds exactly F then B — visits exactly
        // the arcs the old all-arcs scan kept. The edge multiset is
        // identical, and the builder's canonicalising sort makes insertion
        // order irrelevant; an incremental update now costs O(cone)
        // instead of O(graph) here.
        for (t, &v) in task_node.iter().enumerate().take(num_fprop) {
            for &a in self.graph.fanout(NodeId(v)) {
                let w = self.graph.arc(a).to.0 as usize;
                builder.add_edge(TaskId(t as u32), TaskId(f_task[w]));
            }
            // bprop(v) consumes the arc delays cached by fprop(v)'s
            // level; anchor it after its own fprop.
            builder.add_edge(TaskId(t as u32), TaskId(b_task[v as usize]));
        }
        for (t, &v) in task_node.iter().enumerate().skip(num_fprop) {
            for &a in self.graph.fanin(NodeId(v)) {
                // bprop runs against the arc direction.
                let u = self.graph.arc(a).from.0 as usize;
                builder.add_edge(TaskId(t as u32), TaskId(b_task[u]));
            }
        }
        // Estimated cost: table lookups scale with fan-in/fan-out degree.
        for (t, &v) in task_node.iter().enumerate() {
            let node = NodeId(v);
            let degree = if t < num_fprop {
                self.graph.fanin(node).len()
            } else {
                self.graph.fanout(node).len()
            };
            builder.set_weight(TaskId(t as u32), 200.0 + 300.0 * degree as f32);
        }

        // Trusted build: the edges above are derived from the validated
        // timing DAG (range, self-loop freedom, acyclicity all hold by
        // construction), so release builds skip re-proving them on every
        // incremental iteration.
        let tdg = builder.build_trusted();
        let build_time = build_start.elapsed();

        TimingUpdateTdg {
            tdg: Some(tdg),
            task_node,
            num_fprop,
            prop: TimingPropagator {
                graph: &self.graph,
                netlist: &self.netlist,
                library: &self.library,
                data: &self.data,
            },
            build_time,
            bin: Arc::clone(&self.bin),
        }
    }

    /// Summarise setup (late-mode) endpoint slacks after an update has
    /// run: worst (WNS) and total (TNS) negative slack plus the `k` worst
    /// endpoints.
    pub fn report(&self, k: usize) -> TimingReport {
        self.report_mode(k, |v| self.data.slack_late(v))
    }

    /// Summarise hold (early-mode) endpoint slacks: the earliest arrivals
    /// checked against the hold window.
    pub fn report_hold(&self, k: usize) -> TimingReport {
        self.report_mode(k, |v| self.data.slack_early(v))
    }

    fn report_mode(&self, k: usize, slack_of: impl Fn(NodeId) -> f32) -> TimingReport {
        let mut endpoints: Vec<EndpointSlack> = self
            .graph
            .endpoints()
            .iter()
            .map(|&v| {
                let node = NodeId(v);
                EndpointSlack {
                    node,
                    name: self.endpoint_name(node),
                    slack_ps: slack_of(node),
                }
            })
            .collect();
        endpoints.sort_by(|a, b| a.slack_ps.total_cmp(&b.slack_ps));
        let wns_ps = endpoints.first().map_or(f32::INFINITY, |e| e.slack_ps);
        let tns_ps = endpoints.iter().map(|e| e.slack_ps.min(0.0)).sum();
        let num_endpoints = endpoints.len();
        endpoints.truncate(k);
        TimingReport {
            wns_ps,
            tns_ps,
            num_endpoints,
            worst: endpoints,
        }
    }

    fn endpoint_name(&self, v: NodeId) -> String {
        match self.graph.node_kind(v) {
            crate::graph::NodeKind::PrimaryOutput(p) => {
                self.netlist.output_names()[p as usize].clone()
            }
            crate::graph::NodeKind::GateInput(g, pin) => {
                format!("{}/D{}", self.netlist.gates()[g as usize].name, pin)
            }
            other => format!("{other:?}"),
        }
    }
}

/// The product of [`Timer::update_timing`]: a task dependency graph plus
/// the context needed to execute its tasks.
///
/// Task ids `0..num_fprop_tasks` are forward-propagation tasks; the rest
/// are backward-propagation tasks. The struct implements the task payload
/// via [`execute_task`](TimingUpdateTdg::execute_task); adapt it to the
/// scheduler with [`task_fn`](TimingUpdateTdg::task_fn).
#[derive(Debug)]
pub struct TimingUpdateTdg<'a> {
    /// `Some` until [`Drop`] hands the graph back to the recycle bin.
    tdg: Option<Tdg>,
    task_node: Vec<u32>,
    num_fprop: usize,
    prop: TimingPropagator<'a>,
    build_time: Duration,
    bin: Arc<Mutex<RecycleBin>>,
}

impl Drop for TimingUpdateTdg<'_> {
    fn drop(&mut self) {
        // Return the TDG storage and task map to the timer so the next
        // update builds into them instead of allocating.
        let mut bin = self.bin.lock();
        if let Some(tdg) = self.tdg.take() {
            bin.tdgs.push(tdg);
        }
        bin.task_nodes.push(std::mem::take(&mut self.task_node));
    }
}

impl<'a> TimingUpdateTdg<'a> {
    /// The task dependency graph to schedule (and to partition).
    pub fn tdg(&self) -> &Tdg {
        self.tdg.as_ref().expect("present until drop")
    }

    /// The pin-level timing graph this update propagates over.
    pub fn graph(&self) -> &'a TimingGraph {
        self.prop.graph
    }

    /// The shared timing state this update writes into.
    pub fn data(&self) -> &'a TimingData {
        self.prop.data
    }

    /// Number of forward-propagation tasks (they occupy ids
    /// `0..num_fprop_tasks`).
    pub fn num_fprop_tasks(&self) -> usize {
        self.num_fprop
    }

    /// Wall-clock spent *building* this TDG (the 59 % slice of Figure 1(a)).
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// What task `t` does.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn kind(&self, t: TaskId) -> TaskKind {
        assert!(t.index() < self.task_node.len(), "task {t} out of range");
        if t.index() < self.num_fprop {
            TaskKind::Fprop
        } else {
            TaskKind::Bprop
        }
    }

    /// The timing-graph node task `t` propagates.
    pub fn node(&self, t: TaskId) -> NodeId {
        NodeId(self.task_node[t.index()])
    }

    /// Size of the *full task space*: two tasks (fprop + bprop) per
    /// timing-graph node, regardless of how many tasks this particular
    /// update contains. Full-space ids are stable across updates, which is
    /// what lets a partition cache (keyed on a full update's TDG) survive
    /// incremental updates whose TDGs are induced subgraphs of it.
    pub fn full_space_len(&self) -> usize {
        2 * self.prop.graph.num_nodes()
    }

    /// The stable full-space id of task `t`: `node` for an fprop task and
    /// `num_nodes + node` for a bprop task. A *full* update (after
    /// [`Timer::invalidate_all`]) numbers its tasks exactly this way, so
    /// its TDG is the full-space TDG and incremental update TDGs map into
    /// it via this function.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn full_space_id(&self, t: TaskId) -> u32 {
        let node = self.node(t).0;
        match self.kind(t) {
            TaskKind::Fprop => node,
            TaskKind::Bprop => node + self.prop.graph.num_nodes() as u32,
        }
    }

    /// The full-space ids of every task of this update, indexed by task id
    /// — the dirty set to feed an incremental partition cache.
    pub fn full_space_ids(&self) -> Vec<u32> {
        (0..self.tdg().num_tasks() as u32)
            .map(|t| self.full_space_id(TaskId(t)))
            .collect()
    }

    /// Execute one task (the payload the scheduler dispatches).
    pub fn execute_task(&self, t: TaskId) {
        let v = NodeId(self.task_node[t.index()]);
        if t.index() < self.num_fprop {
            self.prop.fprop(v);
        } else {
            self.prop.bprop(v);
        }
    }

    /// Borrow the payload as a closure suitable for
    /// `gpasta_sched::Executor` (whose `TaskWork` is implemented for all
    /// `Fn(TaskId) + Sync`).
    pub fn task_fn(&self) -> impl Fn(TaskId) + Sync + '_ {
        move |t| self.execute_task(t)
    }

    /// Run every task on the calling thread in a topological order.
    /// Useful for tests and as the no-scheduler baseline.
    pub fn run_sequential(&self) {
        for &t in self.tdg().levels().order() {
            self.execute_task(TaskId(t));
        }
    }

    /// Run every task sequentially through the *legacy* propagation
    /// kernels ([`TimingPropagator::fprop_reference`] /
    /// [`TimingPropagator::bprop_reference`]) instead of the SoA hot
    /// path — the oracle of the `csr_layout` differential tests.
    #[doc(hidden)]
    pub fn run_sequential_reference(&self) {
        for &t in self.tdg().levels().order() {
            let t = TaskId(t);
            let v = NodeId(self.task_node[t.index()]);
            if t.index() < self.num_fprop {
                self.prop.fprop_reference(v);
            } else {
                self.prop.bprop_reference(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;
    use crate::netlist::NetlistBuilder;

    fn chain_timer(len: usize) -> Timer {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y = nb.add_primary_output("y");
        let mut prev: Option<GateId> = None;
        for i in 0..len {
            let g = nb.add_gate(format!("u{i}"), CellKind::Inv);
            match prev {
                None => nb.connect_to_gate(a, g, 0).expect("valid"),
                Some(p) => nb.connect_gates(p, g, 0).expect("valid"),
            }
            prev = Some(g);
        }
        nb.connect_to_output(prev.expect("len > 0"), y)
            .expect("valid");
        Timer::new(nb.build().expect("well-formed"), CellLibrary::typical())
    }

    #[test]
    fn full_update_covers_every_node_twice() {
        let mut timer = chain_timer(5);
        let update = timer.update_timing();
        let n = update.prop.graph.num_nodes();
        assert_eq!(update.tdg().num_tasks(), 2 * n);
        assert_eq!(update.num_fprop_tasks(), n);
        update.run_sequential();
        drop(update);
        let report = timer.report(3);
        assert!(report.wns_ps.is_finite());
        assert!(
            report.wns_ps > 0.0,
            "short chain meets 1 ns: {}",
            report.wns_ps
        );
    }

    #[test]
    fn update_tdg_kinds_and_nodes() {
        let mut timer = chain_timer(2);
        let update = timer.update_timing();
        let n_tasks = update.tdg().num_tasks();
        let mut fprop_seen = vec![false; update.prop.graph.num_nodes()];
        for t in 0..n_tasks as u32 {
            let t = TaskId(t);
            match update.kind(t) {
                TaskKind::Fprop => fprop_seen[update.node(t).index()] = true,
                TaskKind::Bprop => {}
            }
        }
        assert!(
            fprop_seen.iter().all(|&s| s),
            "every node has an fprop task"
        );
    }

    #[test]
    fn full_update_task_ids_are_the_full_space_ids() {
        let mut timer = chain_timer(4);
        let update = timer.update_timing();
        let n = update.prop.graph.num_nodes();
        assert_eq!(update.full_space_len(), 2 * n);
        // A full update numbers tasks exactly as the full space does:
        // fprop task of node v is task v, bprop task of node v is n + v.
        let ids = update.full_space_ids();
        for (t, &id) in ids.iter().enumerate() {
            assert_eq!(id, t as u32, "full update is the identity embedding");
        }
    }

    #[test]
    fn incremental_update_embeds_into_the_full_space_tdg() {
        let mut timer = chain_timer(8);
        // Capture the full-space TDG from the initial full update.
        let full_update = timer.update_timing();
        let full_tdg = full_update.tdg().clone();
        full_update.run_sequential();
        drop(full_update);

        timer.repower_gate(GateId(4), 3.0);
        let update = timer.update_timing();
        let ids = update.full_space_ids();
        assert_eq!(ids.len(), update.tdg().num_tasks());
        assert!(
            ids.len() < full_tdg.num_tasks(),
            "incremental update must be a strict subset"
        );
        // Ids are consistent with kind/node and within the full space.
        let n = update.prop.graph.num_nodes() as u32;
        for (t, &id) in ids.iter().enumerate() {
            assert!((id as usize) < update.full_space_len());
            match update.kind(TaskId(t as u32)) {
                TaskKind::Fprop => assert_eq!(id, update.node(TaskId(t as u32)).0),
                TaskKind::Bprop => assert_eq!(id, update.node(TaskId(t as u32)).0 + n),
            }
        }
        // Every edge of the incremental TDG exists in the full-space TDG:
        // the incremental TDG is an induced subgraph under this embedding.
        for (u, v) in update.tdg().edges() {
            let (fu, fv) = (ids[u.index()], ids[v.index()]);
            assert!(
                full_tdg.successors(TaskId(fu)).contains(&fv),
                "incremental edge {fu} -> {fv} missing from the full-space TDG"
            );
        }
        // The dirty set is successor-closed in the full space: every
        // full-space successor of a dirty task is itself dirty. This is
        // the precondition of incremental partition repair.
        let mut dirty = vec![false; full_tdg.num_tasks()];
        for &id in &ids {
            dirty[id as usize] = true;
        }
        for &id in &ids {
            for &succ in full_tdg.successors(TaskId(id)) {
                assert!(
                    dirty[succ as usize],
                    "dirty task {id} has clean full-space successor {succ}"
                );
            }
        }
    }

    #[test]
    fn timer_snapshot_restore_resumes_bit_identically() {
        // Reference: run two edits straight through.
        let mut reference = chain_timer(8);
        reference.update_timing().run_sequential();
        reference.repower_gate(GateId(3), 2.0);
        reference.update_timing().run_sequential();
        reference.repower_gate(GateId(6), 0.5);
        reference.update_timing().run_sequential();
        let want = reference.snapshot();

        // Checkpoint after the first edit, restore into a fresh timer
        // (same design inputs), replay the second edit.
        let mut timer = chain_timer(8);
        timer.update_timing().run_sequential();
        timer.repower_gate(GateId(3), 2.0);
        timer.update_timing().run_sequential();
        let ckpt = timer.snapshot();

        let mut resumed = chain_timer(8);
        resumed.restore_snapshot(&ckpt).expect("same design shape");
        assert!(!resumed.has_pending_changes(), "restore clears dirtiness");
        resumed.repower_gate(GateId(6), 0.5);
        resumed.update_timing().run_sequential();
        assert_eq!(resumed.snapshot(), want, "resumed run is bit-identical");
    }

    #[test]
    fn restore_snapshot_rejects_a_different_design() {
        let small = chain_timer(3).snapshot();
        let mut timer = chain_timer(8);
        timer.update_timing().run_sequential();
        let before = timer.snapshot();
        assert!(timer.restore_snapshot(&small).is_err());
        assert_eq!(timer.snapshot(), before, "failed restore leaves state");
    }

    #[test]
    fn update_buffers_are_recycled_across_updates() {
        let mut timer = chain_timer(8);
        let u1 = timer.update_timing();
        u1.run_sequential();
        drop(u1);
        // The dropped update handed its TDG and task map back.
        assert_eq!(timer.bin.lock().tdgs.len(), 1);
        assert_eq!(timer.bin.lock().task_nodes.len(), 1);
        let want = timer.report(1).wns_ps;

        // Repeated full updates drain the bin and produce identical timing.
        let bin = Arc::clone(&timer.bin);
        for _ in 0..3 {
            timer.invalidate_all();
            let u = timer.update_timing();
            assert!(bin.lock().tdgs.is_empty(), "bin drained into arena");
            u.run_sequential();
            drop(u);
            assert_eq!(timer.report(1).wns_ps, want);
        }
    }

    #[test]
    fn no_pending_changes_after_update() {
        let mut timer = chain_timer(3);
        assert!(timer.has_pending_changes());
        let update = timer.update_timing();
        update.run_sequential();
        drop(update);
        assert!(!timer.has_pending_changes());
        // A fresh update with nothing dirty is empty.
        let update = timer.update_timing();
        assert_eq!(update.tdg().num_tasks(), 0);
    }

    #[test]
    fn incremental_matches_full_reanalysis() {
        let mut timer = chain_timer(8);
        timer.update_timing().run_sequential();

        // Modify: repower the middle gate.
        timer.repower_gate(GateId(4), 3.0);
        assert!(timer.has_pending_changes());
        let update = timer.update_timing();
        let incr_tasks = update.tdg().num_tasks();
        update.run_sequential();
        drop(update);
        let incr = timer.report(1).wns_ps;

        // Reference: force a full re-analysis on the same design state.
        timer.full_dirty = true;
        timer.update_timing().run_sequential();
        let full = timer.report(1).wns_ps;

        assert_eq!(incr, full, "incremental must equal full re-analysis");
        assert!(
            incr_tasks <= 2 * timer.graph().num_nodes(),
            "incremental TDG is never bigger than a full one"
        );
    }

    #[test]
    fn incremental_region_is_smaller_for_late_edits() {
        // Editing the last gate of a chain affects only its own cone plus
        // the backward cone through required times; with a chain, the
        // backward cone reaches everything, but the forward (fprop) region
        // must be small.
        let mut timer = chain_timer(16);
        timer.update_timing().run_sequential();
        timer.repower_gate(GateId(15), 2.0);
        let total_nodes = timer.graph().num_nodes();
        let update = timer.update_timing();
        assert!(
            update.num_fprop_tasks() < total_nodes / 2,
            "late edit must not re-run forward propagation everywhere: {} of {}",
            update.num_fprop_tasks(),
            total_nodes
        );
    }

    #[test]
    fn set_net_cap_slows_the_path() {
        let mut timer = chain_timer(4);
        timer.update_timing().run_sequential();
        let before = timer.report(1).wns_ps;

        timer.set_net_cap(2, 50.0);
        timer.update_timing().run_sequential();
        let after = timer.report(1).wns_ps;
        assert!(
            after < before,
            "added 50 fF, slack must drop: {after} vs {before}"
        );
    }

    #[test]
    fn clock_period_scales_slack() {
        let mut timer = chain_timer(4);
        timer.update_timing().run_sequential();
        let at_1ns = timer.report(1).wns_ps;
        timer.set_clock_period(2_000.0);
        timer.update_timing().run_sequential();
        let at_2ns = timer.report(1).wns_ps;
        assert!(
            (at_2ns - at_1ns - 1_000.0).abs() < 1.0,
            "slack shifts by the period delta"
        );
    }

    #[test]
    fn report_ranks_endpoints() {
        // Two paths of different lengths to two POs.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y_short = nb.add_primary_output("y_short");
        let y_long = nb.add_primary_output("y_long");
        let g1 = nb.add_gate("u1", CellKind::Buf);
        let g2 = nb.add_gate("u2", CellKind::Buf);
        let g3 = nb.add_gate("u3", CellKind::Buf);
        nb.connect_to_gate(a, g1, 0).expect("valid");
        nb.connect_to_output(g1, y_short).expect("valid");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_gates(g2, g3, 0).expect("valid");
        nb.connect_to_output(g3, y_long).expect("valid");
        let mut timer = Timer::new(nb.build().expect("well-formed"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        let report = timer.report(2);
        assert_eq!(report.num_endpoints, 2);
        assert_eq!(
            report.worst[0].name, "y_long",
            "longer path is more critical"
        );
        assert!(report.worst[0].slack_ps < report.worst[1].slack_ps);
    }

    #[test]
    fn try_new_reports_combinational_loops() {
        let mut nb = crate::netlist::NetlistBuilder::new();
        let g1 = nb.add_gate("u1", CellKind::Inv);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_gates(g2, g1, 0).expect("valid");
        nb.connect_to_output(g1, y).expect("valid");
        let netlist = nb.build().expect("structurally complete");
        assert!(matches!(
            Timer::try_new(netlist, CellLibrary::typical()),
            Err(gpasta_tdg::BuildTdgError::Cycle { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "drive strength must be positive")]
    fn bad_drive_panics() {
        let mut timer = chain_timer(2);
        timer.repower_gate(GateId(0), 0.0);
    }

    #[test]
    fn hold_report_is_nonnegative_for_combinational_designs() {
        // With hold requirement 0 and positive delays, early arrivals are
        // always safe.
        let mut timer = chain_timer(6);
        timer.update_timing().run_sequential();
        let hold = timer.report_hold(3);
        assert!(hold.wns_ps >= 0.0, "hold WNS {}", hold.wns_ps);
        assert_eq!(hold.num_endpoints, timer.report(1).num_endpoints);
        // Hold slack is tighter than setup headroom on a fast clock: they
        // measure different edges.
        assert_ne!(hold.wns_ps, timer.report(1).wns_ps);
    }

    #[test]
    fn negative_slack_when_clock_is_too_fast() {
        let mut timer = chain_timer(40);
        timer.set_clock_period(100.0); // 100 ps for a 40-stage chain: hopeless
        timer.update_timing().run_sequential();
        let report = timer.report(1);
        assert!(report.wns_ps < 0.0);
        assert!(report.tns_ps <= report.wns_ps);
    }
}
