//! Graceful degradation for `update_timing`: run the update TDG through the
//! recovering executor, salvage every timing value outside the poisoned
//! cone, mark poisoned endpoints unknown, and optionally *heal* — re-run
//! just the quarantined cone sequentially to converge to the bit-identical
//! fault-free answer.
//!
//! The recovery contract leans on two properties of the engine:
//!
//! * the poisoned task set returned by the executor is the exact forward
//!   closure of the permanently failed tasks, so every salvaged task's
//!   inputs were produced by salvaged tasks — salvaged values are exactly
//!   the fault-free values;
//! * `fprop`/`bprop` fully overwrite everything they produce from upstream
//!   state, so re-running the poisoned tasks in topological order (after
//!   the salvage) converges to the same bits a fault-free run produces.

use crate::graph::NodeId;
use crate::timer::{TaskKind, TimingUpdateTdg};
use gpasta_sched::{Executor, FaultPlan, FaultyWork, RetryPolicy, RunBudget, RunOutcome};
use gpasta_tdg::{QuotientTdg, TaskId};

/// Result of a recovering timing update: the executor's [`RunOutcome`]
/// plus its projection onto the timing graph.
#[derive(Debug, Clone)]
pub struct RecoveredUpdate {
    /// The executor-level outcome (salvaged/poisoned/unfinished tasks,
    /// failures, retries, stop cause, scheduling report).
    pub outcome: RunOutcome,
    /// Nodes whose forward state (arrival/slew) is poisoned: their fprop
    /// task is in the quarantine. Sorted by node id.
    pub poisoned_fprop_nodes: Vec<NodeId>,
    /// Nodes whose required times are poisoned: their bprop task is in the
    /// quarantine. Sorted by node id.
    pub poisoned_bprop_nodes: Vec<NodeId>,
    /// Endpoints whose slack cannot be trusted (their fprop or bprop task
    /// is poisoned). Sorted, deduplicated.
    pub poisoned_endpoints: Vec<NodeId>,
    /// Nodes whose fprop task was never admitted because the run stopped
    /// early (deadline or cancellation). Disjoint from the poisoned set.
    /// Sorted by node id.
    pub unfinished_fprop_nodes: Vec<NodeId>,
    /// Nodes whose bprop task was never admitted. Sorted by node id.
    pub unfinished_bprop_nodes: Vec<NodeId>,
    /// Endpoints whose slack is stale because a task feeding it was never
    /// admitted. Sorted, deduplicated.
    pub unfinished_endpoints: Vec<NodeId>,
}

impl RecoveredUpdate {
    /// `true` when nothing failed *and* the run ran to completion: every
    /// value is the fault-free value.
    pub fn is_clean(&self) -> bool {
        self.outcome.is_clean()
    }
}

impl<'a> TimingUpdateTdg<'a> {
    /// Run this update through the recovering executor with faults drawn
    /// from `plan` (use [`FaultPlan::none`] in production for a
    /// fault-transparent run). Never unwinds: failures are contained to
    /// their forward closure and reported in the returned
    /// [`RecoveredUpdate`]; all other timing values are salvaged.
    pub fn run_recovering(
        &self,
        exec: &Executor,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> RecoveredUpdate {
        let payload = self.task_fn();
        let work = FaultyWork::new(&payload, plan);
        let outcome = exec.run_tdg_recovering(self.tdg(), &work, policy);
        self.project(outcome)
    }

    /// Partitioned variant of
    /// [`run_recovering`](TimingUpdateTdg::run_recovering): dispatches
    /// `quotient` nodes, so a failure quarantines the whole partition plus
    /// its quotient-graph forward closure. `quotient` must be built over
    /// this update's TDG.
    pub fn run_partitioned_recovering(
        &self,
        exec: &Executor,
        quotient: &QuotientTdg,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> RecoveredUpdate {
        let payload = self.task_fn();
        let work = FaultyWork::new(&payload, plan);
        let outcome = exec.run_partitioned_recovering(quotient, &work, policy);
        self.project(outcome)
    }

    /// Bounded-time variant of
    /// [`run_recovering`](TimingUpdateTdg::run_recovering): the run stops
    /// admitting tasks when `budget` expires (deadline or cancellation) and
    /// the forward closure of everything unadmitted is reported as
    /// *unfinished* in the returned [`RecoveredUpdate`]. Everything admitted
    /// before the stop carries its exact fault-free value, so a later
    /// [`heal`](TimingUpdateTdg::heal) (with a fresh budget) converges to
    /// the bit-identical complete answer.
    pub fn run_recovering_bounded(
        &self,
        exec: &Executor,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        budget: &RunBudget,
    ) -> RecoveredUpdate {
        let payload = self.task_fn();
        let work = FaultyWork::new(&payload, plan);
        let outcome = exec.run_tdg_recovering_bounded(self.tdg(), &work, policy, budget);
        self.project(outcome)
    }

    /// Bounded-time variant of
    /// [`run_partitioned_recovering`](TimingUpdateTdg::run_partitioned_recovering):
    /// the budget is polled at partition boundaries, so the stop latency is
    /// one partition's worth of propagation work.
    pub fn run_partitioned_recovering_bounded(
        &self,
        exec: &Executor,
        quotient: &QuotientTdg,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        budget: &RunBudget,
    ) -> RecoveredUpdate {
        let payload = self.task_fn();
        let work = FaultyWork::new(&payload, plan);
        let outcome = exec.run_partitioned_recovering_bounded(quotient, &work, policy, budget);
        self.project(outcome)
    }

    /// Project an executor outcome onto the timing graph: split the
    /// poisoned task set by propagation direction and collect the affected
    /// endpoints.
    fn project(&self, outcome: RunOutcome) -> RecoveredUpdate {
        let graph = self.graph();
        let split = |tasks: &[u32]| {
            let mut fprop = Vec::new();
            let mut bprop = Vec::new();
            let mut endpoints = Vec::new();
            for &t in tasks {
                let t = TaskId(t);
                let v = self.node(t);
                match self.kind(t) {
                    TaskKind::Fprop => fprop.push(v),
                    TaskKind::Bprop => bprop.push(v),
                }
                if graph.is_endpoint(v) {
                    endpoints.push(v);
                }
            }
            fprop.sort_unstable_by_key(|v| v.0);
            bprop.sort_unstable_by_key(|v| v.0);
            endpoints.sort_unstable_by_key(|v| v.0);
            endpoints.dedup();
            (fprop, bprop, endpoints)
        };
        let (poisoned_fprop_nodes, poisoned_bprop_nodes, poisoned_endpoints) =
            split(&outcome.poisoned_tasks);
        let (unfinished_fprop_nodes, unfinished_bprop_nodes, unfinished_endpoints) =
            split(&outcome.unfinished_tasks);
        RecoveredUpdate {
            outcome,
            poisoned_fprop_nodes,
            poisoned_bprop_nodes,
            poisoned_endpoints,
            unfinished_fprop_nodes,
            unfinished_bprop_nodes,
            unfinished_endpoints,
        }
    }

    /// Degrade explicitly: store NaN into every poisoned *and unfinished*
    /// value so reports show *unknown* instead of a stale-but-plausible
    /// number. Arrival and slew are marked for affected fprop nodes,
    /// required times for affected bprop nodes. Salvaged values are
    /// untouched.
    ///
    /// A subsequent [`heal`](TimingUpdateTdg::heal) overwrites the NaNs
    /// with the converged values.
    pub fn mark_unknown(&self, rec: &RecoveredUpdate) {
        let data = self.data();
        for nodes in [&rec.poisoned_fprop_nodes, &rec.unfinished_fprop_nodes] {
            for &v in nodes {
                data.mark_arrival_unknown(v);
            }
        }
        for nodes in [&rec.poisoned_bprop_nodes, &rec.unfinished_bprop_nodes] {
            for &v in nodes {
                data.mark_required_unknown(v);
            }
        }
    }

    /// Re-run exactly the degraded region — the poisoned cone plus the
    /// unfinished closure of an early-stopped run — sequentially
    /// (fault-free), in topological order, converging the whole design to
    /// the bit-identical fault-free answer: the salvaged region is already
    /// exact, and propagation tasks rebuild everything they produce from
    /// upstream state. Returns the number of tasks re-executed.
    pub fn heal(&self, rec: &RecoveredUpdate) -> usize {
        if rec.outcome.poisoned_tasks.is_empty() && rec.outcome.unfinished_tasks.is_empty() {
            return 0;
        }
        let mut rerun = vec![false; self.tdg().num_tasks()];
        for &t in rec
            .outcome
            .poisoned_tasks
            .iter()
            .chain(&rec.outcome.unfinished_tasks)
        {
            rerun[t as usize] = true;
        }
        let mut healed = 0usize;
        for &t in self.tdg().levels().order() {
            if rerun[t as usize] {
                self.execute_task(TaskId(t));
                healed += 1;
            }
        }
        healed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{CellKind, CellLibrary};
    use crate::netlist::NetlistBuilder;
    use crate::timer::Timer;
    use gpasta_sched::FaultKind;

    /// A small multi-cone design: two mostly-independent chains sharing
    /// the input stage, so one cone can be poisoned while the other is
    /// salvaged.
    fn two_cone_timer() -> Timer {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let y0 = nb.add_primary_output("y0");
        let y1 = nb.add_primary_output("y1");
        let mut prev0 = None;
        let mut prev1 = None;
        for i in 0..4 {
            let g0 = nb.add_gate(format!("u0_{i}"), CellKind::Inv);
            let g1 = nb.add_gate(format!("u1_{i}"), CellKind::Buf);
            match prev0 {
                None => nb.connect_to_gate(a, g0, 0).expect("valid"),
                Some(p) => nb.connect_gates(p, g0, 0).expect("valid"),
            }
            match prev1 {
                None => nb.connect_to_gate(b, g1, 0).expect("valid"),
                Some(p) => nb.connect_gates(p, g1, 0).expect("valid"),
            }
            prev0 = Some(g0);
            prev1 = Some(g1);
        }
        nb.connect_to_output(prev0.expect("built"), y0)
            .expect("valid");
        nb.connect_to_output(prev1.expect("built"), y1)
            .expect("valid");
        Timer::new(nb.build().expect("well-formed"), CellLibrary::typical())
    }

    /// Bit-exact snapshot of every endpoint's late slack.
    fn slack_bits(timer: &Timer) -> Vec<u32> {
        timer
            .graph()
            .endpoints()
            .iter()
            .map(|&v| timer.data().slack_late(NodeId(v)).to_bits())
            .collect()
    }

    #[test]
    fn clean_plan_recovers_everything() {
        let mut timer = two_cone_timer();
        let update = timer.update_timing();
        let rec = update.run_recovering(
            &Executor::new(2),
            &FaultPlan::none(),
            &RetryPolicy::default(),
        );
        assert!(rec.is_clean());
        assert_eq!(rec.outcome.salvaged_tasks, update.tdg().num_tasks());
        assert!(rec.poisoned_endpoints.is_empty());
        drop(update);
        assert!(timer.report(1).wns_ps.is_finite());
    }

    #[test]
    fn poisoned_cone_is_contained_and_marked_unknown() {
        // Reference: fault-free run.
        let mut ref_timer = two_cone_timer();
        let ref_update = ref_timer.update_timing();
        ref_update.run_sequential();
        drop(ref_update);
        let reference = slack_bits(&ref_timer);

        let mut timer = two_cone_timer();
        let update = timer.update_timing();
        // Poison the fprop of the first cone's second gate output — found
        // by walking tasks for a node on cone 0.
        let seed_task = (0..update.num_fprop_tasks() as u32)
            .map(TaskId)
            .find(|&t| {
                !update.graph().fanin(update.node(t)).is_empty()
                    && !update.graph().is_endpoint(update.node(t))
            })
            .expect("an interior fprop task exists");
        let plan = FaultPlan::none().inject(seed_task.0, 0, FaultKind::WrongResult);
        let rec = update.run_recovering(&Executor::new(2), &plan, &RetryPolicy::no_retries());
        assert!(!rec.is_clean());
        assert!(!rec.poisoned_endpoints.is_empty(), "cone reaches endpoints");
        assert!(
            rec.poisoned_endpoints.len() < update.graph().endpoints().len(),
            "the other cone's endpoints are salvaged"
        );
        update.mark_unknown(&rec);
        let data = update.data();
        for &v in &rec.poisoned_fprop_nodes {
            assert!(data.is_unknown(v), "poisoned node {v:?} must read unknown");
        }
        drop(update);
        // Salvaged endpoints carry the bit-exact fault-free slack.
        let damaged = slack_bits(&timer);
        let poisoned: Vec<u32> = rec.poisoned_endpoints.iter().map(|v| v.0).collect();
        for (i, &v) in timer.graph().endpoints().iter().enumerate() {
            if poisoned.contains(&v) {
                assert!(
                    f32::from_bits(damaged[i]).is_nan(),
                    "poisoned endpoint {v} must be unknown"
                );
            } else {
                assert_eq!(damaged[i], reference[i], "salvaged endpoint {v}");
            }
        }
    }

    #[test]
    fn pre_expired_deadline_yields_a_fully_unknown_partial_report() {
        use std::time::Duration;
        let mut timer = two_cone_timer();
        let update = timer.update_timing();
        let budget = RunBudget::default().with_deadline(Duration::ZERO);
        let rec = update.run_recovering_bounded(
            &Executor::new(2),
            &FaultPlan::none(),
            &RetryPolicy::no_retries(),
            &budget,
        );
        assert!(!rec.is_clean());
        assert_eq!(rec.outcome.stop, gpasta_sched::StopCause::DeadlineExpired);
        assert_eq!(
            rec.outcome.unfinished_tasks.len(),
            update.tdg().num_tasks(),
            "nothing was admitted"
        );
        assert_eq!(
            rec.unfinished_endpoints.len(),
            update.graph().endpoints().len()
        );
        // Degraded projection: every endpoint reads unknown, not stale.
        update.mark_unknown(&rec);
        drop(update);
        for bits in slack_bits(&timer) {
            assert!(f32::from_bits(bits).is_nan(), "endpoint must be unknown");
        }
    }

    #[test]
    fn heal_after_deadline_expiry_converges_bit_identically() {
        use std::time::Duration;
        let mut ref_timer = two_cone_timer();
        let ref_update = ref_timer.update_timing();
        ref_update.run_sequential();
        drop(ref_update);
        let reference = slack_bits(&ref_timer);

        let mut timer = two_cone_timer();
        let update = timer.update_timing();
        let budget = RunBudget::default().with_deadline(Duration::ZERO);
        let rec = update.run_recovering_bounded(
            &Executor::new(2),
            &FaultPlan::none(),
            &RetryPolicy::no_retries(),
            &budget,
        );
        update.mark_unknown(&rec);
        // Heal with no budget pressure: re-runs exactly the unfinished
        // closure (the poisoned set is empty on a fault-free plan).
        assert!(rec.outcome.poisoned_tasks.is_empty());
        let healed = update.heal(&rec);
        assert_eq!(healed, rec.outcome.unfinished_tasks.len());
        drop(update);
        assert_eq!(
            slack_bits(&timer),
            reference,
            "healed partial run must be bit-identical to the complete run"
        );
    }

    #[test]
    fn deadline_expired_partitioned_run_reports_unfinished_and_heals() {
        use gpasta_core::{Partitioner, PartitionerOptions, SeqGPasta};
        use std::time::Duration;

        let mut ref_timer = two_cone_timer();
        let ref_update = ref_timer.update_timing();
        ref_update.run_sequential();
        drop(ref_update);
        let reference = slack_bits(&ref_timer);

        let mut timer = two_cone_timer();
        let update = timer.update_timing();
        let p = SeqGPasta::new()
            .partition(update.tdg(), &PartitionerOptions::default())
            .expect("valid options");
        let quotient = gpasta_tdg::QuotientTdg::build(update.tdg(), &p).expect("acyclic");
        let budget = RunBudget::default().with_deadline(Duration::ZERO);
        let rec = update.run_partitioned_recovering_bounded(
            &Executor::new(2),
            &quotient,
            &FaultPlan::none(),
            &RetryPolicy::no_retries(),
            &budget,
        );
        assert_eq!(rec.outcome.stop, gpasta_sched::StopCause::DeadlineExpired);
        assert!(!rec.is_clean());
        assert_eq!(
            rec.outcome.unfinished_tasks.len(),
            update.tdg().num_tasks(),
            "a pre-expired deadline admits no partition"
        );
        update.mark_unknown(&rec);
        update.heal(&rec);
        drop(update);
        assert_eq!(slack_bits(&timer), reference);
    }

    #[test]
    fn heal_converges_to_bit_identical_results() {
        let mut ref_timer = two_cone_timer();
        let ref_update = ref_timer.update_timing();
        ref_update.run_sequential();
        drop(ref_update);
        let reference = slack_bits(&ref_timer);

        let mut timer = two_cone_timer();
        let update = timer.update_timing();
        let kinds = [
            FaultKind::Panic,
            FaultKind::Transient,
            FaultKind::WrongResult,
        ];
        let plan = FaultPlan::random(0xBEEF, 0.08, &kinds);
        let rec = update.run_recovering(
            &Executor::new(2),
            &plan,
            &RetryPolicy {
                max_retries: 1,
                base_backoff: std::time::Duration::ZERO,
                max_backoff: std::time::Duration::ZERO,
            },
        );
        update.mark_unknown(&rec);
        let healed = update.heal(&rec);
        assert_eq!(healed, rec.outcome.poisoned_tasks.len());
        drop(update);
        assert_eq!(
            slack_bits(&timer),
            reference,
            "healed results must be bit-identical to the fault-free run"
        );
    }
}
