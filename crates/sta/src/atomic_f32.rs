//! An atomic `f32` cell.
//!
//! Timing values (arrival, required, slew) are written by exactly one
//! propagation task and read by downstream tasks; the scheduler's
//! dependency countdown provides the happens-before edge, so relaxed
//! bit-level atomics are sufficient and keep the engine free of `unsafe`.

use gpasta_check::sync::{AtomicU32, Ordering};

/// An `f32` stored in an `AtomicU32` via bit transmutation.
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// Create a cell holding `v`.
    pub fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f32) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Relaxed load of the raw bit pattern — the checkpoint path snapshots
    /// whole arrays and must not round-trip through an `f32` value (which
    /// could quiet a signalling NaN on some targets).
    #[inline]
    pub fn load_bits(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Relaxed store of a raw bit pattern (restore counterpart of
    /// [`load_bits`](Self::load_bits)).
    #[inline]
    pub fn store_bits(&self, bits: u32) {
        self.0.store(bits, Ordering::Relaxed);
    }

    /// Lower the cell to `min(current, v)`, treating NaN as absorbing: if
    /// either side is NaN the cell becomes NaN, so a poisoned slack is
    /// never masked by a later finite contribution (IEEE `min` would drop
    /// the NaN and hide the corruption).
    ///
    /// Concurrent callers fold commutatively, so the result is the same
    /// for every interleaving — the `slack-min` model-check harness in
    /// `gpasta-check` explores all of them to prove it. The reduction
    /// transfers only the value itself (no payload to publish), so
    /// `Relaxed` is sufficient.
    pub fn fetch_min_nan_preserving(&self, v: f32) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let cur_f = f32::from_bits(cur);
            let new = if cur_f.is_nan() || v.is_nan() {
                f32::NAN
            } else {
                cur_f.min(v)
            }
            .to_bits();
            if new == cur {
                return;
            }
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Clone for AtomicF32 {
    fn clone(&self) -> Self {
        AtomicF32::new(self.load())
    }
}

impl From<f32> for AtomicF32 {
    fn from(v: f32) -> Self {
        AtomicF32::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-3.25);
        assert_eq!(a.load(), -3.25);
    }

    #[test]
    fn preserves_infinities_and_signed_zero() {
        let a = AtomicF32::new(f32::NEG_INFINITY);
        assert_eq!(a.load(), f32::NEG_INFINITY);
        a.store(-0.0);
        assert!(a.load().is_sign_negative());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF32::default().load(), 0.0);
    }

    #[test]
    fn bits_round_trip_exactly() {
        let a = AtomicF32::new(0.0);
        // A NaN with a non-default payload must survive untouched.
        let weird_nan = 0x7F80_0001u32;
        a.store_bits(weird_nan);
        assert_eq!(a.load_bits(), weird_nan);
        a.store_bits((-0.0f32).to_bits());
        assert!(a.load().is_sign_negative());
    }

    #[test]
    fn clone_copies_value_not_cell() {
        let a = AtomicF32::new(2.0);
        let b = a.clone();
        a.store(9.0);
        assert_eq!(b.load(), 2.0);
    }

    #[test]
    fn fetch_min_lowers_monotonically() {
        let a = AtomicF32::new(5.0);
        a.fetch_min_nan_preserving(7.0);
        assert_eq!(a.load(), 5.0, "larger value must not raise the min");
        a.fetch_min_nan_preserving(-1.5);
        assert_eq!(a.load(), -1.5);
    }

    #[test]
    fn fetch_min_nan_is_absorbing() {
        let a = AtomicF32::new(3.0);
        a.fetch_min_nan_preserving(f32::NAN);
        assert!(a.load().is_nan(), "NaN input must poison the cell");
        a.fetch_min_nan_preserving(-100.0);
        assert!(a.load().is_nan(), "finite input must not mask the NaN");
    }
}
