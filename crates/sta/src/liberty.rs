//! A Liberty-subset reader and writer for [`CellLibrary`].
//!
//! Production STA tools consume NLDM data from Liberty (`.lib`) files.
//! This module supports a compact, self-consistent subset of that format —
//! enough to round-trip every field of [`CellLibrary`]:
//!
//! ```text
//! library (typical) {
//!   input_slew : 20;
//!   output_load : 2;
//!   wire_res : 0.4;
//!   cell (NAND2) {
//!     input_cap : 1.3;
//!     clk_to_q : 0;
//!     setup : 0;
//!     lut (delay_rise) {
//!       slew_axis : "5, 10, 20";
//!       load_axis : "0.5, 1, 2";
//!       values : "12.1, 13.0, 14.8, 12.5, 13.4, 15.2, 13.2, 14.1, 15.9";
//!     }
//!     /* delay_fall, slew_rise, slew_fall likewise */
//!   }
//! }
//! ```
//!
//! Group braces, `name : value;` attributes, quoted number lists, `//` and
//! `/* */` comments follow Liberty conventions; everything else of the real
//! grammar (operating conditions, power, `pin` groups) is out of scope.

use crate::library::{ArcTables, CellKind, CellLibrary, CellTiming, Lut2D};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_liberty`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseLibertyError {
    /// Lexing or structural failure at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A cell group used a name that is not a known [`CellKind`].
    UnknownCell {
        /// The unrecognised cell name.
        name: String,
    },
    /// A cell is missing one of its four required tables.
    MissingTable {
        /// The cell.
        cell: String,
        /// The missing table name.
        table: String,
    },
    /// The library block is missing cells for some [`CellKind`]s.
    MissingCells {
        /// How many of the kinds were not found.
        missing: usize,
    },
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibertyError::Syntax { line, message } => {
                write!(f, "liberty syntax error at line {line}: {message}")
            }
            ParseLibertyError::UnknownCell { name } => write!(f, "unknown cell `{name}`"),
            ParseLibertyError::MissingTable { cell, table } => {
                write!(f, "cell `{cell}` is missing table `{table}`")
            }
            ParseLibertyError::MissingCells { missing } => {
                write!(f, "library is missing {missing} required cells")
            }
        }
    }
}

impl Error for ParseLibertyError {}

/// Render `library` in the Liberty subset (lossless for this library
/// model).
pub fn write_liberty(library: &CellLibrary, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("library ({name}) {{\n"));
    out.push_str(&format!("  input_slew : {};\n", library.input_slew_ps));
    out.push_str(&format!("  output_load : {};\n", library.output_load_ff));
    out.push_str(&format!("  wire_res : {};\n", library.wire_res_ps_per_ff));
    for &kind in CellKind::all() {
        let cell = library.cell(kind);
        out.push_str(&format!("  cell ({kind}) {{\n"));
        out.push_str(&format!("    input_cap : {};\n", cell.input_cap_ff));
        out.push_str(&format!("    clk_to_q : {};\n", cell.clk_to_q_ps));
        out.push_str(&format!("    setup : {};\n", cell.setup_ps));
        for (table_name, lut) in [
            ("delay_rise", &cell.tables.delay_rise),
            ("delay_fall", &cell.tables.delay_fall),
            ("slew_rise", &cell.tables.slew_rise),
            ("slew_fall", &cell.tables.slew_fall),
        ] {
            out.push_str(&format!("    lut ({table_name}) {{\n"));
            out.push_str(&format!(
                "      slew_axis : \"{}\";\n",
                join(lut.slew_axis())
            ));
            out.push_str(&format!(
                "      load_axis : \"{}\";\n",
                join(lut.load_axis())
            ));
            out.push_str(&format!("      values : \"{}\";\n", join(lut.values())));
            out.push_str("    }\n");
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

fn join(xs: &[f32]) -> String {
    xs.iter().map(f32::to_string).collect::<Vec<_>>().join(", ")
}

/// A parsed `name : value;` or group event from the tokenizer.
enum Event {
    GroupOpen { keyword: String, name: String },
    GroupClose,
    Attribute { name: String, value: String },
}

/// Strip comments and split into line-accurate events.
fn lex(text: &str) -> Result<Vec<(usize, Event)>, ParseLibertyError> {
    // Remove /* */ comments first (may span lines), preserving newlines so
    // line numbers stay correct.
    let mut cleaned = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("/*") {
        let (head, tail) = rest.split_at(start);
        cleaned.push_str(head);
        match tail.find("*/") {
            Some(end) => {
                for c in tail[..end + 2].chars().filter(|&c| c == '\n') {
                    cleaned.push(c);
                }
                rest = &tail[end + 2..];
            }
            None => {
                rest = "";
            }
        }
    }
    cleaned.push_str(rest);

    let mut events = Vec::new();
    for (i, raw_line) in cleaned.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // A line may end with `{` (group open), be `}` (close), or be an
        // attribute `name : value ;`.
        if line == "}" {
            events.push((line_no, Event::GroupClose));
        } else if let Some(head) = line.strip_suffix('{') {
            let head = head.trim();
            let (keyword, name) = match head.find('(') {
                Some(p) => {
                    let keyword = head[..p].trim().to_owned();
                    let name = head[p + 1..].trim_end_matches(')').trim().to_owned();
                    (keyword, name)
                }
                None => (head.to_owned(), String::new()),
            };
            if keyword.is_empty() {
                return Err(ParseLibertyError::Syntax {
                    line: line_no,
                    message: "group without a keyword".into(),
                });
            }
            events.push((line_no, Event::GroupOpen { keyword, name }));
        } else if let Some(body) = line.strip_suffix(';') {
            let mut parts = body.splitn(2, ':');
            let name = parts.next().unwrap_or("").trim().to_owned();
            let value = parts
                .next()
                .ok_or_else(|| ParseLibertyError::Syntax {
                    line: line_no,
                    message: format!("attribute `{name}` has no value"),
                })?
                .trim()
                .trim_matches('"')
                .to_owned();
            events.push((line_no, Event::Attribute { name, value }));
        } else {
            return Err(ParseLibertyError::Syntax {
                line: line_no,
                message: format!("unrecognised construct `{line}`"),
            });
        }
    }
    Ok(events)
}

fn parse_f32(line: usize, name: &str, value: &str) -> Result<f32, ParseLibertyError> {
    value.parse().map_err(|_| ParseLibertyError::Syntax {
        line,
        message: format!("attribute `{name}`: `{value}` is not a number"),
    })
}

fn parse_list(line: usize, name: &str, value: &str) -> Result<Vec<f32>, ParseLibertyError> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|tok| parse_f32(line, name, tok))
        .collect()
}

fn kind_from_name(name: &str) -> Option<CellKind> {
    CellKind::all()
        .iter()
        .copied()
        .find(|k| k.to_string() == name)
}

/// Parse the Liberty subset back into a [`CellLibrary`].
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on malformed input, unknown cells, or an
/// incomplete library (every [`CellKind`] needs a cell with all four
/// tables).
pub fn parse_liberty(text: &str) -> Result<CellLibrary, ParseLibertyError> {
    let events = lex(text)?;

    // Defaults inherited from the typical library, overridden by the file.
    let mut library = CellLibrary::typical();
    let mut found = vec![false; CellKind::all().len()];

    #[derive(Default)]
    struct LutDraft {
        slew_axis: Option<Vec<f32>>,
        load_axis: Option<Vec<f32>>,
        values: Option<Vec<f32>>,
    }
    struct CellDraft {
        kind: CellKind,
        input_cap: Option<f32>,
        clk_to_q: Option<f32>,
        setup: Option<f32>,
        tables: [Option<Lut2D>; 4],
    }

    let mut cell: Option<CellDraft> = None;
    let mut lut: Option<(usize, String, LutDraft)> = None; // (table idx, name, draft)
    let mut depth = 0usize;

    for (line, event) in events {
        match event {
            Event::GroupOpen { keyword, name } => {
                depth += 1;
                match (keyword.as_str(), depth) {
                    ("library", 1) => {}
                    ("cell", 2) => {
                        let kind = kind_from_name(&name)
                            .ok_or(ParseLibertyError::UnknownCell { name: name.clone() })?;
                        cell = Some(CellDraft {
                            kind,
                            input_cap: None,
                            clk_to_q: None,
                            setup: None,
                            tables: [None, None, None, None],
                        });
                    }
                    ("lut", 3) => {
                        let idx = ["delay_rise", "delay_fall", "slew_rise", "slew_fall"]
                            .iter()
                            .position(|&t| t == name)
                            .ok_or_else(|| ParseLibertyError::Syntax {
                                line,
                                message: format!("unknown table `{name}`"),
                            })?;
                        lut = Some((idx, name, LutDraft::default()));
                    }
                    _ => {
                        return Err(ParseLibertyError::Syntax {
                            line,
                            message: format!("unexpected group `{keyword}` at depth {depth}"),
                        })
                    }
                }
            }
            Event::GroupClose => {
                match depth {
                    3 => {
                        // Close a lut.
                        let (idx, name, draft) =
                            lut.take().ok_or_else(|| ParseLibertyError::Syntax {
                                line,
                                message: "unmatched `}`".into(),
                            })?;
                        let missing = |what: &str| ParseLibertyError::Syntax {
                            line,
                            message: format!("table `{name}` missing `{what}`"),
                        };
                        let slew = draft.slew_axis.ok_or_else(|| missing("slew_axis"))?;
                        let load = draft.load_axis.ok_or_else(|| missing("load_axis"))?;
                        let values = draft.values.ok_or_else(|| missing("values"))?;
                        if values.len() != slew.len() * load.len() {
                            return Err(ParseLibertyError::Syntax {
                                line,
                                message: format!(
                                    "table `{name}`: {} values for a {}x{} grid",
                                    values.len(),
                                    slew.len(),
                                    load.len()
                                ),
                            });
                        }
                        let cell_ref = cell.as_mut().ok_or_else(|| ParseLibertyError::Syntax {
                            line,
                            message: "lut outside a cell".into(),
                        })?;
                        cell_ref.tables[idx] = Some(Lut2D::new(slew, load, values));
                    }
                    2 => {
                        // Close a cell.
                        let draft = cell.take().ok_or_else(|| ParseLibertyError::Syntax {
                            line,
                            message: "unmatched `}`".into(),
                        })?;
                        let cell_name = draft.kind.to_string();
                        let [delay_rise, delay_fall, slew_rise, slew_fall] = draft.tables;
                        let require = |t: Option<Lut2D>, table: &str| {
                            t.ok_or_else(|| ParseLibertyError::MissingTable {
                                cell: cell_name.clone(),
                                table: table.to_owned(),
                            })
                        };
                        let timing = CellTiming {
                            input_cap_ff: draft.input_cap.unwrap_or(1.0),
                            tables: ArcTables {
                                delay_rise: require(delay_rise, "delay_rise")?,
                                delay_fall: require(delay_fall, "delay_fall")?,
                                slew_rise: require(slew_rise, "slew_rise")?,
                                slew_fall: require(slew_fall, "slew_fall")?,
                            },
                            clk_to_q_ps: draft.clk_to_q.unwrap_or(0.0),
                            setup_ps: draft.setup.unwrap_or(0.0),
                        };
                        let idx = CellKind::all()
                            .iter()
                            .position(|&k| k == draft.kind)
                            .ok_or_else(|| ParseLibertyError::Syntax {
                                line,
                                message: format!("cell `{cell_name}` missing from CellKind::all()"),
                            })?;
                        library.set_cell(draft.kind, timing);
                        found[idx] = true;
                    }
                    1 => {}
                    _ => {
                        return Err(ParseLibertyError::Syntax {
                            line,
                            message: "unmatched `}`".into(),
                        })
                    }
                }
                depth = depth.saturating_sub(1);
            }
            Event::Attribute { name, value } => {
                // Structural invariant (any depth-2/3 open that is not a
                // cell/lut errors above), but surfaced as a parse error
                // rather than a panic so a malformed file can never take
                // the process down.
                fn in_cell(
                    c: &mut Option<CellDraft>,
                    line: usize,
                ) -> Result<&mut CellDraft, ParseLibertyError> {
                    c.as_mut().ok_or(ParseLibertyError::Syntax {
                        line,
                        message: "attribute outside a cell".into(),
                    })
                }
                fn in_lut(
                    l: &mut Option<(usize, String, LutDraft)>,
                    line: usize,
                ) -> Result<&mut LutDraft, ParseLibertyError> {
                    l.as_mut()
                        .map(|l| &mut l.2)
                        .ok_or(ParseLibertyError::Syntax {
                            line,
                            message: "attribute outside a table".into(),
                        })
                }
                match (depth, name.as_str()) {
                    (1, "input_slew") => library.input_slew_ps = parse_f32(line, &name, &value)?,
                    (1, "output_load") => library.output_load_ff = parse_f32(line, &name, &value)?,
                    (1, "wire_res") => library.wire_res_ps_per_ff = parse_f32(line, &name, &value)?,
                    (2, "input_cap") => {
                        in_cell(&mut cell, line)?.input_cap = Some(parse_f32(line, &name, &value)?)
                    }
                    (2, "clk_to_q") => {
                        in_cell(&mut cell, line)?.clk_to_q = Some(parse_f32(line, &name, &value)?)
                    }
                    (2, "setup") => {
                        in_cell(&mut cell, line)?.setup = Some(parse_f32(line, &name, &value)?)
                    }
                    (3, "slew_axis") => {
                        in_lut(&mut lut, line)?.slew_axis = Some(parse_list(line, &name, &value)?)
                    }
                    (3, "load_axis") => {
                        in_lut(&mut lut, line)?.load_axis = Some(parse_list(line, &name, &value)?)
                    }
                    (3, "values") => {
                        in_lut(&mut lut, line)?.values = Some(parse_list(line, &name, &value)?)
                    }
                    _ => {
                        return Err(ParseLibertyError::Syntax {
                            line,
                            message: format!("unexpected attribute `{name}` at depth {depth}"),
                        })
                    }
                }
            }
        }
    }

    let missing = found.iter().filter(|&&f| !f).count();
    if missing > 0 {
        return Err(ParseLibertyError::MissingCells { missing });
    }
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_typical_library() {
        let lib = CellLibrary::typical();
        let text = write_liberty(&lib, "typical");
        let back = parse_liberty(&text).expect("own output parses");
        assert_eq!(lib, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let lib = CellLibrary::typical();
        let mut text = String::from("// header comment\n/* block\ncomment */\n");
        text.push_str(&write_liberty(&lib, "t"));
        let back = parse_liberty(&text).expect("comments stripped");
        assert_eq!(lib, back);
    }

    #[test]
    fn overrides_scalar_attributes() {
        let lib = CellLibrary::typical();
        let text = write_liberty(&lib, "t").replace("input_slew : 20;", "input_slew : 35.5;");
        let back = parse_liberty(&text).expect("parses");
        assert_eq!(back.input_slew_ps, 35.5);
    }

    #[test]
    fn unknown_cell_rejected() {
        let text = "library (t) {\n  cell (FROB) {\n  }\n}\n";
        assert!(matches!(
            parse_liberty(text),
            Err(ParseLibertyError::UnknownCell { .. })
        ));
    }

    #[test]
    fn missing_table_rejected() {
        let lib = CellLibrary::typical();
        // Remove one lut group from INV by renaming it to a second
        // delay_rise (leaving delay_fall missing).
        let text = write_liberty(&lib, "t").replacen("lut (delay_fall)", "lut (delay_rise)", 1);
        assert!(matches!(
            parse_liberty(&text),
            Err(ParseLibertyError::MissingTable { .. })
        ));
    }

    #[test]
    fn bad_value_count_rejected() {
        let text = r#"library (t) {
  cell (INV) {
    lut (delay_rise) {
      slew_axis : "1, 2";
      load_axis : "1";
      values : "1, 2, 3";
    }
  }
}
"#;
        match parse_liberty(text) {
            Err(ParseLibertyError::Syntax { message, .. }) => {
                assert!(message.contains("3 values"), "{message}");
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_library_rejected() {
        let lib = CellLibrary::typical();
        let full = write_liberty(&lib, "t");
        // Drop the last cell block entirely.
        let cut = full.rfind("  cell (").expect("has cells");
        let truncated = format!("{}}}\n", &full[..cut]);
        assert!(matches!(
            parse_liberty(&truncated),
            Err(ParseLibertyError::MissingCells { missing: 1 })
        ));
    }

    #[test]
    fn syntax_error_reports_line() {
        let text = "library (t) {\n  what is this\n}\n";
        match parse_liberty(text) {
            Err(ParseLibertyError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_cleanly() {
        let e = ParseLibertyError::MissingTable {
            cell: "INV".into(),
            table: "slew_rise".into(),
        };
        assert!(e.to_string().contains("INV"));
        assert!(e.to_string().contains("slew_rise"));
    }
}
