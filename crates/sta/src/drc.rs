//! Electrical design-rule checks.
//!
//! Alongside setup/hold slacks, STA signoff reports design-rule
//! violations: transitions slower than `max_transition` (degraded noise
//! margins, unreliable downstream delays) and nets loaded beyond
//! `max_capacitance` (drive strength exceeded). Both checks read state the
//! analysis already computed, so they are cheap post-passes.

use crate::analysis::{Mode, TimingData, Tr};
use crate::graph::{NodeId, TimingGraph};
use crate::netlist::Netlist;
use std::fmt;

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct DrcViolation {
    /// Where (node for slew, driving gate's output node for cap).
    pub node: NodeId,
    /// Human-readable location.
    pub location: String,
    /// The measured value (ps for slew, fF for cap).
    pub actual: f32,
    /// The limit it exceeds.
    pub limit: f32,
}

impl fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {:>9.1} exceeds limit {:>9.1}",
            self.location, self.actual, self.limit
        )
    }
}

/// A design-rule report: slew and capacitance violations, worst first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrcReport {
    /// Nodes whose worst-case (late) transition exceeds `max_transition`.
    pub slew_violations: Vec<DrcViolation>,
    /// Gates whose output load exceeds `max_capacitance`.
    pub cap_violations: Vec<DrcViolation>,
}

impl DrcReport {
    /// Whether the design is clean.
    pub fn is_clean(&self) -> bool {
        self.slew_violations.is_empty() && self.cap_violations.is_empty()
    }

    /// Total number of violations.
    pub fn num_violations(&self) -> usize {
        self.slew_violations.len() + self.cap_violations.len()
    }
}

impl fmt::Display for DrcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} slew violations, {} capacitance violations",
            self.slew_violations.len(),
            self.cap_violations.len()
        )?;
        for v in self.slew_violations.iter().chain(&self.cap_violations) {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Check every node's late-mode slew against `max_transition_ps` and every
/// gate's output load against `max_capacitance_ff`. Run after an update
/// has propagated slews.
pub fn check_design_rules(
    graph: &TimingGraph,
    netlist: &Netlist,
    data: &TimingData,
    max_transition_ps: f32,
    max_capacitance_ff: f32,
) -> DrcReport {
    let mut report = DrcReport::default();

    for v in 0..graph.num_nodes() as u32 {
        let node = NodeId(v);
        let slew = data
            .slew(node, Tr::Rise, Mode::Late)
            .max(data.slew(node, Tr::Fall, Mode::Late));
        if slew > max_transition_ps {
            report.slew_violations.push(DrcViolation {
                node,
                location: location_of(graph, netlist, node),
                actual: slew,
                limit: max_transition_ps,
            });
        }
    }
    for g in 0..netlist.num_gates() as u32 {
        let load = data.gate_load(g);
        if load > max_capacitance_ff {
            let node = graph.gate_output_node(crate::GateId(g));
            report.cap_violations.push(DrcViolation {
                node,
                location: location_of(graph, netlist, node),
                actual: load,
                limit: max_capacitance_ff,
            });
        }
    }

    report
        .slew_violations
        .sort_by(|a, b| b.actual.total_cmp(&a.actual));
    report
        .cap_violations
        .sort_by(|a, b| b.actual.total_cmp(&a.actual));
    report
}

fn location_of(graph: &TimingGraph, netlist: &Netlist, v: NodeId) -> String {
    use crate::graph::NodeKind;
    match graph.node_kind(v) {
        NodeKind::PrimaryInput(p) => netlist.input_names()[p as usize].clone(),
        NodeKind::PrimaryOutput(p) => netlist.output_names()[p as usize].clone(),
        NodeKind::GateInput(g, pin) => format!("{}.{}", netlist.gates()[g as usize].name, pin),
        NodeKind::GateOutput(g) => format!("{}.out", netlist.gates()[g as usize].name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{CellKind, CellLibrary};
    use crate::netlist::NetlistBuilder;
    use crate::timer::Timer;

    /// One inverter fanning out to `fanout` sinks: heavy load, slow slew.
    fn fanout_timer(fanout: usize) -> Timer {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let driver = nb.add_gate("drv", CellKind::Inv);
        nb.connect_to_gate(a, driver, 0).expect("valid");
        for i in 0..fanout {
            let g = nb.add_gate(format!("sink{i}"), CellKind::Inv);
            nb.connect_gates(driver, g, 0).expect("valid");
            let y = nb.add_primary_output(format!("y{i}"));
            nb.connect_to_output(g, y).expect("valid");
        }
        let mut timer = Timer::new(nb.build().expect("valid"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        timer
    }

    #[test]
    fn clean_design_reports_nothing() {
        let timer = fanout_timer(2);
        let report = check_design_rules(
            timer.graph(),
            timer.netlist(),
            timer.data(),
            10_000.0,
            10_000.0,
        );
        assert!(report.is_clean());
        assert_eq!(report.num_violations(), 0);
    }

    #[test]
    fn heavy_fanout_violates_cap_limit() {
        let timer = fanout_timer(40);
        let report =
            check_design_rules(timer.graph(), timer.netlist(), timer.data(), 10_000.0, 10.0);
        assert!(!report.cap_violations.is_empty());
        assert_eq!(report.cap_violations[0].location, "drv.out");
        assert!(report.cap_violations[0].actual > 10.0);
    }

    #[test]
    fn slow_transitions_violate_slew_limit() {
        let timer = fanout_timer(40);
        // The heavily loaded driver produces a slew far above a tight limit.
        let report = check_design_rules(timer.graph(), timer.netlist(), timer.data(), 30.0, 1e9);
        assert!(!report.slew_violations.is_empty());
        // Violations are sorted worst first.
        for w in report.slew_violations.windows(2) {
            assert!(w[0].actual >= w[1].actual);
        }
    }

    #[test]
    fn display_counts_and_lists() {
        let timer = fanout_timer(40);
        let report = check_design_rules(timer.graph(), timer.netlist(), timer.data(), 30.0, 10.0);
        let s = report.to_string();
        assert!(s.contains("slew violations"));
        assert!(s.contains("drv.out"));
        assert!(s.contains("exceeds limit"));
    }
}
