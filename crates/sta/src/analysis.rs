//! Graph-based analysis: forward (slew/arrival) and backward (required
//! time) propagation.
//!
//! Each node-level propagation step is one *task* of the `update_timing`
//! TDG. The arithmetic is real NLDM table interpolation over rise/fall ×
//! early/late corners, so the tasks land in the granularity regime the
//! paper reports for OpenTimer.

use crate::atomic_f32::AtomicF32;
use crate::graph::{ArcKind, NodeId, NodeKind, TimingGraph};
use crate::library::{CellLibrary, TimingSense};
use crate::netlist::Netlist;

/// Signal transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tr {
    /// Rising edge.
    Rise = 0,
    /// Falling edge.
    Fall = 1,
}

/// Analysis mode (split corner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Early / hold analysis (min).
    Early = 0,
    /// Late / setup analysis (max).
    Late = 1,
}

const TRS: [Tr; 2] = [Tr::Rise, Tr::Fall];
const MODES: [Mode; 2] = [Mode::Early, Mode::Late];

/// Flat index of a `(transition, mode)` corner in per-node/per-arc arrays.
#[inline]
fn corner(tr: Tr, mode: Mode) -> usize {
    (tr as usize) * 2 + (mode as usize)
}

/// Mutable per-node / per-arc timing state, shared across propagation tasks.
///
/// Values are stored in [`AtomicF32`] cells: every cell is written by
/// exactly one task and read only by tasks that depend on it, with the
/// scheduler's dependency countdown providing the happens-before edge.
#[derive(Debug)]
pub struct TimingData {
    /// Clock period for endpoint constraints (ps).
    pub clock_period_ps: f32,
    /// Per node × corner: transition time (ps).
    slew: Vec<AtomicF32>,
    /// Per node × corner: arrival time (ps).
    arrival: Vec<AtomicF32>,
    /// Per node × corner: required arrival time (ps).
    required: Vec<AtomicF32>,
    /// Per arc × (output transition, mode): cached delay, filled during
    /// forward propagation of the arc's `to` node, consumed by backward
    /// propagation of the arc's `from` node.
    arc_delay: Vec<AtomicF32>,
    /// Per gate: drive-strength multiplier (mirrors `Gate::drive`; kept here
    /// so repowering does not need `&mut Netlist`).
    drive: Vec<AtomicF32>,
    /// Per gate: capacitive load at the output pin (fF).
    gate_load: Vec<AtomicF32>,
    /// Per net: interconnect delay (ps).
    net_delay: Vec<AtomicF32>,
    /// Per primary input: external arrival offset (`set_input_delay`).
    input_delay: Vec<AtomicF32>,
    /// Per primary output: external required-time margin
    /// (`set_output_delay`); subtracted from the clock period.
    output_delay: Vec<AtomicF32>,
}

impl TimingData {
    /// Allocate state for `graph` over `netlist`, with every timing value
    /// cleared and electrical state (loads, net delays) computed from the
    /// netlist.
    pub fn new(graph: &TimingGraph, netlist: &Netlist, library: &CellLibrary) -> Self {
        let n = graph.num_nodes();
        let data = TimingData {
            clock_period_ps: 1_000.0,
            slew: (0..n * 4).map(|_| AtomicF32::new(0.0)).collect(),
            arrival: (0..n * 4).map(|_| AtomicF32::new(0.0)).collect(),
            required: (0..n * 4).map(|_| AtomicF32::new(0.0)).collect(),
            arc_delay: (0..graph.num_arcs() * 4)
                .map(|_| AtomicF32::new(0.0))
                .collect(),
            drive: netlist
                .gates()
                .iter()
                .map(|g| AtomicF32::new(g.drive))
                .collect(),
            gate_load: (0..netlist.num_gates())
                .map(|_| AtomicF32::new(0.0))
                .collect(),
            net_delay: (0..netlist.num_nets())
                .map(|_| AtomicF32::new(0.0))
                .collect(),
            input_delay: (0..netlist.num_inputs())
                .map(|_| AtomicF32::new(0.0))
                .collect(),
            output_delay: (0..netlist.num_outputs())
                .map(|_| AtomicF32::new(0.0))
                .collect(),
        };
        for net in 0..netlist.num_nets() {
            data.recompute_net(net as u32, netlist, library);
        }
        data
    }

    /// Recompute the total capacitance, interconnect delay, and (if the
    /// driver is a gate) driver output load of net `net`. Called at
    /// construction and by design modifiers.
    pub fn recompute_net(&self, net: u32, netlist: &Netlist, library: &CellLibrary) {
        use crate::netlist::PinRef;
        let n = &netlist.nets()[net as usize];
        let mut cap = n.wire_cap_ff;
        for &sink in &n.sinks {
            cap += match sink {
                PinRef::GateInput(g, _) => {
                    let gate = &netlist.gates()[g.index()];
                    library.input_cap(gate.cell) * self.drive(g.0)
                }
                PinRef::PrimaryOutput(_) => library.output_load_ff,
                _ => 0.0,
            };
        }
        self.net_delay[net as usize].store(library.wire_res_ps_per_ff * cap);
        if let PinRef::GateOutput(g) = n.driver {
            self.gate_load[g.index()].store(cap);
        }
    }

    /// Drive multiplier of gate `g`.
    #[inline]
    pub fn drive(&self, g: u32) -> f32 {
        self.drive[g as usize].load()
    }

    /// Set the drive multiplier of gate `g` (used by the repower modifier).
    #[inline]
    pub fn set_drive(&self, g: u32, drive: f32) {
        self.drive[g as usize].store(drive);
    }

    /// Output load of gate `g` (fF).
    #[inline]
    pub fn gate_load(&self, g: u32) -> f32 {
        self.gate_load[g as usize].load()
    }

    /// Interconnect delay of net `net` (ps).
    #[inline]
    pub fn net_delay(&self, net: u32) -> f32 {
        self.net_delay[net as usize].load()
    }

    /// External arrival offset of primary input `p` (ps).
    #[inline]
    pub fn input_delay(&self, p: u32) -> f32 {
        self.input_delay[p as usize].load()
    }

    /// Set the external arrival offset of primary input `p` (ps).
    #[inline]
    pub fn set_input_delay(&self, p: u32, delay_ps: f32) {
        self.input_delay[p as usize].store(delay_ps);
    }

    /// External required-time margin of primary output `p` (ps).
    #[inline]
    pub fn output_delay(&self, p: u32) -> f32 {
        self.output_delay[p as usize].load()
    }

    /// Set the external required-time margin of primary output `p` (ps).
    #[inline]
    pub fn set_output_delay(&self, p: u32, delay_ps: f32) {
        self.output_delay[p as usize].store(delay_ps);
    }

    /// Arrival time at `v` for `(tr, mode)` (ps).
    #[inline]
    pub fn arrival(&self, v: NodeId, tr: Tr, mode: Mode) -> f32 {
        self.arrival[v.index() * 4 + corner(tr, mode)].load()
    }

    /// Slew at `v` for `(tr, mode)` (ps).
    #[inline]
    pub fn slew(&self, v: NodeId, tr: Tr, mode: Mode) -> f32 {
        self.slew[v.index() * 4 + corner(tr, mode)].load()
    }

    /// Required arrival time at `v` for `(tr, mode)` (ps).
    #[inline]
    pub fn required(&self, v: NodeId, tr: Tr, mode: Mode) -> f32 {
        self.required[v.index() * 4 + corner(tr, mode)].load()
    }

    /// Setup (late-mode) slack at `v`: worst over transitions of
    /// `required − arrival`. NaN when any contributing value is unknown —
    /// `f32::min` would silently discard the NaN, and a degraded run must
    /// report *unknown*, not a fabricated slack.
    pub fn slack_late(&self, v: NodeId) -> f32 {
        TRS.iter()
            .map(|&tr| self.required(v, tr, Mode::Late) - self.arrival(v, tr, Mode::Late))
            .fold(f32::INFINITY, nan_preserving_min)
    }

    /// Hold (early-mode) slack at `v`: worst over transitions of
    /// `arrival − required`. Positive means the earliest edge arrives
    /// safely after the hold window. NaN when any contributing value is
    /// unknown (see [`slack_late`](TimingData::slack_late)).
    pub fn slack_early(&self, v: NodeId) -> f32 {
        TRS.iter()
            .map(|&tr| self.arrival(v, tr, Mode::Early) - self.required(v, tr, Mode::Early))
            .fold(f32::INFINITY, nan_preserving_min)
    }

    /// Mark the forward-propagated state of `v` (arrival and slew, all
    /// corners) as *unknown* by storing NaN. The recovering update uses
    /// this for nodes inside a poisoned cone: an explicit NaN is auditable,
    /// a stale-but-plausible number is silently wrong. Any slack computed
    /// through an unknown value is NaN, which endpoint reports surface.
    pub fn mark_arrival_unknown(&self, v: NodeId) {
        for &tr in &TRS {
            for &mode in &MODES {
                self.set_arrival(v, tr, mode, f32::NAN);
                self.set_slew(v, tr, mode, f32::NAN);
            }
        }
    }

    /// Mark the required times of `v` (all corners) as unknown (NaN); the
    /// backward-cone counterpart of
    /// [`mark_arrival_unknown`](TimingData::mark_arrival_unknown).
    pub fn mark_required_unknown(&self, v: NodeId) {
        for &tr in &TRS {
            for &mode in &MODES {
                self.set_required(v, tr, mode, f32::NAN);
            }
        }
    }

    /// Whether any timing value at `v` is marked unknown (NaN).
    pub fn is_unknown(&self, v: NodeId) -> bool {
        TRS.iter().any(|&tr| {
            MODES.iter().any(|&mode| {
                self.arrival(v, tr, mode).is_nan() || self.required(v, tr, mode).is_nan()
            })
        })
    }

    #[inline]
    fn set_arrival(&self, v: NodeId, tr: Tr, mode: Mode, x: f32) {
        self.arrival[v.index() * 4 + corner(tr, mode)].store(x);
    }

    #[inline]
    fn set_slew(&self, v: NodeId, tr: Tr, mode: Mode, x: f32) {
        self.slew[v.index() * 4 + corner(tr, mode)].store(x);
    }

    #[inline]
    fn set_required(&self, v: NodeId, tr: Tr, mode: Mode, x: f32) {
        self.required[v.index() * 4 + corner(tr, mode)].store(x);
    }

    /// Late-mode cached delay of arc `a` at output transition `tr`,
    /// filled by the last forward propagation. Used by path tracing.
    #[inline]
    pub fn arc_delay_public(&self, a: u32, tr: Tr) -> f32 {
        self.arc_delay_of(a, tr, Mode::Late)
    }

    #[inline]
    fn arc_delay_of(&self, a: u32, tr: Tr, mode: Mode) -> f32 {
        self.arc_delay[a as usize * 4 + corner(tr, mode)].load()
    }

    #[inline]
    fn set_arc_delay(&self, a: u32, tr: Tr, mode: Mode, x: f32) {
        self.arc_delay[a as usize * 4 + corner(tr, mode)].store(x);
    }

    /// Raw forward-propagated state of `v` — the four arrival corners then
    /// the four slew corners, as `f32` bit patterns. Boundary exchange
    /// between shard processes ships bit patterns, never rounded floats,
    /// so a value that crossed a process boundary is indistinguishable
    /// from one computed locally.
    #[inline]
    pub fn fprop_bits(&self, v: NodeId) -> [u32; 8] {
        let base = v.index() * 4;
        std::array::from_fn(|i| {
            if i < 4 {
                self.arrival[base + i].load_bits()
            } else {
                self.slew[base + i - 4].load_bits()
            }
        })
    }

    /// Store raw forward-propagated state of `v`; the inverse of
    /// [`fprop_bits`](TimingData::fprop_bits).
    #[inline]
    pub fn set_fprop_bits(&self, v: NodeId, bits: [u32; 8]) {
        let base = v.index() * 4;
        for i in 0..4 {
            self.arrival[base + i].store_bits(bits[i]);
            self.slew[base + i].store_bits(bits[i + 4]);
        }
    }

    /// Raw required-time corners of `v` as `f32` bit patterns.
    #[inline]
    pub fn required_bits(&self, v: NodeId) -> [u32; 4] {
        let base = v.index() * 4;
        std::array::from_fn(|i| self.required[base + i].load_bits())
    }

    /// Store raw required-time corners of `v`; the inverse of
    /// [`required_bits`](TimingData::required_bits).
    #[inline]
    pub fn set_required_bits(&self, v: NodeId, bits: [u32; 4]) {
        let base = v.index() * 4;
        for (i, &b) in bits.iter().enumerate() {
            self.required[base + i].store_bits(b);
        }
    }

    /// Raw cached delay corners of arc `a` as `f32` bit patterns. The
    /// backward pass of a node reads the cached delays of its *fanout*
    /// arcs (filled by the forward pass of each arc's `to` node), so a
    /// shard boundary that cuts between `fprop(to)` and `bprop(from)`
    /// must ship these alongside the node values.
    #[inline]
    pub fn arc_delay_bits(&self, a: u32) -> [u32; 4] {
        let base = a as usize * 4;
        std::array::from_fn(|i| self.arc_delay[base + i].load_bits())
    }

    /// Store raw cached delay corners of arc `a`; the inverse of
    /// [`arc_delay_bits`](TimingData::arc_delay_bits).
    #[inline]
    pub fn set_arc_delay_bits(&self, a: u32, bits: [u32; 4]) {
        let base = a as usize * 4;
        for (i, &b) in bits.iter().enumerate() {
            self.arc_delay[base + i].store_bits(b);
        }
    }
}

/// A bit-exact snapshot of every mutable timing value — the arrays a
/// checkpoint must persist so a resumed run is indistinguishable from an
/// uninterrupted one. Values are stored as raw `f32` bit patterns
/// (`to_bits`), so NaN payloads, signed zeros, and infinities all round
/// trip exactly and two snapshots compare equal iff the timing state is
/// bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// `clock_period_ps` as bits.
    pub clock_period_bits: u32,
    /// Per node × corner slews.
    pub slew: Vec<u32>,
    /// Per node × corner arrivals.
    pub arrival: Vec<u32>,
    /// Per node × corner required times.
    pub required: Vec<u32>,
    /// Per arc × corner cached delays.
    pub arc_delay: Vec<u32>,
    /// Per gate drive multipliers.
    pub drive: Vec<u32>,
    /// Per gate output loads.
    pub gate_load: Vec<u32>,
    /// Per net interconnect delays.
    pub net_delay: Vec<u32>,
    /// Per primary input external arrival offsets.
    pub input_delay: Vec<u32>,
    /// Per primary output external required-time margins.
    pub output_delay: Vec<u32>,
}

/// A [`TimingSnapshot`] was taken against a design of a different shape
/// than the one it is being restored into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMismatch {
    /// Which array disagreed.
    pub field: &'static str,
    /// Length the live timing state expects.
    pub expected: usize,
    /// Length the snapshot carries.
    pub found: usize,
}

impl std::fmt::Display for SnapshotMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "timing snapshot shape mismatch: {} holds {} entries but the design needs {}",
            self.field, self.found, self.expected
        )
    }
}

impl std::error::Error for SnapshotMismatch {}

fn bits_of(cells: &[AtomicF32]) -> Vec<u32> {
    cells.iter().map(|c| c.load_bits()).collect()
}

fn restore_bits(
    cells: &[AtomicF32],
    bits: &[u32],
    field: &'static str,
) -> Result<(), SnapshotMismatch> {
    if cells.len() != bits.len() {
        return Err(SnapshotMismatch {
            field,
            expected: cells.len(),
            found: bits.len(),
        });
    }
    for (c, &b) in cells.iter().zip(bits) {
        c.store_bits(b);
    }
    Ok(())
}

impl TimingData {
    /// Capture every mutable timing value bit-exactly.
    pub fn snapshot(&self) -> TimingSnapshot {
        TimingSnapshot {
            clock_period_bits: self.clock_period_ps.to_bits(),
            slew: bits_of(&self.slew),
            arrival: bits_of(&self.arrival),
            required: bits_of(&self.required),
            arc_delay: bits_of(&self.arc_delay),
            drive: bits_of(&self.drive),
            gate_load: bits_of(&self.gate_load),
            net_delay: bits_of(&self.net_delay),
            input_delay: bits_of(&self.input_delay),
            output_delay: bits_of(&self.output_delay),
        }
    }

    /// Overwrite every mutable timing value from `snap`, bit-exactly. All
    /// array shapes are checked before the first store, so a mismatched
    /// snapshot leaves the state untouched.
    ///
    /// # Errors
    ///
    /// [`SnapshotMismatch`] when any array length disagrees with the
    /// design this state was allocated for.
    pub fn restore(&mut self, snap: &TimingSnapshot) -> Result<(), SnapshotMismatch> {
        let shape = |cells: &[AtomicF32], bits: &[u32], field: &'static str| {
            if cells.len() != bits.len() {
                Err(SnapshotMismatch {
                    field,
                    expected: cells.len(),
                    found: bits.len(),
                })
            } else {
                Ok(())
            }
        };
        shape(&self.slew, &snap.slew, "slew")?;
        shape(&self.arrival, &snap.arrival, "arrival")?;
        shape(&self.required, &snap.required, "required")?;
        shape(&self.arc_delay, &snap.arc_delay, "arc_delay")?;
        shape(&self.drive, &snap.drive, "drive")?;
        shape(&self.gate_load, &snap.gate_load, "gate_load")?;
        shape(&self.net_delay, &snap.net_delay, "net_delay")?;
        shape(&self.input_delay, &snap.input_delay, "input_delay")?;
        shape(&self.output_delay, &snap.output_delay, "output_delay")?;

        self.clock_period_ps = f32::from_bits(snap.clock_period_bits);
        restore_bits(&self.slew, &snap.slew, "slew")?;
        restore_bits(&self.arrival, &snap.arrival, "arrival")?;
        restore_bits(&self.required, &snap.required, "required")?;
        restore_bits(&self.arc_delay, &snap.arc_delay, "arc_delay")?;
        restore_bits(&self.drive, &snap.drive, "drive")?;
        restore_bits(&self.gate_load, &snap.gate_load, "gate_load")?;
        restore_bits(&self.net_delay, &snap.net_delay, "net_delay")?;
        restore_bits(&self.input_delay, &snap.input_delay, "input_delay")?;
        restore_bits(&self.output_delay, &snap.output_delay, "output_delay")?;
        Ok(())
    }
}

/// The node-level propagation engine: borrowed views of the static design
/// plus the shared [`TimingData`].
#[derive(Debug, Clone, Copy)]
pub struct TimingPropagator<'a> {
    /// The pin-level graph.
    pub graph: &'a TimingGraph,
    /// The design.
    pub netlist: &'a Netlist,
    /// The cell library.
    pub library: &'a CellLibrary,
    /// The shared timing state.
    pub data: &'a TimingData,
}

impl<'a> TimingPropagator<'a> {
    /// Forward-propagate slew and arrival into `v` (the paper's "delay
    /// calculation" task): evaluates the delay of every fan-in arc at the
    /// current input slews and loads, caches the arc delays for backward
    /// propagation, and merges arrivals (max for late, min for early).
    ///
    /// Runs on the flat [`ArcSoa`](crate::graph::ArcSoa) columns: per arc
    /// the loop loads a few dense u32/u8 entries instead of chasing
    /// `TimingArcRef` → `Gate` (with its embedded name `String`) → a
    /// library scan. The arithmetic — table lookups, merge order, corner
    /// indexing — is unchanged, so results are bit-identical to
    /// [`fprop_reference`](Self::fprop_reference).
    pub fn fprop(&self, v: NodeId) {
        let d = self.data;
        let fanin = self.graph.fanin(v);

        if fanin.is_empty() {
            // Path startpoint: primary input or sequential output.
            let (arr, slew) = match self.graph.node_kind(v) {
                NodeKind::GateOutput(g) => {
                    let gate = &self.netlist.gates()[g as usize];
                    debug_assert!(gate.cell.is_sequential());
                    let cell = self.library.cell(gate.cell);
                    (cell.clk_to_q_ps / d.drive(g), self.library.input_slew_ps)
                }
                NodeKind::PrimaryInput(p) => (d.input_delay(p), self.library.input_slew_ps),
                _ => (0.0, self.library.input_slew_ps),
            };
            for &tr in &TRS {
                for &mode in &MODES {
                    d.set_arrival(v, tr, mode, arr);
                    d.set_slew(v, tr, mode, slew);
                }
            }
            return;
        }

        let soa = self.graph.arc_soa(self.netlist);
        let mut arr = [[f32::INFINITY, f32::NEG_INFINITY]; 2]; // [tr][mode]
        let mut slw = [[f32::INFINITY, f32::NEG_INFINITY]; 2];

        for &a in fanin {
            let ai = a as usize;
            let u = NodeId(soa.from[ai]);
            if soa.is_net(ai) {
                let delay = d.net_delay(soa.payload[ai]);
                for &tr in &TRS {
                    for &mode in &MODES {
                        let at = d.arrival(u, tr, mode) + delay;
                        let su = d.slew(u, tr, mode);
                        // Mild interconnect slew degradation.
                        let sv = su + 0.1 * delay;
                        d.set_arc_delay(a, tr, mode, delay);
                        merge(&mut arr[tr as usize][mode as usize], at, mode);
                        merge(&mut slw[tr as usize][mode as usize], sv, mode);
                    }
                }
            } else {
                let gate = soa.payload[ai];
                let cell = self.library.cell_by_index(soa.cell_idx[ai] as usize);
                let sense = soa.sense_of(ai);
                let drive = d.drive(gate);
                let load = d.gate_load(gate);
                for &tr_out in &TRS {
                    let (dtab, stab) = match tr_out {
                        Tr::Rise => (&cell.tables.delay_rise, &cell.tables.slew_rise),
                        Tr::Fall => (&cell.tables.delay_fall, &cell.tables.slew_fall),
                    };
                    // The load is fixed for the whole arc: resolve each
                    // table's load-axis bracket once instead of inside
                    // every (mode, tr_in) lookup. `lookup_at` is
                    // bit-identical to `lookup` at the same load.
                    let dlb = dtab.load_bracket(load);
                    let slb = stab.load_bracket(load);
                    // Which input transitions can cause tr_out.
                    let ins: &[Tr] = match sense {
                        TimingSense::Positive => &[tr_out],
                        TimingSense::Negative => match tr_out {
                            Tr::Rise => &[Tr::Fall],
                            Tr::Fall => &[Tr::Rise],
                        },
                        TimingSense::NonUnate => &TRS,
                    };
                    for &mode in &MODES {
                        let mut best_at = pick_init(mode);
                        let mut best_sv = pick_init(mode);
                        let mut best_delay = pick_init(mode);
                        for &tr_in in ins {
                            let si = d.slew(u, tr_in, mode);
                            let delay = dtab.lookup_at(si, dlb) / drive;
                            let sv = stab.lookup_at(si, slb) / drive;
                            let at = d.arrival(u, tr_in, mode) + delay;
                            merge(&mut best_at, at, mode);
                            merge(&mut best_sv, sv, mode);
                            merge(&mut best_delay, delay, mode);
                        }
                        d.set_arc_delay(a, tr_out, mode, best_delay);
                        merge(&mut arr[tr_out as usize][mode as usize], best_at, mode);
                        merge(&mut slw[tr_out as usize][mode as usize], best_sv, mode);
                    }
                }
            }
        }

        for &tr in &TRS {
            for &mode in &MODES {
                d.set_arrival(v, tr, mode, arr[tr as usize][mode as usize]);
                d.set_slew(v, tr, mode, slw[tr as usize][mode as usize]);
            }
        }
    }

    /// The legacy AoS forward propagation, kept verbatim as the reference
    /// for the differential layout test (`tests/csr_layout.rs`): the SoA
    /// hot path must reproduce its stores bit for bit.
    #[doc(hidden)]
    pub fn fprop_reference(&self, v: NodeId) {
        let d = self.data;
        let fanin = self.graph.fanin(v);

        if fanin.is_empty() {
            // Path startpoint: primary input or sequential output.
            let (arr, slew) = match self.graph.node_kind(v) {
                NodeKind::GateOutput(g) => {
                    let gate = &self.netlist.gates()[g as usize];
                    debug_assert!(gate.cell.is_sequential());
                    let cell = self.library.cell(gate.cell);
                    (cell.clk_to_q_ps / d.drive(g), self.library.input_slew_ps)
                }
                NodeKind::PrimaryInput(p) => (d.input_delay(p), self.library.input_slew_ps),
                _ => (0.0, self.library.input_slew_ps),
            };
            for &tr in &TRS {
                for &mode in &MODES {
                    d.set_arrival(v, tr, mode, arr);
                    d.set_slew(v, tr, mode, slew);
                }
            }
            return;
        }

        let mut arr = [[f32::INFINITY, f32::NEG_INFINITY]; 2]; // [tr][mode]
        let mut slw = [[f32::INFINITY, f32::NEG_INFINITY]; 2];

        for &a in fanin {
            let arc = self.graph.arc(a);
            let u = arc.from;
            match arc.kind {
                ArcKind::Net { net } => {
                    let delay = d.net_delay(net);
                    for &tr in &TRS {
                        for &mode in &MODES {
                            let at = d.arrival(u, tr, mode) + delay;
                            let su = d.slew(u, tr, mode);
                            // Mild interconnect slew degradation.
                            let sv = su + 0.1 * delay;
                            d.set_arc_delay(a, tr, mode, delay);
                            merge(&mut arr[tr as usize][mode as usize], at, mode);
                            merge(&mut slw[tr as usize][mode as usize], sv, mode);
                        }
                    }
                }
                ArcKind::Cell { gate } => {
                    let g = &self.netlist.gates()[gate as usize];
                    let cell = self.library.cell(g.cell);
                    let drive = d.drive(gate);
                    let load = d.gate_load(gate);
                    for &tr_out in &TRS {
                        let (dtab, stab) = match tr_out {
                            Tr::Rise => (&cell.tables.delay_rise, &cell.tables.slew_rise),
                            Tr::Fall => (&cell.tables.delay_fall, &cell.tables.slew_fall),
                        };
                        for &mode in &MODES {
                            // Which input transitions can cause tr_out.
                            let ins: &[Tr] = match g.cell.sense() {
                                TimingSense::Positive => &[tr_out],
                                TimingSense::Negative => match tr_out {
                                    Tr::Rise => &[Tr::Fall],
                                    Tr::Fall => &[Tr::Rise],
                                },
                                TimingSense::NonUnate => &TRS,
                            };
                            let mut best_at = pick_init(mode);
                            let mut best_sv = pick_init(mode);
                            let mut best_delay = pick_init(mode);
                            for &tr_in in ins {
                                let si = d.slew(u, tr_in, mode);
                                let delay = dtab.lookup(si, load) / drive;
                                let sv = stab.lookup(si, load) / drive;
                                let at = d.arrival(u, tr_in, mode) + delay;
                                merge(&mut best_at, at, mode);
                                merge(&mut best_sv, sv, mode);
                                merge(&mut best_delay, delay, mode);
                            }
                            d.set_arc_delay(a, tr_out, mode, best_delay);
                            merge(&mut arr[tr_out as usize][mode as usize], best_at, mode);
                            merge(&mut slw[tr_out as usize][mode as usize], best_sv, mode);
                        }
                    }
                }
            }
        }

        for &tr in &TRS {
            for &mode in &MODES {
                d.set_arrival(v, tr, mode, arr[tr as usize][mode as usize]);
                d.set_slew(v, tr, mode, slw[tr as usize][mode as usize]);
            }
        }
    }

    /// Backward-propagate required arrival time into `v` (the paper's
    /// "required arrival time update" task). Endpoints take their
    /// constraint; interior nodes take the tightest requirement over
    /// fan-out arcs using the arc delays cached by [`fprop`](Self::fprop).
    ///
    /// Like [`fprop`](Self::fprop) this runs on the flat
    /// [`ArcSoa`](crate::graph::ArcSoa) columns and is bit-identical to
    /// [`bprop_reference`](Self::bprop_reference).
    pub fn bprop(&self, v: NodeId) {
        let d = self.data;

        if self.graph.is_endpoint(v) {
            let margin = match self.graph.node_kind(v) {
                NodeKind::GateInput(g, 0) => {
                    self.library
                        .cell(self.netlist.gates()[g as usize].cell)
                        .setup_ps
                }
                NodeKind::PrimaryOutput(p) => d.output_delay(p),
                _ => 0.0,
            };
            for &tr in &TRS {
                d.set_required(v, tr, Mode::Late, d.clock_period_ps - margin);
                d.set_required(v, tr, Mode::Early, 0.0);
            }
            return;
        }

        let fanout = self.graph.fanout(v);
        if fanout.is_empty() {
            // Dangling node: unconstrained.
            for &tr in &TRS {
                d.set_required(v, tr, Mode::Late, f32::INFINITY);
                d.set_required(v, tr, Mode::Early, f32::NEG_INFINITY);
            }
            return;
        }

        let soa = self.graph.arc_soa(self.netlist);
        // required_late(v, tr_in) = min over arcs/output transitions caused
        // by tr_in of (required_late(to, tr_out) - delay(a, tr_out)).
        let mut req = [[f32::NEG_INFINITY, f32::INFINITY]; 2]; // [tr][mode], early=max, late=min
        for &a in fanout {
            let ai = a as usize;
            let to = NodeId(soa.to[ai]);
            let sense = if soa.is_net(ai) {
                TimingSense::Positive
            } else {
                soa.sense_of(ai)
            };
            for &tr_in in &TRS {
                let outs: &[Tr] = match sense {
                    TimingSense::Positive => &[tr_in],
                    TimingSense::Negative => match tr_in {
                        Tr::Rise => &[Tr::Fall],
                        Tr::Fall => &[Tr::Rise],
                    },
                    TimingSense::NonUnate => &TRS,
                };
                for &tr_out in outs {
                    for &mode in &MODES {
                        let r = d.required(to, tr_out, mode) - d.arc_delay_of(a, tr_out, mode);
                        // Required times tighten in the opposite direction
                        // of arrivals: late takes min, early takes max.
                        match mode {
                            Mode::Late => {
                                let slot = &mut req[tr_in as usize][1];
                                *slot = slot.min(r);
                            }
                            Mode::Early => {
                                let slot = &mut req[tr_in as usize][0];
                                *slot = slot.max(r);
                            }
                        }
                    }
                }
            }
        }
        for &tr in &TRS {
            d.set_required(v, tr, Mode::Early, req[tr as usize][0]);
            d.set_required(v, tr, Mode::Late, req[tr as usize][1]);
        }
    }

    /// The legacy AoS backward propagation, kept verbatim as the reference
    /// for the differential layout test (`tests/csr_layout.rs`).
    #[doc(hidden)]
    pub fn bprop_reference(&self, v: NodeId) {
        let d = self.data;

        if self.graph.is_endpoint(v) {
            let margin = match self.graph.node_kind(v) {
                NodeKind::GateInput(g, 0) => {
                    self.library
                        .cell(self.netlist.gates()[g as usize].cell)
                        .setup_ps
                }
                NodeKind::PrimaryOutput(p) => d.output_delay(p),
                _ => 0.0,
            };
            for &tr in &TRS {
                d.set_required(v, tr, Mode::Late, d.clock_period_ps - margin);
                d.set_required(v, tr, Mode::Early, 0.0);
            }
            return;
        }

        let fanout = self.graph.fanout(v);
        if fanout.is_empty() {
            // Dangling node: unconstrained.
            for &tr in &TRS {
                d.set_required(v, tr, Mode::Late, f32::INFINITY);
                d.set_required(v, tr, Mode::Early, f32::NEG_INFINITY);
            }
            return;
        }

        // required_late(v, tr_in) = min over arcs/output transitions caused
        // by tr_in of (required_late(to, tr_out) - delay(a, tr_out)).
        let mut req = [[f32::NEG_INFINITY, f32::INFINITY]; 2]; // [tr][mode], early=max, late=min
        for &a in fanout {
            let arc = self.graph.arc(a);
            let to = arc.to;
            let sense = match arc.kind {
                ArcKind::Net { .. } => TimingSense::Positive,
                ArcKind::Cell { gate } => self.netlist.gates()[gate as usize].cell.sense(),
            };
            for &tr_in in &TRS {
                let outs: &[Tr] = match sense {
                    TimingSense::Positive => &[tr_in],
                    TimingSense::Negative => match tr_in {
                        Tr::Rise => &[Tr::Fall],
                        Tr::Fall => &[Tr::Rise],
                    },
                    TimingSense::NonUnate => &TRS,
                };
                for &tr_out in outs {
                    for &mode in &MODES {
                        let r = d.required(to, tr_out, mode) - d.arc_delay_of(a, tr_out, mode);
                        // Required times tighten in the opposite direction
                        // of arrivals: late takes min, early takes max.
                        match mode {
                            Mode::Late => {
                                let slot = &mut req[tr_in as usize][1];
                                *slot = slot.min(r);
                            }
                            Mode::Early => {
                                let slot = &mut req[tr_in as usize][0];
                                *slot = slot.max(r);
                            }
                        }
                    }
                }
            }
        }
        for &tr in &TRS {
            d.set_required(v, tr, Mode::Early, req[tr as usize][0]);
            d.set_required(v, tr, Mode::Late, req[tr as usize][1]);
        }
    }
}

/// `min` that propagates NaN instead of discarding it (IEEE `minNum`, and
/// hence `f32::min`, treats NaN as missing data; for slack folds NaN means
/// *unknown*, which must dominate).
#[inline]
fn nan_preserving_min(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else {
        a.min(b)
    }
}

/// Merge `x` into the running corner value: max for late, min for early.
#[inline]
fn merge(slot: &mut f32, x: f32, mode: Mode) {
    *slot = match mode {
        Mode::Early => slot.min(x),
        Mode::Late => slot.max(x),
    };
}

/// Identity element of the corner merge.
#[inline]
fn pick_init(mode: Mode) -> f32 {
    match mode {
        Mode::Early => f32::INFINITY,
        Mode::Late => f32::NEG_INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;
    use crate::netlist::NetlistBuilder;

    struct Fixture {
        netlist: Netlist,
        graph: TimingGraph,
        library: CellLibrary,
    }

    /// a -> INV(u1) -> INV(u2) -> y
    fn inv_chain() -> Fixture {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let g1 = nb.add_gate("u1", CellKind::Inv);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, g1, 0).expect("valid");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_to_output(g2, y).expect("valid");
        let library = CellLibrary::typical();
        let netlist = nb.build().expect("well-formed");
        let graph = TimingGraph::build(&netlist, &library).expect("acyclic");
        Fixture {
            netlist,
            graph,
            library,
        }
    }

    fn full_pass(f: &Fixture, data: &TimingData) {
        let prop = TimingPropagator {
            graph: &f.graph,
            netlist: &f.netlist,
            library: &f.library,
            data,
        };
        // Forward in a topological order of nodes, backward in reverse.
        let order = topo_nodes(&f.graph);
        for &v in &order {
            prop.fprop(NodeId(v));
        }
        for &v in order.iter().rev() {
            prop.bprop(NodeId(v));
        }
    }

    fn topo_nodes(g: &TimingGraph) -> Vec<u32> {
        let n = g.num_nodes();
        let mut indeg: Vec<u32> = (0..n)
            .map(|v| g.fanin(NodeId(v as u32)).len() as u32)
            .collect();
        let mut stack: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = stack.pop() {
            order.push(u);
            for &a in g.fanout(NodeId(u)) {
                let v = g.arc(a).to.0;
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    stack.push(v);
                }
            }
        }
        order
    }

    #[test]
    fn arrivals_increase_along_the_chain() {
        let f = inv_chain();
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);

        let u1_out = f.graph.gate_output_node(crate::GateId(0));
        let u2_out = f.graph.gate_output_node(crate::GateId(1));
        let po = NodeId(f.graph.endpoints()[0]);
        let a1 = data.arrival(u1_out, Tr::Rise, Mode::Late);
        let a2 = data.arrival(u2_out, Tr::Rise, Mode::Late);
        let a3 = data.arrival(po, Tr::Rise, Mode::Late);
        assert!(a1 > 0.0, "first stage has positive delay, got {a1}");
        assert!(a2 > a1, "arrival must grow: {a2} vs {a1}");
        assert!(a3 > a2);
    }

    #[test]
    fn early_is_never_later_than_late() {
        let f = inv_chain();
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        for v in 0..f.graph.num_nodes() as u32 {
            for &tr in &TRS {
                let e = data.arrival(NodeId(v), tr, Mode::Early);
                let l = data.arrival(NodeId(v), tr, Mode::Late);
                assert!(e <= l, "node {v}: early {e} > late {l}");
            }
        }
    }

    #[test]
    fn slack_is_required_minus_arrival() {
        let f = inv_chain();
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        let po = NodeId(f.graph.endpoints()[0]);
        let s = data.slack_late(po);
        let by_hand = TRS
            .iter()
            .map(|&tr| data.required(po, tr, Mode::Late) - data.arrival(po, tr, Mode::Late))
            .fold(f32::INFINITY, f32::min);
        assert_eq!(s, by_hand);
        // With a 1 ns clock and two inverters, slack must be positive.
        assert!(s > 0.0, "tiny chain meets 1 ns easily, slack {s}");
    }

    #[test]
    fn required_tightens_backwards() {
        // required at u1 output must be earlier (smaller) than at the PO:
        // upstream nodes have to arrive earlier to leave room for
        // downstream delay.
        let f = inv_chain();
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        let u1_out = f.graph.gate_output_node(crate::GateId(0));
        let po = NodeId(f.graph.endpoints()[0]);
        assert!(
            data.required(u1_out, Tr::Rise, Mode::Late) < data.required(po, Tr::Rise, Mode::Late)
        );
    }

    #[test]
    fn repower_speeds_up_the_gate() {
        let f = inv_chain();
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        let po = NodeId(f.graph.endpoints()[0]);
        let slow = data.arrival(po, Tr::Rise, Mode::Late);

        // Double u2's drive; its cell delay halves (its input cap grows,
        // which loads u1's net — recompute it too).
        data.set_drive(1, 2.0);
        for net in 0..f.netlist.num_nets() as u32 {
            data.recompute_net(net, &f.netlist, &f.library);
        }
        full_pass(&f, &data);
        let fast = data.arrival(po, Tr::Rise, Mode::Late);
        assert!(
            fast < slow,
            "repowered path must be faster: {fast} vs {slow}"
        );
    }

    #[test]
    fn net_cap_increases_delay() {
        let f = inv_chain();
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        let po = NodeId(f.graph.endpoints()[0]);
        let before = data.arrival(po, Tr::Rise, Mode::Late);
        let d0 = data.net_delay(0);

        // Fatten every net by 10 fF.
        for (i, _) in f.netlist.nets().iter().enumerate() {
            let extra = 10.0 * f.library.wire_res_ps_per_ff;
            let cur = data.net_delay(i as u32);
            data.net_delay[i].store(cur + extra);
        }
        full_pass(&f, &data);
        let after = data.arrival(po, Tr::Rise, Mode::Late);
        assert!(after > before, "more wire cap, more delay");
        assert!(data.net_delay(0) > d0);
    }

    #[test]
    fn dff_launch_and_capture() {
        // a -> DFF -> INV -> DFF(D): the second DFF's D pin is an endpoint
        // with a setup-adjusted requirement; the first DFF's output
        // launches at clk-to-q.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let ff1 = nb.add_gate("ff1", CellKind::Dff);
        let g = nb.add_gate("u1", CellKind::Inv);
        let ff2 = nb.add_gate("ff2", CellKind::Dff);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, ff1, 0).expect("valid");
        nb.connect_gates(ff1, g, 0).expect("valid");
        nb.connect_gates(g, ff2, 0).expect("valid");
        nb.connect_to_output(ff2, y).expect("valid");
        let library = CellLibrary::typical();
        let netlist = nb.build().expect("well-formed");
        let graph = TimingGraph::build(&netlist, &library).expect("acyclic");
        let f = Fixture {
            netlist,
            graph,
            library,
        };
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);

        let q1 = f.graph.gate_output_node(crate::GateId(0));
        let clk2q = f.library.cell(CellKind::Dff).clk_to_q_ps;
        assert_eq!(data.arrival(q1, Tr::Rise, Mode::Late), clk2q);

        let d2 = f.graph.gate_input_node(crate::GateId(2), 0);
        let setup = f.library.cell(CellKind::Dff).setup_ps;
        assert_eq!(
            data.required(d2, Tr::Rise, Mode::Late),
            data.clock_period_ps - setup
        );
        assert!(data.slack_late(d2) > 0.0);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let f = inv_chain();
        let mut data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        // Include awkward values: NaN (unknown marker), signed zero.
        data.mark_arrival_unknown(NodeId(1));
        data.set_required(NodeId(0), Tr::Rise, Mode::Late, -0.0);
        let snap = data.snapshot();

        // Scramble the state, then restore.
        data.clock_period_ps = 123.0;
        full_pass(&f, &data);
        data.set_drive(0, 7.0);
        data.restore(&snap).expect("shapes match");
        assert_eq!(data.snapshot(), snap, "restore is bit-exact");
        assert!(data.arrival(NodeId(1), Tr::Rise, Mode::Late).is_nan());
        assert!(data
            .required(NodeId(0), Tr::Rise, Mode::Late)
            .is_sign_negative());
    }

    #[test]
    fn mismatched_snapshot_is_rejected_before_any_store() {
        let f = inv_chain();
        let mut data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        let before = data.snapshot();
        let mut bad = before.clone();
        bad.arc_delay.pop();
        bad.clock_period_bits = 0.0f32.to_bits();
        let err = data.restore(&bad).expect_err("shape mismatch");
        assert_eq!(err.field, "arc_delay");
        assert!(err.to_string().contains("arc_delay"));
        assert_eq!(data.snapshot(), before, "failed restore must not write");
    }

    #[test]
    fn soa_propagation_matches_reference_bit_for_bit() {
        // A mixed design exercising every arm: all three senses, a DFF
        // (sequential startpoint/endpoint), multi-input cells, and a PO.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let nand = nb.add_gate("u1", CellKind::Nand2);
        let xor = nb.add_gate("u2", CellKind::Xor2);
        let buf = nb.add_gate("u3", CellKind::Buf);
        let ff = nb.add_gate("ff1", CellKind::Dff);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, nand, 0).expect("valid");
        nb.connect_to_gate(b, nand, 1).expect("valid");
        nb.connect_gates(nand, xor, 0).expect("valid");
        nb.connect_to_gate(a, xor, 1).expect("valid");
        nb.connect_gates(xor, buf, 0).expect("valid");
        nb.connect_gates(buf, ff, 0).expect("valid");
        nb.connect_to_output(ff, y).expect("valid");
        let library = CellLibrary::typical();
        let netlist = nb.build().expect("well-formed");
        let graph = TimingGraph::build(&netlist, &library).expect("acyclic");
        let f = Fixture {
            netlist,
            graph,
            library,
        };

        let fast = TimingData::new(&f.graph, &f.netlist, &f.library);
        let slow = TimingData::new(&f.graph, &f.netlist, &f.library);
        let order = topo_nodes(&f.graph);

        let prop_fast = TimingPropagator {
            graph: &f.graph,
            netlist: &f.netlist,
            library: &f.library,
            data: &fast,
        };
        for &v in &order {
            prop_fast.fprop(NodeId(v));
        }
        for &v in order.iter().rev() {
            prop_fast.bprop(NodeId(v));
        }

        let prop_slow = TimingPropagator {
            graph: &f.graph,
            netlist: &f.netlist,
            library: &f.library,
            data: &slow,
        };
        for &v in &order {
            prop_slow.fprop_reference(NodeId(v));
        }
        for &v in order.iter().rev() {
            prop_slow.bprop_reference(NodeId(v));
        }

        assert_eq!(
            fast.snapshot(),
            slow.snapshot(),
            "SoA hot path must be bit-identical to the AoS reference"
        );
    }

    #[test]
    fn xor_takes_worst_of_both_input_transitions() {
        // XOR is non-unate: its late arrival must be >= what a positive-
        // unate cell with the same tables would produce.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let x = nb.add_gate("x1", CellKind::Xor2);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, x, 0).expect("valid");
        nb.connect_to_gate(b, x, 1).expect("valid");
        nb.connect_to_output(x, y).expect("valid");
        let library = CellLibrary::typical();
        let netlist = nb.build().expect("well-formed");
        let graph = TimingGraph::build(&netlist, &library).expect("acyclic");
        let f = Fixture {
            netlist,
            graph,
            library,
        };
        let data = TimingData::new(&f.graph, &f.netlist, &f.library);
        full_pass(&f, &data);
        let out = f.graph.gate_output_node(crate::GateId(0));
        // Both input transitions reach the XOR with identical arrivals and
        // slews, so each output transition's late arrival is simply its own
        // table's delay; the rise table is characterised slower than fall.
        let fall = data.arrival(out, Tr::Fall, Mode::Late);
        let rise = data.arrival(out, Tr::Rise, Mode::Late);
        assert!(
            rise > fall,
            "rise edges are slower in the library: {rise} vs {fall}"
        );
        // And late >= early on the non-unate output.
        assert!(data.arrival(out, Tr::Rise, Mode::Early) <= rise);
    }
}
