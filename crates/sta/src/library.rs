//! NLDM-style cell library.
//!
//! Each combinational cell has one timing arc per input pin, characterised
//! by four 2-D lookup tables (rise/fall delay, rise/fall output slew)
//! indexed by input slew and output load, evaluated with bilinear
//! interpolation — the same table discipline as Liberty NLDM data that
//! OpenTimer consumes. Tables are generated from per-cell first-order
//! coefficients, so the library is self-contained while the *lookup path*
//! (index search + interpolation arithmetic) matches production behaviour.
//!
//! Units: time in picoseconds (ps), capacitance in femtofarads (fF).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The logic function / flavour of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CellKind {
    /// Inverter (1 input, negative-unate).
    Inv,
    /// Buffer (1 input, positive-unate).
    Buf,
    /// 2-input NAND (negative-unate).
    Nand2,
    /// 2-input NOR (negative-unate).
    Nor2,
    /// 2-input AND (positive-unate).
    And2,
    /// 2-input OR (positive-unate).
    Or2,
    /// 2-input XOR (non-unate; both transitions propagate).
    Xor2,
    /// 3-input NAND (negative-unate).
    Nand3,
    /// 2:1 multiplexer (3 inputs, non-unate).
    Mux2,
    /// 1-input majority-style complex cell stand-in (AOI21, 3 inputs,
    /// negative-unate).
    Aoi21,
    /// D flip-flop: `D` is a timing endpoint (setup-checked), `Q` launches
    /// a new path with a clock-to-Q delay.
    Dff,
}

impl CellKind {
    /// Number of signal input pins (the DFF's clock pin is implicit — the
    /// engine models an ideal clock).
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2 | CellKind::Nor2 | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Nand3 | CellKind::Mux2 | CellKind::Aoi21 => 3,
        }
    }

    /// Whether the cell is sequential (breaks timing paths).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Timing sense of the input→output arcs.
    pub fn sense(self) -> TimingSense {
        match self {
            CellKind::Buf | CellKind::And2 | CellKind::Or2 => TimingSense::Positive,
            CellKind::Inv
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Nand3
            | CellKind::Aoi21 => TimingSense::Negative,
            CellKind::Xor2 | CellKind::Mux2 => TimingSense::NonUnate,
            // The D->Q "arc" is not combinational; sense is unused.
            CellKind::Dff => TimingSense::Positive,
        }
    }

    /// All cell kinds, for iteration in tests and generators.
    pub fn all() -> &'static [CellKind] {
        &[
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Nand3,
            CellKind::Mux2,
            CellKind::Aoi21,
            CellKind::Dff,
        ]
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Nand3 => "NAND3",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

/// Unateness of a timing arc: which input transition causes which output
/// transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingSense {
    /// Rising input → rising output (buffer-like).
    Positive,
    /// Rising input → falling output (inverter-like).
    Negative,
    /// Both input transitions drive both output transitions (XOR-like);
    /// propagation takes the worst case.
    NonUnate,
}

/// A 2-D NLDM lookup table: `value[i][j]` at `(slew_axis[i], load_axis[j])`,
/// bilinear interpolation inside the grid, clamped extrapolation outside
/// (the common STA-tool policy for the table corners).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut2D {
    slew_axis: Vec<f32>,
    load_axis: Vec<f32>,
    /// Row-major `slew_axis.len() × load_axis.len()` values.
    values: Vec<f32>,
}

impl Lut2D {
    /// Build a table from axes and row-major values.
    ///
    /// # Panics
    ///
    /// Panics if the axes are empty, not strictly increasing, or the value
    /// count does not match.
    pub fn new(slew_axis: Vec<f32>, load_axis: Vec<f32>, values: Vec<f32>) -> Self {
        assert!(
            !slew_axis.is_empty() && !load_axis.is_empty(),
            "empty LUT axis"
        );
        assert!(
            slew_axis.windows(2).all(|w| w[0] < w[1]),
            "slew axis must be strictly increasing"
        );
        assert!(
            load_axis.windows(2).all(|w| w[0] < w[1]),
            "load axis must be strictly increasing"
        );
        assert_eq!(
            values.len(),
            slew_axis.len() * load_axis.len(),
            "LUT value count mismatch"
        );
        Lut2D {
            slew_axis,
            load_axis,
            values,
        }
    }

    /// Generate a table on the given axes from a closure (used by the
    /// programmatic library).
    pub fn from_fn(slew_axis: Vec<f32>, load_axis: Vec<f32>, f: impl Fn(f32, f32) -> f32) -> Self {
        let f = &f;
        let values = slew_axis
            .iter()
            .flat_map(|&s| load_axis.iter().map(move |&l| f(s, l)))
            .collect();
        Lut2D::new(slew_axis, load_axis, values)
    }

    /// The input-slew axis breakpoints (ps).
    pub fn slew_axis(&self) -> &[f32] {
        &self.slew_axis
    }

    /// The output-load axis breakpoints (fF).
    pub fn load_axis(&self) -> &[f32] {
        &self.load_axis
    }

    /// Row-major table values (`slew_axis.len() × load_axis.len()`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Bilinear lookup at `(slew, load)` with clamped extrapolation.
    pub fn lookup(&self, slew: f32, load: f32) -> f32 {
        self.lookup_at(slew, self.load_bracket(load))
    }

    /// Resolve the load-axis bracket once for reuse across several
    /// [`lookup_at`](Self::lookup_at) calls at the same output load —
    /// the hot propagation kernel evaluates up to four `(slew, mode)`
    /// combinations per table against one load, and the bracket search
    /// is the part worth hoisting.
    #[inline]
    pub fn load_bracket(&self, load: f32) -> LoadBracket {
        let (j0, j1, tl) = Self::bracket(&self.load_axis, load);
        LoadBracket { j0, j1, tl }
    }

    /// Bilinear lookup with a pre-resolved load bracket; bit-identical
    /// to [`lookup`](Self::lookup) when `lb` came from this table's
    /// [`load_bracket`](Self::load_bracket) at the same load.
    #[inline]
    pub fn lookup_at(&self, slew: f32, lb: LoadBracket) -> f32 {
        let (i0, i1, ts) = Self::bracket(&self.slew_axis, slew);
        let LoadBracket { j0, j1, tl } = lb;
        let cols = self.load_axis.len();
        let v00 = self.values[i0 * cols + j0];
        let v01 = self.values[i0 * cols + j1];
        let v10 = self.values[i1 * cols + j0];
        let v11 = self.values[i1 * cols + j1];
        let v0 = v00 + (v01 - v00) * tl;
        let v1 = v10 + (v11 - v10) * tl;
        v0 + (v1 - v0) * ts
    }

    /// Find the bracketing indices and interpolation fraction for `x` on
    /// `axis`, clamping outside the grid.
    #[inline]
    fn bracket(axis: &[f32], x: f32) -> (usize, usize, f32) {
        let n = axis.len();
        if n == 1 || x <= axis[0] {
            return (0, 0, 0.0);
        }
        if x >= axis[n - 1] {
            return (n - 1, n - 1, 0.0);
        }
        let hi = axis.partition_point(|&a| a <= x);
        let lo = hi - 1;
        let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, hi, t)
    }
}

/// A pre-resolved load-axis position: bracketing column indices plus the
/// interpolation fraction (see [`Lut2D::load_bracket`]).
#[derive(Debug, Clone, Copy)]
pub struct LoadBracket {
    j0: usize,
    j1: usize,
    tl: f32,
}

/// The four tables of one timing arc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArcTables {
    /// Delay to a rising output edge.
    pub delay_rise: Lut2D,
    /// Delay to a falling output edge.
    pub delay_fall: Lut2D,
    /// Output slew of a rising edge.
    pub slew_rise: Lut2D,
    /// Output slew of a falling edge.
    pub slew_fall: Lut2D,
}

/// Per-cell electrical characterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Input pin capacitance (fF).
    pub input_cap_ff: f32,
    /// Tables of the input→output arc (shared by all inputs of the cell;
    /// a per-pin refinement would only scale data volume, not behaviour).
    pub tables: ArcTables,
    /// Clock-to-Q delay for sequential cells (ps); zero for combinational.
    pub clk_to_q_ps: f32,
    /// Setup time for sequential cells (ps); zero for combinational.
    pub setup_ps: f32,
}

/// A complete library: characterisation for every [`CellKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    cells: Vec<CellTiming>,
    /// Default primary-input slew (ps).
    pub input_slew_ps: f32,
    /// Primary-output load (fF).
    pub output_load_ff: f32,
    /// Wire resistance factor: net delay (ps) per fF of downstream cap.
    pub wire_res_ps_per_ff: f32,
}

impl CellLibrary {
    /// Index of `kind` in the library's cell table. The discriminant *is*
    /// the index — `cells` is stored in [`CellKind::all`] order, which
    /// matches declaration order — so this is O(1). Forward propagation
    /// resolves a cell per arc per corner; the linear `position()` scan
    /// this replaces was a measurable slice of the hot loop.
    #[inline]
    pub fn cell_index(kind: CellKind) -> usize {
        kind as usize
    }

    fn index(kind: CellKind) -> usize {
        Self::cell_index(kind)
    }

    /// A typical-corner library generated from first-order coefficients
    /// with 7×7 NLDM grids, loosely calibrated to a generic 45 nm node.
    pub fn typical() -> Self {
        let slew_axis: Vec<f32> = vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0];
        let load_axis: Vec<f32> = vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

        // (kind, intrinsic ps, ps/fF drive, slew sensitivity, input cap fF)
        let coeffs: &[(CellKind, f32, f32, f32, f32)] = &[
            (CellKind::Inv, 8.0, 2.0, 0.10, 1.0),
            (CellKind::Buf, 14.0, 1.6, 0.08, 1.1),
            (CellKind::Nand2, 12.0, 2.6, 0.12, 1.3),
            (CellKind::Nor2, 14.0, 3.0, 0.14, 1.3),
            (CellKind::And2, 18.0, 2.2, 0.10, 1.2),
            (CellKind::Or2, 20.0, 2.4, 0.11, 1.2),
            (CellKind::Xor2, 26.0, 3.2, 0.16, 1.8),
            (CellKind::Nand3, 16.0, 3.4, 0.15, 1.4),
            (CellKind::Mux2, 24.0, 2.8, 0.13, 1.6),
            (CellKind::Aoi21, 18.0, 3.2, 0.15, 1.5),
            (CellKind::Dff, 0.0, 2.0, 0.08, 1.2),
        ];

        let cells = coeffs
            .iter()
            .map(|&(kind, d0, dl, ds, cap)| {
                let mk = |skew: f32| {
                    Lut2D::from_fn(slew_axis.clone(), load_axis.clone(), move |s, l| {
                        d0 * skew + dl * l + ds * s + 0.002 * s * l
                    })
                };
                let mk_slew = |skew: f32| {
                    Lut2D::from_fn(slew_axis.clone(), load_axis.clone(), move |s, l| {
                        (4.0 + 1.1 * dl * l + 0.12 * s) * skew
                    })
                };
                let (clk_to_q_ps, setup_ps) = if kind.is_sequential() {
                    (45.0, 30.0)
                } else {
                    (0.0, 0.0)
                };
                CellTiming {
                    input_cap_ff: cap,
                    tables: ArcTables {
                        // Falling edges are slightly faster (NMOS pull-down),
                        // as in real libraries.
                        delay_rise: mk(1.0),
                        delay_fall: mk(0.9),
                        slew_rise: mk_slew(1.0),
                        slew_fall: mk_slew(0.92),
                    },
                    clk_to_q_ps,
                    setup_ps,
                }
            })
            .collect();

        CellLibrary {
            cells,
            input_slew_ps: 20.0,
            output_load_ff: 2.0,
            wire_res_ps_per_ff: 0.4,
        }
    }

    /// Characterisation of `kind`.
    pub fn cell(&self, kind: CellKind) -> &CellTiming {
        &self.cells[Self::index(kind)]
    }

    /// Characterisation by precomputed [`cell_index`](Self::cell_index) —
    /// the hot-path entry used with per-arc cached indices.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid cell index.
    #[inline]
    pub fn cell_by_index(&self, i: usize) -> &CellTiming {
        &self.cells[i]
    }

    /// Replace the characterisation of `kind` (used by the Liberty
    /// reader and by library-scaling experiments).
    pub fn set_cell(&mut self, kind: CellKind, timing: CellTiming) {
        self.cells[Self::index(kind)] = timing;
    }

    /// Input pin capacitance of `kind` (fF).
    pub fn input_cap(&self, kind: CellKind) -> f32 {
        self.cell(kind).input_cap_ff
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_exact_on_grid_points() {
        let lut = Lut2D::new(vec![1.0, 2.0], vec![10.0, 20.0], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(lut.lookup(1.0, 10.0), 1.0);
        assert_eq!(lut.lookup(1.0, 20.0), 2.0);
        assert_eq!(lut.lookup(2.0, 10.0), 3.0);
        assert_eq!(lut.lookup(2.0, 20.0), 4.0);
    }

    #[test]
    fn lut_bilinear_midpoint() {
        let lut = Lut2D::new(vec![0.0, 2.0], vec![0.0, 2.0], vec![0.0, 2.0, 2.0, 4.0]);
        assert_eq!(lut.lookup(1.0, 1.0), 2.0);
    }

    #[test]
    fn lut_clamps_outside_grid() {
        let lut = Lut2D::new(vec![1.0, 2.0], vec![1.0, 2.0], vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(lut.lookup(0.0, 0.0), 5.0);
        assert_eq!(lut.lookup(99.0, 99.0), 8.0);
        assert_eq!(lut.lookup(0.0, 99.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn lut_rejects_unsorted_axis() {
        let _ = Lut2D::new(vec![2.0, 1.0], vec![1.0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "value count mismatch")]
    fn lut_rejects_bad_value_count() {
        let _ = Lut2D::new(vec![1.0], vec![1.0], vec![0.0, 0.0]);
    }

    #[test]
    fn typical_library_covers_every_kind() {
        let lib = CellLibrary::typical();
        for &kind in CellKind::all() {
            let cell = lib.cell(kind);
            assert!(cell.input_cap_ff > 0.0, "{kind} has no input cap");
            let d = cell.tables.delay_rise.lookup(20.0, 2.0);
            assert!(d > 0.0, "{kind} has nonpositive delay {d}");
        }
    }

    #[test]
    fn delay_monotone_in_load_and_slew() {
        let lib = CellLibrary::typical();
        let t = &lib.cell(CellKind::Nand2).tables.delay_rise;
        assert!(t.lookup(20.0, 8.0) > t.lookup(20.0, 1.0));
        assert!(t.lookup(160.0, 2.0) > t.lookup(10.0, 2.0));
    }

    #[test]
    fn fall_is_faster_than_rise() {
        let lib = CellLibrary::typical();
        let tables = &lib.cell(CellKind::Inv).tables;
        assert!(tables.delay_fall.lookup(20.0, 2.0) < tables.delay_rise.lookup(20.0, 2.0));
    }

    #[test]
    fn dff_is_sequential_with_setup_and_clk_to_q() {
        let lib = CellLibrary::typical();
        assert!(CellKind::Dff.is_sequential());
        assert!(lib.cell(CellKind::Dff).setup_ps > 0.0);
        assert!(lib.cell(CellKind::Dff).clk_to_q_ps > 0.0);
        assert!(!CellKind::Nand2.is_sequential());
        assert_eq!(lib.cell(CellKind::Nand2).setup_ps, 0.0);
    }

    #[test]
    fn kind_metadata_is_consistent() {
        assert_eq!(CellKind::Inv.num_inputs(), 1);
        assert_eq!(CellKind::Mux2.num_inputs(), 3);
        assert_eq!(CellKind::Inv.sense(), TimingSense::Negative);
        assert_eq!(CellKind::Buf.sense(), TimingSense::Positive);
        assert_eq!(CellKind::Xor2.sense(), TimingSense::NonUnate);
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::all().len(), 11);
    }

    #[test]
    fn cell_index_matches_all_order() {
        // `cell_index` relies on the discriminant equalling the position in
        // `all()`; if the two ever diverge, every by-index lookup resolves
        // the wrong cell.
        for (i, &kind) in CellKind::all().iter().enumerate() {
            assert_eq!(CellLibrary::cell_index(kind), i, "{kind}");
        }
        let lib = CellLibrary::typical();
        for &kind in CellKind::all() {
            assert_eq!(
                lib.cell(kind) as *const _,
                lib.cell_by_index(CellLibrary::cell_index(kind)) as *const _,
                "{kind}: cell() and cell_by_index() must agree"
            );
        }
    }

    #[test]
    fn library_serde_round_trip() {
        let lib = CellLibrary::typical();
        let json = serde_json::to_string(&lib).expect("serializes");
        let back: CellLibrary = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(lib, back);
    }
}
