//! Gate-level netlists.
//!
//! A netlist is a set of gates (cell instances), primary inputs/outputs,
//! and nets. Each net has exactly one driver (a primary input or a gate
//! output) and any number of sinks (gate inputs or primary outputs), plus a
//! lumped wire capacitance.

use crate::error::{BuildNetlistError, ConnectError};
use crate::library::CellKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(pub u32);

impl GateId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a primary input or output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u32);

impl PortId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to a driving or sinking pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinRef {
    /// A primary input port (always a driver).
    PrimaryInput(PortId),
    /// A primary output port (always a sink).
    PrimaryOutput(PortId),
    /// Input pin `pin` of a gate (a sink).
    GateInput(GateId, u8),
    /// The (single) output pin of a gate (a driver).
    GateOutput(GateId),
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Instance name.
    pub name: String,
    /// The library cell implementing the gate.
    pub cell: CellKind,
    /// Drive-strength multiplier applied to the cell's tables: `> 1`
    /// speeds the gate up (lower delay) but raises its input capacitance.
    /// Design modifiers (gate repowering) adjust this.
    pub drive: f32,
}

/// One net: a driver pin, its sinks, and the lumped wire capacitance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// The driving pin.
    pub driver: PinRef,
    /// The sink pins.
    pub sinks: Vec<PinRef>,
    /// Lumped wire capacitance (fF).
    pub wire_cap_ff: f32,
}

/// An immutable gate-level netlist, produced by [`NetlistBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<String>,
    pub(crate) outputs: Vec<String>,
    pub(crate) nets: Vec<Net>,
}

impl Netlist {
    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The gates, indexed by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Primary input names, indexed by [`PortId`].
    pub fn input_names(&self) -> &[String] {
        &self.inputs
    }

    /// Primary output names, indexed by [`PortId`].
    pub fn output_names(&self) -> &[String] {
        &self.outputs
    }

    /// Set gate `g`'s drive-strength multiplier directly on the netlist
    /// (design state; the [`Timer`](crate::Timer) has its own
    /// [`repower_gate`](crate::Timer::repower_gate) that also invalidates
    /// timing).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn set_drive(&mut self, g: GateId, drive: f32) {
        self.gates[g.index()].drive = drive;
    }
}

/// Builder for a [`Netlist`].
///
/// Connections are made per-sink: each call wires one driver pin to one
/// sink pin; sinks driven by the same driver share a net. See the crate
/// example for a full flow.
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    gates: Vec<Gate>,
    inputs: Vec<String>,
    outputs: Vec<String>,
    /// (driver, sink) pairs, merged into nets at build time.
    connections: Vec<(PinRef, PinRef)>,
    /// Extra wire capacitance per driver pin, applied to its net.
    wire_caps: Vec<(PinRef, f32)>,
}

impl NetlistBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a primary input.
    pub fn add_primary_input(&mut self, name: impl Into<String>) -> PortId {
        self.inputs.push(name.into());
        PortId(self.inputs.len() as u32 - 1)
    }

    /// Declare a primary output.
    pub fn add_primary_output(&mut self, name: impl Into<String>) -> PortId {
        self.outputs.push(name.into());
        PortId(self.outputs.len() as u32 - 1)
    }

    /// Instantiate a gate of `cell` with drive strength 1.0.
    pub fn add_gate(&mut self, name: impl Into<String>, cell: CellKind) -> GateId {
        self.gates.push(Gate {
            name: name.into(),
            cell,
            drive: 1.0,
        });
        GateId(self.gates.len() as u32 - 1)
    }

    /// Number of gates added so far.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Wire a primary input to input pin `pin` of `gate`.
    ///
    /// # Errors
    ///
    /// Returns [`ConnectError`] if the gate or pin index is invalid.
    pub fn connect_to_gate(
        &mut self,
        from: PortId,
        gate: GateId,
        pin: u8,
    ) -> Result<(), ConnectError> {
        self.check_sink(gate, pin)?;
        self.connections
            .push((PinRef::PrimaryInput(from), PinRef::GateInput(gate, pin)));
        Ok(())
    }

    /// Wire gate `from`'s output to input pin `pin` of `to`.
    ///
    /// # Errors
    ///
    /// Returns [`ConnectError`] if either gate or the pin index is invalid.
    pub fn connect_gates(&mut self, from: GateId, to: GateId, pin: u8) -> Result<(), ConnectError> {
        if from.index() >= self.gates.len() {
            return Err(ConnectError::UnknownGate { gate: from.0 });
        }
        self.check_sink(to, pin)?;
        self.connections
            .push((PinRef::GateOutput(from), PinRef::GateInput(to, pin)));
        Ok(())
    }

    /// Wire gate `from`'s output to the primary output `out`.
    ///
    /// # Errors
    ///
    /// Returns [`ConnectError::UnknownGate`] if `from` is invalid.
    pub fn connect_to_output(&mut self, from: GateId, out: PortId) -> Result<(), ConnectError> {
        if from.index() >= self.gates.len() {
            return Err(ConnectError::UnknownGate { gate: from.0 });
        }
        self.connections
            .push((PinRef::GateOutput(from), PinRef::PrimaryOutput(out)));
        Ok(())
    }

    /// Wire a primary input straight to a primary output (feed-through).
    pub fn connect_input_to_output(&mut self, from: PortId, out: PortId) {
        self.connections
            .push((PinRef::PrimaryInput(from), PinRef::PrimaryOutput(out)));
    }

    /// Add `cap_ff` of wire capacitance to the net driven by `driver`.
    pub fn add_wire_cap(&mut self, driver: PinRef, cap_ff: f32) {
        self.wire_caps.push((driver, cap_ff));
    }

    fn check_sink(&self, gate: GateId, pin: u8) -> Result<(), ConnectError> {
        let g = self
            .gates
            .get(gate.index())
            .ok_or(ConnectError::UnknownGate { gate: gate.0 })?;
        if usize::from(pin) >= g.cell.num_inputs() {
            return Err(ConnectError::PinOutOfRange {
                gate: gate.0,
                pin,
                num_inputs: g.cell.num_inputs(),
            });
        }
        Ok(())
    }

    /// Finalise into a [`Netlist`], merging per-sink connections into nets.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetlistError`] if a gate input pin is driven more than
    /// once, a gate input or primary output is left unconnected, or the
    /// combinational part of the design contains a cycle (cycles are
    /// detected later by the timing-graph builder, which reports them as a
    /// [`BuildTdgError`](gpasta_tdg::BuildTdgError); here we only catch
    /// duplicate drivers and dangling pins).
    pub fn build(self) -> Result<Netlist, BuildNetlistError> {
        // Group connections by driver.
        use std::collections::HashMap;
        let mut by_driver: HashMap<PinRef, Vec<PinRef>> = HashMap::new();
        let mut seen_sinks: HashMap<PinRef, PinRef> = HashMap::new();
        for (driver, sink) in self.connections {
            if let Some(prev) = seen_sinks.insert(sink, driver) {
                if prev != driver {
                    return Err(BuildNetlistError::MultipleDrivers {
                        sink: format!("{sink:?}"),
                    });
                }
                continue; // duplicate identical connection
            }
            by_driver.entry(driver).or_default().push(sink);
        }

        // Every gate input pin must be driven.
        for (g, gate) in self.gates.iter().enumerate() {
            for pin in 0..gate.cell.num_inputs() as u8 {
                let sink = PinRef::GateInput(GateId(g as u32), pin);
                if !seen_sinks.contains_key(&sink) {
                    return Err(BuildNetlistError::UnconnectedPin {
                        gate: gate.name.clone(),
                        pin,
                    });
                }
            }
        }
        // Every primary output must be driven.
        for (o, name) in self.outputs.iter().enumerate() {
            let sink = PinRef::PrimaryOutput(PortId(o as u32));
            if !seen_sinks.contains_key(&sink) {
                return Err(BuildNetlistError::UnconnectedOutput { name: name.clone() });
            }
        }

        let mut wire_caps: HashMap<PinRef, f32> = HashMap::new();
        for (driver, cap) in self.wire_caps {
            *wire_caps.entry(driver).or_insert(0.0) += cap;
        }

        let mut nets: Vec<Net> = by_driver
            .into_iter()
            .map(|(driver, mut sinks)| {
                // Deterministic sink order regardless of hash-map iteration.
                sinks.sort_by_key(|s| format!("{s:?}"));
                Net {
                    driver,
                    sinks,
                    wire_cap_ff: wire_caps.get(&driver).copied().unwrap_or(0.0),
                }
            })
            .collect();
        nets.sort_by_key(|n| format!("{:?}", n.driver));

        Ok(Netlist {
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            nets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nand_pair() -> NetlistBuilder {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let g1 = nb.add_gate("u1", CellKind::Nand2);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, g1, 0).expect("valid pin");
        nb.connect_to_gate(b, g1, 1).expect("valid pin");
        nb.connect_gates(g1, g2, 0).expect("valid pin");
        nb.connect_to_output(g2, y).expect("valid gate");
        nb
    }

    #[test]
    fn builds_simple_netlist() {
        let n = nand_pair().build().expect("netlist is well-formed");
        assert_eq!(n.num_gates(), 2);
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_outputs(), 1);
        assert_eq!(n.num_nets(), 4);
    }

    #[test]
    fn fanout_shares_one_net() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let g1 = nb.add_gate("u1", CellKind::Inv);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let g3 = nb.add_gate("u3", CellKind::Inv);
        let y1 = nb.add_primary_output("y1");
        let y2 = nb.add_primary_output("y2");
        nb.connect_to_gate(a, g1, 0).expect("valid");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_gates(g1, g3, 0).expect("valid");
        nb.connect_to_output(g2, y1).expect("valid");
        nb.connect_to_output(g3, y2).expect("valid");
        let n = nb.build().expect("well-formed");
        let fanout_net = n
            .nets()
            .iter()
            .find(|net| net.driver == PinRef::GateOutput(g1))
            .expect("net exists");
        assert_eq!(fanout_net.sinks.len(), 2);
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let g = nb.add_gate("u1", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, g, 0).expect("valid");
        nb.connect_to_gate(b, g, 0)
            .expect("valid call; clash detected at build");
        nb.connect_to_output(g, y).expect("valid");
        assert!(matches!(
            nb.build().expect_err("pin driven twice"),
            BuildNetlistError::MultipleDrivers { .. }
        ));
    }

    #[test]
    fn unconnected_input_pin_rejected() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let g = nb.add_gate("u1", CellKind::Nand2);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, g, 0).expect("valid");
        nb.connect_to_output(g, y).expect("valid");
        assert!(matches!(
            nb.build().expect_err("pin 1 dangling"),
            BuildNetlistError::UnconnectedPin { pin: 1, .. }
        ));
    }

    #[test]
    fn unconnected_output_rejected() {
        let mut nb = NetlistBuilder::new();
        nb.add_primary_output("y");
        assert!(matches!(
            nb.build().expect_err("output y dangling"),
            BuildNetlistError::UnconnectedOutput { .. }
        ));
    }

    #[test]
    fn bad_pin_index_rejected_eagerly() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let g = nb.add_gate("u1", CellKind::Inv);
        assert!(matches!(
            nb.connect_to_gate(a, g, 5).expect_err("INV has one input"),
            ConnectError::PinOutOfRange { pin: 5, .. }
        ));
        assert!(matches!(
            nb.connect_gates(GateId(9), g, 0).expect_err("no gate 9"),
            ConnectError::UnknownGate { gate: 9 }
        ));
    }

    #[test]
    fn duplicate_identical_connection_is_tolerated() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let g = nb.add_gate("u1", CellKind::Inv);
        let y = nb.add_primary_output("y");
        nb.connect_to_gate(a, g, 0).expect("valid");
        nb.connect_to_gate(a, g, 0).expect("valid duplicate");
        nb.connect_to_output(g, y).expect("valid");
        let n = nb.build().expect("duplicate is a no-op");
        assert_eq!(n.num_nets(), 2);
    }

    #[test]
    fn wire_caps_accumulate_on_the_net() {
        let mut nb = nand_pair();
        let g1 = GateId(0);
        nb.add_wire_cap(PinRef::GateOutput(g1), 1.5);
        nb.add_wire_cap(PinRef::GateOutput(g1), 0.5);
        let n = nb.build().expect("well-formed");
        let net = n
            .nets()
            .iter()
            .find(|net| net.driver == PinRef::GateOutput(g1))
            .expect("net exists");
        assert_eq!(net.wire_cap_ff, 2.0);
    }

    #[test]
    fn feed_through_connection() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y = nb.add_primary_output("y");
        nb.connect_input_to_output(a, y);
        let n = nb.build().expect("feed-through is valid");
        assert_eq!(n.num_nets(), 1);
        assert_eq!(n.num_gates(), 0);
    }

    #[test]
    fn ids_display() {
        assert_eq!(GateId(4).to_string(), "g4");
        assert_eq!(GateId(4).index(), 4);
        assert_eq!(PortId(2).index(), 2);
    }
}
