//! An SDC-subset constraint reader and writer.
//!
//! Synopsys Design Constraints is how timing intent reaches STA tools.
//! The subset covers the engine's constraint model:
//!
//! ```text
//! create_clock -period 900
//! set_input_delay 120 [get_ports in3]
//! set_output_delay 80 [get_ports out1]
//! ```
//!
//! `#` comments and blank lines are ignored; ports are addressed with
//! `[get_ports <name>]`. [`apply_sdc`] pushes the constraints into a
//! [`Timer`] (marking the affected regions dirty); [`write_sdc`] emits the
//! timer's current constraint state.

use crate::netlist::PortId;
use crate::timer::Timer;
use std::error::Error;
use std::fmt;

/// Error produced by [`apply_sdc`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseSdcError {
    /// Malformed command.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `get_ports` name did not match any port of the design.
    UnknownPort {
        /// 1-based line number.
        line: usize,
        /// The unmatched port name.
        port: String,
    },
    /// A command keyword the subset does not support.
    UnsupportedCommand {
        /// 1-based line number.
        line: usize,
        /// The command.
        command: String,
    },
}

impl fmt::Display for ParseSdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSdcError::Syntax { line, message } => {
                write!(f, "sdc syntax error at line {line}: {message}")
            }
            ParseSdcError::UnknownPort { line, port } => {
                write!(f, "sdc line {line}: unknown port `{port}`")
            }
            ParseSdcError::UnsupportedCommand { line, command } => {
                write!(f, "sdc line {line}: unsupported command `{command}`")
            }
        }
    }
}

impl Error for ParseSdcError {}

/// Emit the timer's constraint state as SDC.
pub fn write_sdc(timer: &Timer) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "create_clock -period {}\n",
        timer.data().clock_period_ps
    ));
    for (p, name) in timer.netlist().input_names().iter().enumerate() {
        let d = timer.data().input_delay(p as u32);
        if d != 0.0 {
            out.push_str(&format!("set_input_delay {d} [get_ports {name}]\n"));
        }
    }
    for (p, name) in timer.netlist().output_names().iter().enumerate() {
        let d = timer.data().output_delay(p as u32);
        if d != 0.0 {
            out.push_str(&format!("set_output_delay {d} [get_ports {name}]\n"));
        }
    }
    out
}

fn parse_get_ports(line_no: usize, tok: &str) -> Result<&str, ParseSdcError> {
    tok.strip_prefix("[get_ports")
        .and_then(|rest| rest.strip_suffix(']'))
        .map(str::trim)
        .filter(|name| !name.is_empty())
        .ok_or_else(|| ParseSdcError::Syntax {
            line: line_no,
            message: format!("expected `[get_ports <name>]`, got `{tok}`"),
        })
}

fn find_port(names: &[String], name: &str) -> Option<PortId> {
    names
        .iter()
        .position(|n| n == name)
        .map(|i| PortId(i as u32))
}

/// Apply SDC constraints to `timer`, marking affected timing dirty; the
/// next [`Timer::update_timing`] picks them up.
///
/// # Errors
///
/// Returns [`ParseSdcError`] on malformed commands or unknown ports; the
/// timer may be partially updated when an error is returned mid-file.
pub fn apply_sdc(timer: &mut Timer, text: &str) -> Result<(), ParseSdcError> {
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Keep `[get_ports x]` as one token: split on whitespace outside
        // brackets.
        let mut tokens: Vec<String> = Vec::new();
        let mut depth = 0usize;
        let mut cur = String::new();
        for c in line.chars() {
            match c {
                '[' => {
                    depth += 1;
                    cur.push(c);
                }
                ']' => {
                    depth = depth.saturating_sub(1);
                    cur.push(c);
                }
                c if c.is_whitespace() && depth == 0 => {
                    if !cur.is_empty() {
                        tokens.push(std::mem::take(&mut cur));
                    }
                }
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            tokens.push(cur);
        }

        let mut it = tokens.iter().map(String::as_str);
        match it.next() {
            Some("create_clock") => {
                let mut period = None;
                while let Some(tok) = it.next() {
                    match tok {
                        "-period" => {
                            let v = it.next().ok_or_else(|| ParseSdcError::Syntax {
                                line: line_no,
                                message: "-period needs a value".into(),
                            })?;
                            period = Some(v.parse::<f32>().map_err(|_| ParseSdcError::Syntax {
                                line: line_no,
                                message: format!("`{v}` is not a number"),
                            })?);
                        }
                        "-name" => {
                            let _ = it.next(); // accepted, ignored (single clock)
                        }
                        other => {
                            return Err(ParseSdcError::Syntax {
                                line: line_no,
                                message: format!("unexpected token `{other}`"),
                            })
                        }
                    }
                }
                let period = period.ok_or_else(|| ParseSdcError::Syntax {
                    line: line_no,
                    message: "create_clock needs -period".into(),
                })?;
                timer.set_clock_period(period);
            }
            Some(cmd @ ("set_input_delay" | "set_output_delay")) => {
                let v = it.next().ok_or_else(|| ParseSdcError::Syntax {
                    line: line_no,
                    message: format!("{cmd} needs a value"),
                })?;
                let delay: f32 = v.parse().map_err(|_| ParseSdcError::Syntax {
                    line: line_no,
                    message: format!("`{v}` is not a number"),
                })?;
                let ports_tok = it.next().ok_or_else(|| ParseSdcError::Syntax {
                    line: line_no,
                    message: format!("{cmd} needs [get_ports <name>]"),
                })?;
                let name = parse_get_ports(line_no, ports_tok)?;
                if cmd == "set_input_delay" {
                    let port = find_port(timer.netlist().input_names(), name).ok_or_else(|| {
                        ParseSdcError::UnknownPort {
                            line: line_no,
                            port: name.to_owned(),
                        }
                    })?;
                    timer.set_input_delay(port, delay);
                } else {
                    let port =
                        find_port(timer.netlist().output_names(), name).ok_or_else(|| {
                            ParseSdcError::UnknownPort {
                                line: line_no,
                                port: name.to_owned(),
                            }
                        })?;
                    timer.set_output_delay(port, delay);
                }
            }
            Some(other) => {
                return Err(ParseSdcError::UnsupportedCommand {
                    line: line_no,
                    command: other.to_owned(),
                })
            }
            None => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{CellKind, CellLibrary};
    use crate::netlist::NetlistBuilder;

    fn buf_timer() -> Timer {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let y = nb.add_primary_output("y");
        let z = nb.add_primary_output("z");
        let g1 = nb.add_gate("u1", CellKind::Buf);
        let g2 = nb.add_gate("u2", CellKind::Buf);
        nb.connect_to_gate(a, g1, 0).expect("valid");
        nb.connect_to_gate(b, g2, 0).expect("valid");
        nb.connect_to_output(g1, y).expect("valid");
        nb.connect_to_output(g2, z).expect("valid");
        Timer::new(nb.build().expect("valid"), CellLibrary::typical())
    }

    #[test]
    fn applies_clock_and_port_delays() {
        let mut timer = buf_timer();
        apply_sdc(
            &mut timer,
            "# constraints\ncreate_clock -period 750\nset_input_delay 100 [get_ports a]\nset_output_delay 50 [get_ports y]\n",
        )
        .expect("valid SDC");
        timer.update_timing().run_sequential();
        assert_eq!(timer.data().clock_period_ps, 750.0);
        assert_eq!(timer.data().input_delay(0), 100.0);
        assert_eq!(timer.data().output_delay(0), 50.0);
    }

    #[test]
    fn input_delay_shifts_arrivals_and_slack() {
        let mut timer = buf_timer();
        timer.update_timing().run_sequential();
        let before = timer.report(2);
        let y_before = before
            .worst
            .iter()
            .find(|e| e.name == "y")
            .expect("y")
            .slack_ps;

        apply_sdc(&mut timer, "set_input_delay 200 [get_ports a]\n").expect("valid");
        timer.update_timing().run_sequential();
        let after = timer.report(2);
        let y_after = after
            .worst
            .iter()
            .find(|e| e.name == "y")
            .expect("y")
            .slack_ps;
        let z_after = after
            .worst
            .iter()
            .find(|e| e.name == "z")
            .expect("z")
            .slack_ps;
        assert!(
            (y_before - y_after - 200.0).abs() < 0.5,
            "y slack drops by the input delay"
        );
        // z's path from b is unaffected.
        let z_before = before
            .worst
            .iter()
            .find(|e| e.name == "z")
            .expect("z")
            .slack_ps;
        assert_eq!(z_before, z_after);
    }

    #[test]
    fn output_delay_tightens_required_time() {
        let mut timer = buf_timer();
        timer.update_timing().run_sequential();
        let before = timer
            .report(2)
            .worst
            .iter()
            .find(|e| e.name == "y")
            .expect("y")
            .slack_ps;
        apply_sdc(&mut timer, "set_output_delay 150 [get_ports y]\n").expect("valid");
        timer.update_timing().run_sequential();
        let after = timer
            .report(2)
            .worst
            .iter()
            .find(|e| e.name == "y")
            .expect("y")
            .slack_ps;
        assert!((before - after - 150.0).abs() < 0.5, "{before} -> {after}");
    }

    #[test]
    fn incremental_constraint_update_matches_full() {
        let mut incr = buf_timer();
        incr.update_timing().run_sequential();
        apply_sdc(&mut incr, "set_output_delay 90 [get_ports z]\n").expect("valid");
        incr.update_timing().run_sequential();

        let mut full = buf_timer();
        apply_sdc(&mut full, "set_output_delay 90 [get_ports z]\n").expect("valid");
        full.invalidate_all();
        full.update_timing().run_sequential();

        assert_eq!(incr.report(2).wns_ps, full.report(2).wns_ps);
    }

    #[test]
    fn round_trips_through_write_sdc() {
        let mut timer = buf_timer();
        apply_sdc(
            &mut timer,
            "create_clock -period 640\nset_input_delay 33 [get_ports b]\nset_output_delay 21 [get_ports z]\n",
        )
        .expect("valid");
        let text = write_sdc(&timer);
        let mut other = buf_timer();
        apply_sdc(&mut other, &text).expect("own output parses");
        assert_eq!(other.data().clock_period_ps, 640.0);
        assert_eq!(other.data().input_delay(1), 33.0);
        assert_eq!(other.data().output_delay(1), 21.0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut timer = buf_timer();
        match apply_sdc(
            &mut timer,
            "create_clock -period 500\nset_input_delay 1 [get_ports nope]\n",
        ) {
            Err(ParseSdcError::UnknownPort { line, port }) => {
                assert_eq!(line, 2);
                assert_eq!(port, "nope");
            }
            other => panic!("expected UnknownPort, got {other:?}"),
        }
        assert!(matches!(
            apply_sdc(&mut timer, "set_false_path -from x\n"),
            Err(ParseSdcError::UnsupportedCommand { .. })
        ));
        assert!(matches!(
            apply_sdc(&mut timer, "create_clock\n"),
            Err(ParseSdcError::Syntax { .. })
        ));
    }

    #[test]
    fn named_clock_is_accepted() {
        let mut timer = buf_timer();
        apply_sdc(&mut timer, "create_clock -name core_clk -period 820\n").expect("valid");
        assert_eq!(timer.data().clock_period_ps, 820.0);
    }
}
