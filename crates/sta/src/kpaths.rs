//! K-worst-path enumeration (path-based-analysis lite).
//!
//! Graph-based analysis keeps one worst arrival per node; signoff flows
//! also want the *next* most critical paths per endpoint (ECO targeting,
//! common-path analysis). This module enumerates the `k` latest-arriving
//! paths into an endpoint with a lazy best-first search over the fan-in
//! options — the Recursive Enumeration Algorithm shape, run on the arc
//! delays the forward propagation already cached.

use crate::analysis::{Mode, TimingData, Tr};
use crate::graph::{ArcKind, NodeId, TimingGraph};
use crate::library::TimingSense;
use crate::netlist::Netlist;
use crate::path::{PathStep, TimingPath};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// A reverse-linked partial path: the head node plus the suffix towards
/// the endpoint.
struct Suffix {
    node: NodeId,
    tr: Tr,
    /// Delay of the arc from this node towards the next suffix element.
    incr_out: f32,
    next: Option<Rc<Suffix>>,
}

/// Heap entry: a partial path ranked by the arrival it can still achieve.
struct Candidate {
    /// `arrival(head) + suffix delays`: the exact total arrival of the
    /// best completion of this partial path.
    potential: f32,
    suffix: Rc<Suffix>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.potential == other.potential
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.potential.total_cmp(&other.potential)
    }
}

/// Enumerate the `k` latest-arriving late-mode paths ending at `endpoint`,
/// most critical first.
///
/// Requires a completed forward propagation (the search consumes the
/// cached arc delays). Paths are maximal: they start at a task with no
/// fan-in (primary input or sequential output). Returns fewer than `k`
/// paths when the endpoint's fan-in cone has fewer distinct paths.
pub fn k_worst_paths(
    graph: &TimingGraph,
    netlist: &Netlist,
    data: &TimingData,
    endpoint: NodeId,
    k: usize,
) -> Vec<TimingPath> {
    if k == 0 {
        return Vec::new();
    }

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    // Seed with both endpoint transitions.
    for tr in [Tr::Rise, Tr::Fall] {
        heap.push(Candidate {
            potential: data.arrival(endpoint, tr, Mode::Late),
            suffix: Rc::new(Suffix {
                node: endpoint,
                tr,
                incr_out: 0.0,
                next: None,
            }),
        });
    }

    let mut out = Vec::with_capacity(k);
    // Cap expansions to keep adversarial graphs bounded.
    let mut expansions = 0usize;
    let max_expansions = 10_000 + 200 * k * graph.num_nodes().max(1).ilog2() as usize;

    while let Some(Candidate { potential, suffix }) = heap.pop() {
        expansions += 1;
        if expansions > max_expansions {
            break;
        }
        let head = suffix.node;
        let head_tr = suffix.tr;
        let fanin = graph.fanin(head);
        if fanin.is_empty() {
            // Complete maximal path; materialise front-to-back.
            out.push(materialise(
                graph, netlist, data, &suffix, potential, endpoint,
            ));
            if out.len() == k {
                break;
            }
            continue;
        }
        for &a in fanin {
            let arc = graph.arc(a);
            let from = arc.from;
            let sense = match arc.kind {
                ArcKind::Net { .. } => TimingSense::Positive,
                ArcKind::Cell { gate } => netlist.gates()[gate as usize].cell.sense(),
            };
            let candidates: &[Tr] = match sense {
                TimingSense::Positive => &[head_tr],
                TimingSense::Negative => match head_tr {
                    Tr::Rise => &[Tr::Fall],
                    Tr::Fall => &[Tr::Rise],
                },
                TimingSense::NonUnate => &[Tr::Rise, Tr::Fall],
            };
            let delay = data.arc_delay_public(a, head_tr);
            // Suffix delay accumulated so far = potential - arrival(head).
            let suffix_delay = potential - data.arrival(head, head_tr, Mode::Late);
            for &tr_in in candidates {
                let new_potential = data.arrival(from, tr_in, Mode::Late) + delay + suffix_delay;
                heap.push(Candidate {
                    potential: new_potential,
                    suffix: Rc::new(Suffix {
                        node: from,
                        tr: tr_in,
                        incr_out: delay,
                        next: Some(Rc::clone(&suffix)),
                    }),
                });
            }
        }
    }
    out
}

fn materialise(
    graph: &TimingGraph,
    netlist: &Netlist,
    data: &TimingData,
    suffix: &Rc<Suffix>,
    total_arrival: f32,
    endpoint: NodeId,
) -> TimingPath {
    let mut steps = Vec::new();
    let mut cursor = Some(Rc::clone(suffix));
    let mut arrival = data.arrival(suffix.node, suffix.tr, Mode::Late);
    let mut incr_in = 0.0f32;
    while let Some(s) = cursor {
        steps.push(PathStep {
            node: s.node,
            location: location_of(graph, netlist, s.node),
            rise: matches!(s.tr, Tr::Rise),
            arrival_ps: arrival,
            incr_ps: incr_in,
        });
        arrival += s.incr_out;
        incr_in = s.incr_out;
        cursor = s.next.clone();
    }
    // Endpoint slack against this specific path's arrival.
    let worst_required = [Tr::Rise, Tr::Fall]
        .into_iter()
        .map(|tr| data.required(endpoint, tr, Mode::Late))
        .fold(f32::INFINITY, f32::min);
    TimingPath {
        steps,
        slack_ps: worst_required - total_arrival,
    }
}

fn location_of(graph: &TimingGraph, netlist: &Netlist, v: NodeId) -> String {
    use crate::graph::NodeKind;
    match graph.node_kind(v) {
        NodeKind::PrimaryInput(p) => netlist.input_names()[p as usize].clone(),
        NodeKind::PrimaryOutput(p) => netlist.output_names()[p as usize].clone(),
        NodeKind::GateInput(g, pin) => format!("{}.{}", netlist.gates()[g as usize].name, pin),
        NodeKind::GateOutput(g) => format!("{}.out", netlist.gates()[g as usize].name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{CellKind, CellLibrary};
    use crate::netlist::NetlistBuilder;
    use crate::timer::Timer;

    /// Two parallel arms of different lengths into one AND gate.
    fn two_arm_timer() -> Timer {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let y = nb.add_primary_output("y");
        // Slow arm: three buffers; fast arm: one buffer.
        let s0 = nb.add_gate("s0", CellKind::Buf);
        let s1 = nb.add_gate("s1", CellKind::Buf);
        let s2 = nb.add_gate("s2", CellKind::Buf);
        let f0 = nb.add_gate("f0", CellKind::Buf);
        let join = nb.add_gate("join", CellKind::And2);
        nb.connect_to_gate(a, s0, 0).expect("valid");
        nb.connect_gates(s0, s1, 0).expect("valid");
        nb.connect_gates(s1, s2, 0).expect("valid");
        nb.connect_to_gate(b, f0, 0).expect("valid");
        nb.connect_gates(s2, join, 0).expect("valid");
        nb.connect_gates(f0, join, 1).expect("valid");
        nb.connect_to_output(join, y).expect("valid");
        let mut timer = Timer::new(nb.build().expect("valid"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        timer
    }

    fn endpoint(timer: &Timer) -> NodeId {
        NodeId(timer.graph().endpoints()[0])
    }

    #[test]
    fn first_path_matches_gba_worst_arrival() {
        let timer = two_arm_timer();
        let ep = endpoint(&timer);
        let paths = k_worst_paths(timer.graph(), timer.netlist(), timer.data(), ep, 1);
        assert_eq!(paths.len(), 1);
        let gba_worst = timer.data().slack_late(ep);
        assert!(
            (paths[0].slack_ps - gba_worst).abs() < 0.5,
            "PBA worst {} vs GBA {}",
            paths[0].slack_ps,
            gba_worst
        );
        // The worst path goes through the slow arm.
        assert!(paths[0].steps.iter().any(|s| s.location == "s2.out"));
    }

    #[test]
    fn paths_come_out_sorted_and_distinct() {
        let timer = two_arm_timer();
        let ep = endpoint(&timer);
        let paths = k_worst_paths(timer.graph(), timer.netlist(), timer.data(), ep, 8);
        assert!(paths.len() >= 2, "two arms yield at least two paths");
        for w in paths.windows(2) {
            assert!(
                w[0].slack_ps <= w[1].slack_ps + 1e-3,
                "paths must rank worst-first"
            );
        }
        // The second-ranked family of paths uses the fast arm eventually.
        assert!(paths
            .iter()
            .any(|p| p.steps.iter().any(|s| s.location == "f0.out")));
        // All paths are maximal: start at a PI.
        for p in &paths {
            assert!(p.steps[0].location == "a" || p.steps[0].location == "b");
            assert_eq!(p.steps.last().expect("non-empty").location, "y");
        }
    }

    #[test]
    fn increments_reconstruct_arrivals() {
        let timer = two_arm_timer();
        let ep = endpoint(&timer);
        for p in k_worst_paths(timer.graph(), timer.netlist(), timer.data(), ep, 4) {
            let mut acc = p.steps[0].arrival_ps;
            for s in &p.steps[1..] {
                acc += s.incr_ps;
                assert!(
                    (acc - s.arrival_ps).abs() < 0.5,
                    "arrival chain broken at {}: {} vs {}",
                    s.location,
                    acc,
                    s.arrival_ps
                );
            }
        }
    }

    #[test]
    fn k_zero_and_large_k() {
        let timer = two_arm_timer();
        let ep = endpoint(&timer);
        assert!(k_worst_paths(timer.graph(), timer.netlist(), timer.data(), ep, 0).is_empty());
        let many = k_worst_paths(timer.graph(), timer.netlist(), timer.data(), ep, 1000);
        // The two-arm cone has a handful of transition-variant paths, far
        // fewer than 1000.
        assert!(many.len() < 64);
    }

    #[test]
    fn xor_cone_expands_both_transitions() {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let y = nb.add_primary_output("y");
        let x = nb.add_gate("x0", CellKind::Xor2);
        nb.connect_to_gate(a, x, 0).expect("valid");
        nb.connect_to_gate(b, x, 1).expect("valid");
        nb.connect_to_output(x, y).expect("valid");
        let mut timer = Timer::new(nb.build().expect("valid"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        let ep = NodeId(timer.graph().endpoints()[0]);
        let paths = k_worst_paths(timer.graph(), timer.netlist(), timer.data(), ep, 16);
        // Non-unate XOR: input a via rise and fall are distinct paths.
        assert!(paths.len() >= 4, "got {}", paths.len());
    }
}
