//! A structural-Verilog subset reader and writer for [`Netlist`].
//!
//! The subset covers what gate-level netlists use: a single module with
//! scalar ports, `wire` declarations, named-port cell instances, and
//! `assign` feed-throughs:
//!
//! ```verilog
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire n0;
//!
//!   NAND2 u0 (.a(a), .b(b), .y(n0));
//!   INV u1 (.a(n0), .y(y));
//! endmodule
//! ```
//!
//! Cell pins follow this library's convention: combinational inputs are
//! `a`, `b`, `c` by position and the output is `y`; flip-flops use `d` and
//! `q`. Drive strengths and wire capacitances — which plain structural
//! Verilog cannot express — round-trip through `// gpasta:` pragma
//! comments emitted by [`write_verilog`].

use crate::library::CellKind;
use crate::netlist::{GateId, Netlist, NetlistBuilder, PinRef, PortId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_verilog`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseVerilogError {
    /// Lexing or structural failure at a line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An instance used a cell name outside the library.
    UnknownCell {
        /// The unknown cell.
        name: String,
        /// The instance using it.
        instance: String,
    },
    /// An instance pin name does not exist on its cell.
    UnknownPin {
        /// The instance.
        instance: String,
        /// The bad pin.
        pin: String,
    },
    /// A net name was referenced but never driven or declared.
    UndrivenNet {
        /// The net.
        net: String,
    },
    /// A net name was driven by two different pins.
    DoubleDrivenNet {
        /// The net.
        net: String,
    },
    /// The netlist failed semantic validation after parsing.
    Netlist(String),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::Syntax { line, message } => {
                write!(f, "verilog syntax error at line {line}: {message}")
            }
            ParseVerilogError::UnknownCell { name, instance } => {
                write!(f, "instance `{instance}` uses unknown cell `{name}`")
            }
            ParseVerilogError::UnknownPin { instance, pin } => {
                write!(f, "instance `{instance}` has no pin `{pin}`")
            }
            ParseVerilogError::UndrivenNet { net } => write!(f, "net `{net}` has no driver"),
            ParseVerilogError::DoubleDrivenNet { net } => {
                write!(f, "net `{net}` has more than one driver")
            }
            ParseVerilogError::Netlist(msg) => write!(f, "invalid netlist: {msg}"),
        }
    }
}

impl Error for ParseVerilogError {}

/// Input pin name of `kind` at position `pin`.
fn input_pin_name(kind: CellKind, pin: u8) -> &'static str {
    if kind.is_sequential() {
        "d"
    } else {
        ["a", "b", "c"][pin as usize]
    }
}

/// Output pin name of `kind`.
fn output_pin_name(kind: CellKind) -> &'static str {
    if kind.is_sequential() {
        "q"
    } else {
        "y"
    }
}

fn input_pin_index(kind: CellKind, name: &str) -> Option<u8> {
    (0..kind.num_inputs() as u8).find(|&p| input_pin_name(kind, p) == name)
}

/// Render `netlist` as structural Verilog (module `name`).
pub fn write_verilog(netlist: &Netlist, name: &str) -> String {
    let mut out = String::new();
    // Wire names must not collide with port names; pick the first prefix
    // whose generated names are all free.
    let ports: std::collections::HashSet<&str> = netlist
        .input_names()
        .iter()
        .chain(netlist.output_names())
        .map(String::as_str)
        .collect();
    let prefix = ["n", "w", "net", "gpasta_n"]
        .into_iter()
        .find(|pfx| (0..netlist.num_gates()).all(|g| !ports.contains(format!("{pfx}{g}").as_str())))
        .unwrap_or("gpasta_wire_");
    let wire_of_gate = |g: u32| format!("{prefix}{g}");

    // Header.
    let port_list: Vec<&str> = netlist
        .input_names()
        .iter()
        .chain(netlist.output_names())
        .map(String::as_str)
        .collect();
    out.push_str(&format!("module {name} ({});\n", port_list.join(", ")));
    if !netlist.input_names().is_empty() {
        out.push_str(&format!("  input {};\n", netlist.input_names().join(", ")));
    }
    if !netlist.output_names().is_empty() {
        out.push_str(&format!(
            "  output {};\n",
            netlist.output_names().join(", ")
        ));
    }
    if netlist.num_gates() > 0 {
        let wires: Vec<String> = (0..netlist.num_gates() as u32).map(wire_of_gate).collect();
        out.push_str(&format!("  wire {};\n", wires.join(", ")));
    }
    out.push('\n');

    // Resolve, for every gate input pin and PO, the name of its driving
    // net.
    let mut driver_name: HashMap<PinRef, String> = HashMap::new();
    for (i, n) in netlist.input_names().iter().enumerate() {
        driver_name.insert(PinRef::PrimaryInput(PortId(i as u32)), n.clone());
    }
    for g in 0..netlist.num_gates() as u32 {
        driver_name.insert(PinRef::GateOutput(GateId(g)), wire_of_gate(g));
    }
    let mut sink_net: HashMap<PinRef, String> = HashMap::new();
    for net in netlist.nets() {
        let dname = driver_name[&net.driver].clone();
        for &sink in &net.sinks {
            sink_net.insert(sink, dname.clone());
        }
    }

    // Instances.
    for (g, gate) in netlist.gates().iter().enumerate() {
        let g32 = g as u32;
        let mut pins = Vec::new();
        for pin in 0..gate.cell.num_inputs() as u8 {
            let net = sink_net
                .get(&PinRef::GateInput(GateId(g32), pin))
                .expect("netlist invariant: every input pin is driven");
            pins.push(format!(".{}({net})", input_pin_name(gate.cell, pin)));
        }
        pins.push(format!(
            ".{}({})",
            output_pin_name(gate.cell),
            wire_of_gate(g32)
        ));
        out.push_str(&format!(
            "  {} {} ({});\n",
            gate.cell,
            gate.name,
            pins.join(", ")
        ));
    }

    // Primary outputs.
    for (o, oname) in netlist.output_names().iter().enumerate() {
        let net = sink_net
            .get(&PinRef::PrimaryOutput(PortId(o as u32)))
            .expect("netlist invariant: every PO is driven");
        out.push_str(&format!("  assign {oname} = {net};\n"));
    }

    // Pragmas for state plain Verilog cannot carry.
    for (g, gate) in netlist.gates().iter().enumerate() {
        if gate.drive != 1.0 {
            out.push_str(&format!("  // gpasta drive {} {}\n", gate.name, gate.drive));
        }
        let _ = g;
    }
    for net in netlist.nets() {
        if net.wire_cap_ff != 0.0 {
            out.push_str(&format!(
                "  // gpasta wire_cap {} {}\n",
                driver_name[&net.driver], net.wire_cap_ff
            ));
        }
    }

    out.push_str("endmodule\n");
    out
}

fn kind_from_name(name: &str) -> Option<CellKind> {
    CellKind::all()
        .iter()
        .copied()
        .find(|k| k.to_string() == name)
}

/// Parse the structural-Verilog subset back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] for syntax problems, unknown cells or
/// pins, undriven nets, or a netlist that fails semantic validation
/// (multiple drivers, dangling pins).
pub fn parse_verilog(text: &str) -> Result<Netlist, ParseVerilogError> {
    // Collect pragmas before stripping comments.
    let mut drive_pragmas: Vec<(String, f32)> = Vec::new();
    let mut cap_pragmas: Vec<(String, f32)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(p) = line.trim().strip_prefix("// gpasta ") {
            let mut it = p.split_whitespace();
            let kind = it.next().unwrap_or("");
            let name = it.next().unwrap_or("").to_owned();
            let value: f32 =
                it.next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| ParseVerilogError::Syntax {
                        line: i + 1,
                        message: "malformed gpasta pragma".into(),
                    })?;
            match kind {
                "drive" => drive_pragmas.push((name, value)),
                "wire_cap" => cap_pragmas.push((name, value)),
                other => {
                    return Err(ParseVerilogError::Syntax {
                        line: i + 1,
                        message: format!("unknown pragma `{other}`"),
                    })
                }
            }
        }
    }

    // Statement-split the comment-free text, tracking line numbers.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if current.is_empty() {
            start_line = i + 1;
        }
        current.push_str(line);
        current.push(' ');
        // `module ...;`-style statements end with `;`; `endmodule` stands
        // alone.
        while let Some(pos) = current.find(';') {
            let stmt: String = current[..pos].trim().to_owned();
            statements.push((start_line, stmt));
            current = current[pos + 1..].trim_start().to_owned();
            start_line = i + 1;
        }
        if current.trim() == "endmodule" {
            statements.push((start_line, "endmodule".to_owned()));
            current.clear();
        }
    }
    if !current.trim().is_empty() {
        return Err(ParseVerilogError::Syntax {
            line: start_line,
            message: format!("unterminated statement `{}`", current.trim()),
        });
    }

    let mut nb = NetlistBuilder::new();
    let mut inputs: HashMap<String, PortId> = HashMap::new();
    let mut outputs: HashMap<String, PortId> = HashMap::new();
    let mut wires: Vec<String> = Vec::new();
    // net name -> driver, filled as instances are parsed.
    let mut drivers: HashMap<String, PinRef> = HashMap::new();
    // (net name, sink), resolved at the end.
    let mut sinks: Vec<(usize, String, PinRef)> = Vec::new();
    let mut port_order: Vec<String> = Vec::new();
    let mut gate_names: HashMap<String, GateId> = HashMap::new();
    let mut seen_module = false;

    for (line, stmt) in statements {
        let mut words = stmt.split_whitespace();
        match words.next() {
            Some("module") => {
                seen_module = true;
                let rest = stmt["module".len()..].trim();
                if let Some(open) = rest.find('(') {
                    let list = rest[open + 1..].trim_end_matches(')');
                    port_order = list
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
            }
            Some("input") => {
                for name in stmt["input".len()..].split(',').map(str::trim) {
                    if name.is_empty() {
                        continue;
                    }
                    let id = nb.add_primary_input(name);
                    inputs.insert(name.to_owned(), id);
                    drivers.insert(name.to_owned(), PinRef::PrimaryInput(id));
                }
            }
            Some("output") => {
                for name in stmt["output".len()..].split(',').map(str::trim) {
                    if name.is_empty() {
                        continue;
                    }
                    let id = nb.add_primary_output(name);
                    outputs.insert(name.to_owned(), id);
                }
            }
            Some("wire") => {
                for name in stmt["wire".len()..].split(',').map(str::trim) {
                    if !name.is_empty() {
                        wires.push(name.to_owned());
                    }
                }
            }
            Some("assign") => {
                // assign <output> = <net>
                let body = stmt["assign".len()..].trim();
                let mut parts = body.splitn(2, '=');
                let lhs = parts.next().unwrap_or("").trim();
                let rhs = parts
                    .next()
                    .ok_or_else(|| ParseVerilogError::Syntax {
                        line,
                        message: "assign without `=`".into(),
                    })?
                    .trim();
                let port = outputs.get(lhs).ok_or_else(|| ParseVerilogError::Syntax {
                    line,
                    message: format!("assign target `{lhs}` is not an output"),
                })?;
                sinks.push((line, rhs.to_owned(), PinRef::PrimaryOutput(*port)));
            }
            Some("endmodule") => break,
            Some(cell_name) => {
                // CELL instance ( .pin(net), ... )
                let kind =
                    kind_from_name(cell_name).ok_or_else(|| ParseVerilogError::UnknownCell {
                        name: cell_name.to_owned(),
                        instance: words.next().unwrap_or("?").to_owned(),
                    })?;
                let rest = stmt[cell_name.len()..].trim();
                let open = rest.find('(').ok_or_else(|| ParseVerilogError::Syntax {
                    line,
                    message: "instance without a port list".into(),
                })?;
                let inst_name = rest[..open].trim().to_owned();
                if inst_name.is_empty() {
                    return Err(ParseVerilogError::Syntax {
                        line,
                        message: "instance without a name".into(),
                    });
                }
                let gate = nb.add_gate(&inst_name, kind);
                gate_names.insert(inst_name.clone(), gate);

                let list = rest[open + 1..].trim_end_matches(')');
                for conn in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let conn = conn
                        .strip_prefix('.')
                        .ok_or_else(|| ParseVerilogError::Syntax {
                            line,
                            message: format!("expected named connection, got `{conn}`"),
                        })?;
                    let p = conn.find('(').ok_or_else(|| ParseVerilogError::Syntax {
                        line,
                        message: format!("malformed connection `.{conn}`"),
                    })?;
                    let pin_name = conn[..p].trim();
                    let net = conn[p + 1..].trim_end_matches(')').trim().to_owned();
                    if pin_name == output_pin_name(kind) {
                        if drivers
                            .insert(net.clone(), PinRef::GateOutput(gate))
                            .is_some()
                        {
                            return Err(ParseVerilogError::DoubleDrivenNet { net });
                        }
                    } else if let Some(idx) = input_pin_index(kind, pin_name) {
                        sinks.push((line, net, PinRef::GateInput(gate, idx)));
                    } else {
                        return Err(ParseVerilogError::UnknownPin {
                            instance: inst_name.clone(),
                            pin: pin_name.to_owned(),
                        });
                    }
                }
            }
            None => {}
        }
    }
    if !seen_module {
        return Err(ParseVerilogError::Syntax {
            line: 1,
            message: "no module declaration".into(),
        });
    }
    let _ = (wires, port_order); // declarations are informational in this subset

    // Hand-written netlists often drive an output port directly from an
    // instance pin (`.y(y)`) instead of via `assign`; synthesise the
    // implied output connection for any output that has a driver under its
    // own name but no explicit sink yet.
    for (name, &port) in &outputs {
        let already_connected = sinks
            .iter()
            .any(|&(_, _, s)| s == PinRef::PrimaryOutput(port));
        if !already_connected {
            if let Some(PinRef::GateOutput(_)) = drivers.get(name) {
                sinks.push((0, name.clone(), PinRef::PrimaryOutput(port)));
            }
        }
    }

    // Resolve sinks against drivers.
    for (line, net, sink) in sinks {
        let driver = drivers
            .get(&net)
            .copied()
            .ok_or(ParseVerilogError::UndrivenNet { net: net.clone() })?;
        let _ = line;
        match (driver, sink) {
            (PinRef::PrimaryInput(p), PinRef::GateInput(g, pin)) => {
                nb.connect_to_gate(p, g, pin)
                    .map_err(|e| ParseVerilogError::Netlist(e.to_string()))?;
            }
            (PinRef::GateOutput(d), PinRef::GateInput(g, pin)) => {
                nb.connect_gates(d, g, pin)
                    .map_err(|e| ParseVerilogError::Netlist(e.to_string()))?;
            }
            (PinRef::GateOutput(d), PinRef::PrimaryOutput(o)) => {
                nb.connect_to_output(d, o)
                    .map_err(|e| ParseVerilogError::Netlist(e.to_string()))?;
            }
            (PinRef::PrimaryInput(p), PinRef::PrimaryOutput(o)) => {
                nb.connect_input_to_output(p, o);
            }
            other => {
                return Err(ParseVerilogError::Netlist(format!(
                    "unsupported connection {other:?}"
                )))
            }
        }
    }

    // Apply pragmas.
    for (net, cap) in cap_pragmas {
        let driver = drivers
            .get(&net)
            .copied()
            .ok_or(ParseVerilogError::UndrivenNet { net: net.clone() })?;
        nb.add_wire_cap(driver, cap);
    }
    let mut netlist = nb
        .build()
        .map_err(|e| ParseVerilogError::Netlist(e.to_string()))?;
    for (inst, drive) in drive_pragmas {
        let gate = gate_names.get(&inst).ok_or_else(|| {
            ParseVerilogError::Netlist(format!("pragma names unknown instance `{inst}`"))
        })?;
        netlist.set_drive(*gate, drive);
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;
    use crate::netlist::NetlistBuilder;

    fn sample() -> Netlist {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let b = nb.add_primary_input("b");
        let y = nb.add_primary_output("y");
        let q = nb.add_primary_output("q_out");
        let g1 = nb.add_gate("u1", CellKind::Nand2);
        let g2 = nb.add_gate("u2", CellKind::Inv);
        let ff = nb.add_gate("ff1", CellKind::Dff);
        nb.connect_to_gate(a, g1, 0).expect("valid");
        nb.connect_to_gate(b, g1, 1).expect("valid");
        nb.connect_gates(g1, g2, 0).expect("valid");
        nb.connect_to_output(g2, y).expect("valid");
        nb.connect_gates(g2, ff, 0).expect("valid");
        nb.connect_to_output(ff, q).expect("valid");
        nb.add_wire_cap(PinRef::GateOutput(g1), 2.5);
        let mut n = nb.build().expect("valid");
        n.set_drive(g2, 2.0);
        n
    }

    #[test]
    fn round_trips_a_netlist() {
        let n = sample();
        let text = write_verilog(&n, "top");
        let back = parse_verilog(&text).expect("own output parses");
        assert_eq!(n, back);
    }

    #[test]
    fn output_contains_expected_constructs() {
        let text = write_verilog(&sample(), "top");
        assert!(text.contains("module top (a, b, y, q_out);"));
        assert!(text.contains("input a, b;"));
        assert!(text.contains("NAND2 u1 (.a(a), .b(b), .y(n0));"));
        assert!(text.contains("DFF ff1 (.d(n1), .q(n2));"));
        assert!(text.contains("assign y = n1;"));
        assert!(text.contains("// gpasta drive u2 2"));
        assert!(text.contains("// gpasta wire_cap n0 2.5"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn round_trip_preserves_timing_behaviour() {
        use crate::timer::Timer;
        let n = sample();
        let text = write_verilog(&n, "top");
        let back = parse_verilog(&text).expect("parses");

        let mut t1 = Timer::new(n, CellLibrary::typical());
        t1.update_timing().run_sequential();
        let mut t2 = Timer::new(back, CellLibrary::typical());
        t2.update_timing().run_sequential();
        assert_eq!(t1.report(3).wns_ps, t2.report(3).wns_ps);
    }

    #[test]
    fn generated_circuits_round_trip() {
        // A bigger, machine-generated netlist must survive the trip too.
        let mut nb = NetlistBuilder::new();
        let pis: Vec<_> = (0..6)
            .map(|i| nb.add_primary_input(format!("in{i}")))
            .collect();
        let mut prev: Vec<GateId> = Vec::new();
        for (i, &pi) in pis.iter().enumerate() {
            let g = nb.add_gate(format!("g{i}"), CellKind::Buf);
            nb.connect_to_gate(pi, g, 0).expect("valid");
            prev.push(g);
        }
        for i in 0..8 {
            let g = nb.add_gate(format!("x{i}"), CellKind::Xor2);
            nb.connect_gates(prev[i % prev.len()], g, 0).expect("valid");
            nb.connect_gates(prev[(i + 1) % prev.len()], g, 1)
                .expect("valid");
            prev.push(g);
        }
        let po = nb.add_primary_output("out");
        nb.connect_to_output(*prev.last().expect("gates"), po)
            .expect("valid");
        let n = nb.build().expect("valid");

        let back = parse_verilog(&write_verilog(&n, "gen")).expect("parses");
        assert_eq!(n, back);
    }

    #[test]
    fn unknown_cell_and_pin_rejected() {
        let text = "module t (y);\n output y;\n FROB u1 (.y(y));\nendmodule\n";
        assert!(matches!(
            parse_verilog(text),
            Err(ParseVerilogError::UnknownCell { .. })
        ));
        let text = "module t (a, y);\n input a;\n output y;\n wire n0;\n INV u1 (.bogus(a), .y(n0));\n assign y = n0;\nendmodule\n";
        assert!(matches!(
            parse_verilog(text),
            Err(ParseVerilogError::UnknownPin { .. })
        ));
    }

    #[test]
    fn undriven_net_rejected() {
        let text = "module t (y);\n output y;\n wire n0;\n INV u1 (.a(nowhere), .y(n0));\n assign y = n0;\nendmodule\n";
        assert!(matches!(
            parse_verilog(text),
            Err(ParseVerilogError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn missing_module_rejected() {
        assert!(matches!(
            parse_verilog("wire n0;\n"),
            Err(ParseVerilogError::Syntax { .. })
        ));
    }

    #[test]
    fn direct_output_connection_without_assign() {
        // Common hand-written idiom: the instance drives the output port
        // directly.
        let text = "module t (a, y);\n input a;\n output y;\n INV u1 (.a(a), .y(y));\nendmodule\n";
        let n = parse_verilog(text).expect("direct output connection parses");
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.num_nets(), 2);
        // And it analyses.
        let mut timer = crate::timer::Timer::new(n, CellLibrary::typical());
        timer.update_timing().run_sequential();
        assert_eq!(timer.report(1).num_endpoints, 1);
    }

    #[test]
    fn double_driven_net_rejected() {
        let text = "module t (a, y);\n input a;\n output y;\n wire n0;\n INV u1 (.a(a), .y(n0));\n INV u2 (.a(a), .y(n0));\n assign y = n0;\nendmodule\n";
        assert!(matches!(
            parse_verilog(text),
            Err(ParseVerilogError::DoubleDrivenNet { .. })
        ));
    }

    #[test]
    fn wire_names_avoid_port_collisions() {
        // Ports named n0/n1 must not collide with generated wires.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("n0");
        let y = nb.add_primary_output("n1");
        let g = nb.add_gate("u1", CellKind::Inv);
        nb.connect_to_gate(a, g, 0).expect("valid");
        nb.connect_to_output(g, y).expect("valid");
        let n = nb.build().expect("valid");
        let text = write_verilog(&n, "t");
        let back = parse_verilog(&text).expect("parses");
        assert_eq!(n, back, "collision-safe naming must round trip");
    }

    #[test]
    fn feed_through_assign() {
        let text = "module t (a, y);\n input a;\n output y;\n assign y = a;\nendmodule\n";
        let n = parse_verilog(text).expect("feed-through parses");
        assert_eq!(n.num_gates(), 0);
        assert_eq!(n.num_nets(), 1);
    }

    #[test]
    fn multiline_statements_parse() {
        let text = "module t (a,\n          y);\n input a;\n output y;\n wire n0;\n INV u1 (.a(a),\n         .y(n0));\n assign y = n0;\nendmodule\n";
        let n = parse_verilog(text).expect("multi-line instance parses");
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn errors_display_cleanly() {
        let e = ParseVerilogError::UnknownPin {
            instance: "u1".into(),
            pin: "z".into(),
        };
        assert!(e.to_string().contains("u1"));
        assert!(e.to_string().contains("z"));
    }
}
