//! Critical-path tracing.
//!
//! After graph-based analysis, the most negative endpoint slack identifies
//! *where* timing fails; path tracing reconstructs *why*, walking backward
//! from an endpoint along the arcs that produced the late arrival. This is
//! the diagnostic output every STA tool provides alongside WNS/TNS.

use crate::analysis::{Mode, TimingData, Tr};
use crate::graph::{ArcKind, NodeId, NodeKind, TimingGraph};
use crate::library::CellLibrary;
use crate::netlist::Netlist;
use std::fmt;

/// One hop of a traced path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The node reached by this step.
    pub node: NodeId,
    /// Human-readable location (port or `gate.pin`).
    pub location: String,
    /// Transition direction at this node.
    pub rise: bool,
    /// Late-mode arrival time at this node (ps).
    pub arrival_ps: f32,
    /// Delay of the arc into this node (ps); zero for the startpoint.
    pub incr_ps: f32,
}

/// A complete worst path from a startpoint to an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Steps from startpoint (first) to endpoint (last).
    pub steps: Vec<PathStep>,
    /// Endpoint slack (ps).
    pub slack_ps: f32,
}

impl fmt::Display for TimingPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "worst path (slack {:.1} ps):", self.slack_ps)?;
        for s in &self.steps {
            writeln!(
                f,
                "  {:<24} {} arrival {:>9.1} ps (+{:.1})",
                s.location,
                if s.rise { "^" } else { "v" },
                s.arrival_ps,
                s.incr_ps
            )?;
        }
        Ok(())
    }
}

/// Trace the late-mode worst path ending at `endpoint`.
///
/// Walks backward choosing, at each node, the fan-in arc and input
/// transition whose `arrival + delay` reproduces the node's recorded late
/// arrival (within rounding), i.e. the path the max-merge actually took.
///
/// Returns `None` if `endpoint` has no fan-in (an isolated node).
pub fn trace_worst_path(
    graph: &TimingGraph,
    netlist: &Netlist,
    library: &CellLibrary,
    data: &TimingData,
    endpoint: NodeId,
) -> Option<TimingPath> {
    // Pick the endpoint's worst transition.
    let (mut tr, _) = [Tr::Rise, Tr::Fall]
        .into_iter()
        .map(|tr| {
            let slack =
                data.required(endpoint, tr, Mode::Late) - data.arrival(endpoint, tr, Mode::Late);
            (tr, slack)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))?;
    let slack_ps = data.required(endpoint, tr, Mode::Late) - data.arrival(endpoint, tr, Mode::Late);

    let mut rev_steps = Vec::new();
    let mut node = endpoint;
    let mut incr_out = 0.0f32;
    loop {
        rev_steps.push(PathStep {
            node,
            location: location_of(graph, netlist, node),
            rise: matches!(tr, Tr::Rise),
            arrival_ps: data.arrival(node, tr, Mode::Late),
            incr_ps: incr_out,
        });
        if rev_steps.len() > graph.num_nodes() {
            debug_assert!(false, "path longer than the graph");
            break;
        }

        // Find the fan-in arc that realised this arrival.
        let arrival = data.arrival(node, tr, Mode::Late);
        let mut best: Option<(NodeId, Tr, f32, f32)> = None; // (from, tr_in, err, delay)
        for &a in graph.fanin(node) {
            let arc = graph.arc(a);
            let from = arc.from;
            let sense = match arc.kind {
                ArcKind::Net { .. } => crate::library::TimingSense::Positive,
                ArcKind::Cell { gate } => netlist.gates()[gate as usize].cell.sense(),
            };
            let candidates: &[Tr] = match sense {
                crate::library::TimingSense::Positive => &[tr],
                crate::library::TimingSense::Negative => match tr {
                    Tr::Rise => &[Tr::Fall],
                    Tr::Fall => &[Tr::Rise],
                },
                crate::library::TimingSense::NonUnate => &[Tr::Rise, Tr::Fall],
            };
            for &tr_in in candidates {
                let delay = arc_delay_late(data, a, tr);
                let err = (data.arrival(from, tr_in, Mode::Late) + delay - arrival).abs();
                if best.is_none_or(|(_, _, e, _)| err < e) {
                    best = Some((from, tr_in, err, delay));
                }
            }
        }
        match best {
            Some((from, tr_in, _err, delay)) => {
                node = from;
                tr = tr_in;
                incr_out = delay;
            }
            None => break, // startpoint reached
        }
    }

    let _ = library; // names come from the netlist; library kept for future per-arc annotation

    // The walk recorded, at each node, the delay of the arc *leaving* it
    // towards the endpoint; shift so each step carries the delay of the
    // arc *entering* it (the startpoint has none).
    for i in 0..rev_steps.len() {
        rev_steps[i].incr_ps = if i + 1 < rev_steps.len() {
            rev_steps[i + 1].incr_ps
        } else {
            0.0
        };
    }
    rev_steps.reverse();
    Some(TimingPath {
        steps: rev_steps,
        slack_ps,
    })
}

/// Late-mode cached delay of arc `a` at output transition `tr`.
fn arc_delay_late(data: &TimingData, a: u32, tr: Tr) -> f32 {
    data.arc_delay_public(a, tr)
}

fn location_of(graph: &TimingGraph, netlist: &Netlist, v: NodeId) -> String {
    match graph.node_kind(v) {
        NodeKind::PrimaryInput(p) => netlist.input_names()[p as usize].clone(),
        NodeKind::PrimaryOutput(p) => netlist.output_names()[p as usize].clone(),
        NodeKind::GateInput(g, pin) => format!("{}.{}", netlist.gates()[g as usize].name, pin),
        NodeKind::GateOutput(g) => format!("{}.out", netlist.gates()[g as usize].name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::timer::Timer;

    fn traced_chain(len: usize) -> (Timer, TimingPath) {
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y = nb.add_primary_output("y");
        let mut prev = None;
        for i in 0..len {
            let g = nb.add_gate(format!("u{i}"), CellKind::Buf);
            match prev {
                None => nb.connect_to_gate(a, g, 0).expect("valid"),
                Some(p) => nb.connect_gates(p, g, 0).expect("valid"),
            }
            prev = Some(g);
        }
        nb.connect_to_output(prev.expect("len > 0"), y)
            .expect("valid");
        let mut timer = Timer::new(nb.build().expect("valid"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        let endpoint = NodeId(timer.graph().endpoints()[0]);
        let path = trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &CellLibrary::typical(),
            timer.data(),
            endpoint,
        )
        .expect("endpoint has fan-in");
        (timer, path)
    }

    #[test]
    fn chain_path_visits_every_stage() {
        let (_timer, path) = traced_chain(4);
        // PI, 4x (gate in, gate out), PO = 10 nodes.
        assert_eq!(path.steps.len(), 10);
        assert_eq!(path.steps[0].location, "a");
        assert_eq!(path.steps.last().expect("non-empty").location, "y");
    }

    #[test]
    fn arrivals_are_monotone_along_the_path() {
        let (_timer, path) = traced_chain(6);
        for w in path.steps.windows(2) {
            assert!(
                w[1].arrival_ps >= w[0].arrival_ps,
                "arrival dropped along the worst path"
            );
        }
        assert_eq!(path.steps[0].incr_ps, 0.0, "startpoint has no incr");
    }

    #[test]
    fn increments_sum_to_the_endpoint_arrival() {
        let (_timer, path) = traced_chain(5);
        let sum: f32 = path.steps.iter().map(|s| s.incr_ps).sum();
        let end = path.steps.last().expect("non-empty").arrival_ps;
        let start = path.steps[0].arrival_ps;
        assert!(
            (start + sum - end).abs() < 0.5,
            "increments {sum} + start {start} must reach {end}"
        );
    }

    #[test]
    fn worst_path_follows_the_slower_branch() {
        // Fork: a -> u_fast(BUF) -> y ; a -> u_s0 -> u_s1 -> u_s2 -> y2.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y_fast = nb.add_primary_output("y_fast");
        let y_slow = nb.add_primary_output("y_slow");
        let fast = nb.add_gate("fast", CellKind::Buf);
        nb.connect_to_gate(a, fast, 0).expect("valid");
        nb.connect_to_output(fast, y_fast).expect("valid");
        let mut prev = None;
        for i in 0..3 {
            let g = nb.add_gate(format!("slow{i}"), CellKind::Buf);
            match prev {
                None => nb.connect_to_gate(a, g, 0).expect("valid"),
                Some(p) => nb.connect_gates(p, g, 0).expect("valid"),
            }
            prev = Some(g);
        }
        nb.connect_to_output(prev.expect("built"), y_slow)
            .expect("valid");

        let mut timer = Timer::new(nb.build().expect("valid"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        let report = timer.report(1);
        assert_eq!(report.worst[0].name, "y_slow");
        let path = trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &CellLibrary::typical(),
            timer.data(),
            report.worst[0].node,
        )
        .expect("traceable");
        let locations: Vec<&str> = path.steps.iter().map(|s| s.location.as_str()).collect();
        assert!(
            locations.contains(&"slow2.out"),
            "path must go through the slow chain"
        );
        assert!(
            !locations.contains(&"fast.out"),
            "path must avoid the fast branch"
        );
    }

    #[test]
    fn display_renders_steps() {
        let (_timer, path) = traced_chain(2);
        let s = path.to_string();
        assert!(s.contains("worst path"));
        assert!(s.contains("arrival"));
    }

    #[test]
    fn negative_unate_path_alternates_transitions() {
        // INV chain: the worst path alternates rise/fall through inverters.
        let mut nb = NetlistBuilder::new();
        let a = nb.add_primary_input("a");
        let y = nb.add_primary_output("y");
        let g0 = nb.add_gate("i0", CellKind::Inv);
        let g1 = nb.add_gate("i1", CellKind::Inv);
        nb.connect_to_gate(a, g0, 0).expect("valid");
        nb.connect_gates(g0, g1, 0).expect("valid");
        nb.connect_to_output(g1, y).expect("valid");
        let mut timer = Timer::new(nb.build().expect("valid"), CellLibrary::typical());
        timer.update_timing().run_sequential();
        let endpoint = NodeId(timer.graph().endpoints()[0]);
        let path = trace_worst_path(
            timer.graph(),
            timer.netlist(),
            &CellLibrary::typical(),
            timer.data(),
            endpoint,
        )
        .expect("traceable");
        // Transitions flip across each inverter's cell arc: i0.0 -> i0.out.
        let at = |loc: &str| {
            path.steps
                .iter()
                .find(|s| s.location == loc)
                .unwrap_or_else(|| panic!("{loc} on path"))
                .rise
        };
        assert_ne!(at("i0.0"), at("i0.out"), "inverter flips the edge");
        assert_ne!(at("i1.0"), at("i1.out"), "inverter flips the edge");
    }
}
