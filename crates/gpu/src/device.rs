//! The simulated GPU device: bulk-synchronous kernel launches over scoped
//! worker threads.

use gpasta_check::sync::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::sanitizer::{self, SanitizerCore, SanitizerReport, Schedule, Shadow};
use crate::{AtomicBuf, AtomicBuf64};

/// The simulated GPU device.
///
/// [`Device::launch`] semantics match a CUDA flat-grid kernel launch
/// followed by `cudaDeviceSynchronize()`: the kernel closure is invoked once
/// per global thread index `gid in 0..n`, concurrently across the device's
/// workers, and `launch` returns only after every index has been processed.
/// Workers self-schedule chunks of the index range through a shared cursor,
/// mirroring how GPU thread blocks are dispatched to SMs in arbitrary order
/// — which is exactly the source of the non-determinism that the paper's
/// Algorithm 2 eliminates.
///
/// With one worker the device degenerates to an in-place sequential loop —
/// this is the "seq-G-PASTA" execution mode and also the fast path on
/// single-core hosts.
///
/// A device built with [`Device::sanitized`] additionally instruments every
/// buffer allocated through its `buf_*` helpers with shadow memory (see the
/// [sanitizer](crate::sanitizer) module) and can replay launches under a
/// perturbed [`Schedule`].
#[derive(Debug, Clone)]
pub struct Device {
    num_threads: usize,
    schedule: Schedule,
    sanitizer: Option<Arc<SanitizerCore>>,
}

/// Grids smaller than this run inline: spawning workers costs more than the
/// work itself.
const INLINE_THRESHOLD: u32 = 64;

impl Device {
    /// Create a device with `num_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "a device needs at least one worker");
        Device {
            num_threads,
            schedule: Schedule::Forward,
            sanitizer: None,
        }
    }

    /// Create a single-worker device (sequential execution).
    pub fn single() -> Self {
        Device::new(1)
    }

    /// Create a device sized to the host's available parallelism.
    pub fn host_parallel() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device::new(n)
    }

    /// Create a sanitized device: buffers allocated through the `buf_*`
    /// helpers get shadow memory, and [`Device::sanitizer_report`] returns
    /// the accumulated findings.
    pub fn sanitized(num_threads: usize) -> Self {
        let mut dev = Device::new(num_threads);
        dev.sanitizer = Some(Arc::new(SanitizerCore::new()));
        dev
    }

    /// Set the gid iteration [`Schedule`] (interleaving perturbation used by
    /// the determinism audit).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The gid iteration schedule.
    #[inline]
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Whether this device carries a sanitizer.
    #[inline]
    pub fn is_sanitized(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Snapshot the sanitizer findings, or `None` for a plain device.
    /// Clones of a device share one sanitizer, so reports accumulate across
    /// clones.
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer.as_ref().map(|s| s.report())
    }

    /// Number of workers.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    fn attach(&self, mut buf: AtomicBuf, name: &str, pre_initialized: bool) -> AtomicBuf {
        if let Some(core) = &self.sanitizer {
            buf.set_shadow(Arc::new(Shadow::new(
                name,
                core.clone(),
                buf.len(),
                pre_initialized,
            )));
        }
        buf
    }

    fn attach64(&self, mut buf: AtomicBuf64, name: &str, pre_initialized: bool) -> AtomicBuf64 {
        if let Some(core) = &self.sanitizer {
            buf.set_shadow(Arc::new(Shadow::new(
                name,
                core.clone(),
                buf.len(),
                pre_initialized,
            )));
        }
        buf
    }

    /// Allocate a named, zero-initialised buffer (`cudaMalloc` + `cudaMemset`).
    /// On a plain device this is just [`AtomicBuf::zeroed`]; on a sanitized
    /// device the buffer is instrumented and born initialised.
    pub fn buf_zeroed(&self, name: &str, len: usize) -> AtomicBuf {
        self.attach(AtomicBuf::zeroed(len), name, true)
    }

    /// Allocate a named buffer filled with `value`; born initialised.
    pub fn buf_filled(&self, name: &str, len: usize, value: u32) -> AtomicBuf {
        self.attach(AtomicBuf::filled(len, value), name, true)
    }

    /// Allocate a named buffer copied from a host slice (`cudaMemcpy` H2D);
    /// born initialised.
    pub fn buf_from_slice(&self, name: &str, host: &[u32]) -> AtomicBuf {
        self.attach(AtomicBuf::from_slice(host), name, true)
    }

    /// Allocate a named *uninitialised* buffer — the moral equivalent of a
    /// bare `cudaMalloc`. The contents still read as deterministic zeros
    /// (this is a simulator, not UB), but on a sanitized device initcheck
    /// flags any device-side read of a word that was never written.
    pub fn buf_uninit(&self, name: &str, len: usize) -> AtomicBuf {
        self.attach(AtomicBuf::zeroed(len), name, false)
    }

    /// Allocate a named, zero-initialised 64-bit buffer; born initialised.
    pub fn buf64_zeroed(&self, name: &str, len: usize) -> AtomicBuf64 {
        self.attach64(AtomicBuf64::zeroed(len), name, true)
    }

    /// Allocate a named 64-bit buffer copied from a host slice; born
    /// initialised.
    pub fn buf64_from_slice(&self, name: &str, host: &[u64]) -> AtomicBuf64 {
        self.attach64(AtomicBuf64::from_slice(host), name, true)
    }

    /// Allocate a named *uninitialised* 64-bit buffer; see
    /// [`Device::buf_uninit`].
    pub fn buf64_uninit(&self, name: &str, len: usize) -> AtomicBuf64 {
        self.attach64(AtomicBuf64::zeroed(len), name, false)
    }

    /// Launch a flat grid of `n` logical GPU threads running `kernel` and
    /// block until all of them finish.
    ///
    /// The kernel may borrow host data (scoped workers); share mutable
    /// device state through [`AtomicBuf`](crate::AtomicBuf) handles.
    pub fn launch<F>(&self, n: u32, kernel: F)
    where
        F: Fn(u32) + Sync,
    {
        if n == 0 {
            return;
        }
        let epoch = self.sanitizer.as_ref().map(|s| s.begin_launch());
        if self.num_threads == 1 || n < INLINE_THRESHOLD {
            // Inline fast path: kernels run on the calling (host) thread.
            // Under the sanitizer it still tags every access with the
            // launch epoch and gid, and must drop back to host context
            // afterwards so later host code is not mis-attributed.
            self.run_range(&kernel, 0, n, epoch);
            if epoch.is_some() {
                sanitizer::clear_ctx();
            }
            return;
        }

        let grain = grain_size(n, self.num_threads);
        let cursor = AtomicU32::new(0);
        let kernel = &kernel;
        let cursor = &cursor;
        std::thread::scope(|s| {
            for _ in 0..self.num_threads {
                s.spawn(move || loop {
                    let claimed = cursor.fetch_add(grain, Ordering::Relaxed);
                    if claimed >= n {
                        break;
                    }
                    let len = grain.min(n - claimed);
                    // Reverse mirrors the claim order too, so the global
                    // visit order is (approximately) descending.
                    let start = match self.schedule {
                        Schedule::Reverse => n - claimed - len,
                        _ => claimed,
                    };
                    self.run_range(kernel, start, start + len, epoch);
                });
            }
        });
    }

    /// Run one scheduled chunk `[start, end)` of a launch, honouring the
    /// device [`Schedule`] and, when sanitized, tagging each kernel call
    /// with its `(epoch, gid)` context.
    fn run_range<F>(&self, kernel: &F, start: u32, end: u32, epoch: Option<u64>)
    where
        F: Fn(u32),
    {
        let call = |gid: u32| {
            if let Some(e) = epoch {
                sanitizer::set_ctx(e, gid);
            }
            kernel(gid);
        };
        match self.schedule {
            Schedule::Forward => {
                for gid in start..end {
                    call(gid);
                }
            }
            Schedule::Reverse => {
                for gid in (start..end).rev() {
                    call(gid);
                }
            }
            Schedule::Interleaved => {
                let mut gid = start;
                while gid < end {
                    call(gid);
                    gid += 2;
                }
                let mut gid = start + 1;
                while gid < end {
                    call(gid);
                    gid += 2;
                }
            }
        }
    }

    /// CUDA-style two-level launch: `grid_dim` blocks of `block_dim`
    /// logical threads; the kernel receives `(block_idx, thread_idx)`.
    ///
    /// Blocks are distributed across the device workers in arbitrary order
    /// (like thread blocks across SMs) while the threads *within* a block
    /// run sequentially on one worker — the bulk-synchronous simplification
    /// of warp execution. Use this when a kernel's index math is written in
    /// block/thread terms; [`launch`](Device::launch) covers flat grids.
    /// Under the sanitizer, all threads of one block share the block's gid:
    /// intra-block accesses are program-ordered and never race each other.
    pub fn launch_blocks<F>(&self, grid_dim: u32, block_dim: u32, kernel: F)
    where
        F: Fn(u32, u32) + Sync,
    {
        if block_dim == 0 {
            return;
        }
        self.launch(grid_dim, |block| {
            for thread in 0..block_dim {
                kernel(block, thread);
            }
        });
    }

    /// Convenience: launch and time the kernel under `name` in `timer`.
    pub fn launch_timed<F>(&self, timer: &crate::KernelTimer, name: &str, n: u32, kernel: F)
    where
        F: Fn(u32) + Sync,
    {
        let start = std::time::Instant::now();
        self.launch(n, kernel);
        timer.record(name, start.elapsed());
    }
}

/// Chunk size for dynamic self-scheduling: small enough to balance load,
/// large enough to amortise the cursor atomic.
fn grain_size(n: u32, threads: usize) -> u32 {
    let target_chunks = (threads as u32) * 8;
    (n / target_chunks).clamp(1, 8192)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtomicBuf;

    #[test]
    fn single_worker_runs_inline() {
        let dev = Device::single();
        assert_eq!(dev.num_threads(), 1);
        let buf = AtomicBuf::zeroed(100);
        dev.launch(100, |gid| buf.store(gid as usize, gid + 1));
        assert_eq!(buf.load(99), 100);
        assert_eq!(buf.load(0), 1);
    }

    #[test]
    fn multi_worker_covers_every_gid_exactly_once() {
        let dev = Device::new(4);
        let buf = AtomicBuf::zeroed(100_000);
        dev.launch(100_000, |gid| {
            buf.fetch_add(gid as usize, 1);
        });
        assert!(
            buf.to_vec().iter().all(|&v| v == 1),
            "each gid ran exactly once"
        );
    }

    #[test]
    fn reverse_and_interleaved_schedules_cover_every_gid() {
        for sched in Schedule::ALL {
            for workers in [1, 4] {
                let dev = Device::new(workers).with_schedule(sched);
                assert_eq!(dev.schedule(), sched);
                let buf = AtomicBuf::zeroed(10_000);
                dev.launch(10_000, |gid| {
                    buf.fetch_add(gid as usize, 1);
                });
                assert!(
                    buf.to_vec().iter().all(|&v| v == 1),
                    "schedule {sched:?} with {workers} workers must visit every gid once"
                );
            }
        }
    }

    #[test]
    fn reverse_schedule_flips_sequential_order() {
        // At one worker, Reverse visits gids descending: a last-writer-wins
        // cell ends up holding the *first* gid instead of the last.
        let fwd = Device::single();
        let rev = Device::single().with_schedule(Schedule::Reverse);
        let a = AtomicBuf::zeroed(1);
        fwd.launch(100, |gid| a.store(0, gid));
        assert_eq!(a.load(0), 99);
        let b = AtomicBuf::zeroed(1);
        rev.launch(100, |gid| b.store(0, gid));
        assert_eq!(b.load(0), 0);
    }

    #[test]
    fn kernels_may_borrow_host_data() {
        let dev = Device::new(2);
        let input: Vec<u32> = (0..10_000).collect();
        let out = AtomicBuf::zeroed(10_000);
        dev.launch(10_000, |gid| {
            out.store(gid as usize, input[gid as usize] * 2);
        });
        assert_eq!(out.load(7_777), 15_554);
    }

    #[test]
    fn sequential_launches_see_prior_results() {
        // The end-of-launch barrier provides the happens-before edge.
        let dev = Device::new(3);
        let buf = AtomicBuf::zeroed(1000);
        dev.launch(1000, |gid| buf.store(gid as usize, 2));
        let sum = AtomicBuf::zeroed(1);
        dev.launch(1000, |gid| {
            sum.fetch_add(0, buf.load(gid as usize));
        });
        assert_eq!(sum.load(0), 2000);
    }

    #[test]
    fn zero_sized_launch_is_a_noop() {
        let dev = Device::new(2);
        dev.launch(0, |_| panic!("kernel must not run"));
    }

    #[test]
    fn atomic_add_counts_all_threads() {
        let dev = Device::new(4);
        let counter = AtomicBuf::zeroed(1);
        dev.launch(54_321, |_| {
            counter.fetch_add(0, 1);
        });
        assert_eq!(counter.load(0), 54_321);
    }

    #[test]
    fn many_launches_are_cheap_enough() {
        let dev = Device::new(2);
        let counter = AtomicBuf::zeroed(1);
        for _ in 0..200 {
            dev.launch(10, |_| {
                counter.fetch_add(0, 1);
            });
        }
        assert_eq!(counter.load(0), 2000);
    }

    #[test]
    fn grain_size_bounds() {
        assert_eq!(grain_size(1, 8), 1);
        assert!(grain_size(1_000_000, 8) <= 8192);
        assert!(grain_size(100, 4) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Device::new(0);
    }

    #[test]
    fn host_parallel_has_at_least_one_thread() {
        let dev = Device::host_parallel();
        assert!(dev.num_threads() >= 1);
    }

    #[test]
    fn debug_shows_thread_count() {
        let dev = Device::new(2);
        assert!(format!("{dev:?}").contains("num_threads: 2"));
    }

    #[test]
    fn plain_device_buffers_are_uninstrumented() {
        let dev = Device::new(2);
        assert!(!dev.is_sanitized());
        assert!(dev.sanitizer_report().is_none());
        let buf = dev.buf_zeroed("scratch", 8);
        assert!(buf.name().is_none(), "no shadow without a sanitizer");
        let buf64 = dev.buf64_zeroed("keys", 8);
        assert!(buf64.name().is_none());
    }

    #[test]
    fn sanitized_device_names_buffers() {
        let dev = Device::sanitized(2);
        assert!(dev.is_sanitized());
        assert_eq!(dev.buf_zeroed("a", 4).name(), Some("a"));
        assert_eq!(dev.buf_filled("b", 4, 1).name(), Some("b"));
        assert_eq!(dev.buf_from_slice("c", &[1]).name(), Some("c"));
        assert_eq!(dev.buf_uninit("d", 4).name(), Some("d"));
        assert_eq!(dev.buf64_zeroed("e", 4).name(), Some("e"));
        assert_eq!(dev.buf64_from_slice("f", &[1]).name(), Some("f"));
        assert_eq!(dev.buf64_uninit("g", 4).name(), Some("g"));
        assert!(dev.sanitizer_report().unwrap().is_clean());
    }

    #[test]
    fn block_launch_covers_grid_times_block() {
        let dev = Device::new(2);
        let buf = AtomicBuf::zeroed(12 * 7);
        dev.launch_blocks(12, 7, |b, t| {
            buf.fetch_add((b * 7 + t) as usize, 1);
        });
        assert!(buf.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn block_launch_threads_run_in_order_within_a_block() {
        // Threads of one block execute sequentially on one worker, so a
        // per-block running maximum never observes out-of-order indices.
        let dev = Device::new(4);
        let last = AtomicBuf::zeroed(16);
        let ok = AtomicBuf::filled(1, 1);
        dev.launch_blocks(16, 32, |b, t| {
            let prev = last.load(b as usize);
            if t > 0 && prev != t - 1 + 1 {
                ok.store(0, 0);
            }
            last.store(b as usize, t + 1);
        });
        assert_eq!(ok.load(0), 1, "intra-block execution must be sequential");
    }

    #[test]
    fn zero_block_dim_is_a_noop() {
        let dev = Device::new(2);
        dev.launch_blocks(8, 0, |_b, _t| panic!("kernel must not run"));
    }

    #[test]
    fn launch_timed_records() {
        let dev = Device::new(1);
        let timer = crate::KernelTimer::new();
        dev.launch_timed(&timer, "noop", 10, |_| {});
        assert_eq!(timer.report()[0].1, 1);
    }
}
